//! The typed request/response surface of the serving protocol.
//!
//! Every message is encoded with the store's [`StoreCodec`] discipline —
//! little-endian integers, `u64` length prefixes validated against the bytes
//! actually available, floats as raw IEEE-754 bits — so answers survive the
//! wire bit-identically to the in-process path, and a hostile payload fails
//! with a typed [`CodecError`] before it can allocate unbounded memory.
//!
//! Enum variants carry a leading `u8` tag. Tags are part of the protocol
//! version: removing or renumbering one requires bumping
//! [`PROTOCOL_VERSION`]; appending new tags is backwards-compatible because an
//! old server answers an unknown tag with a typed
//! [`ErrorReply::Malformed`] instead of panicking.

use ksp_algo::Path;
use ksp_core::kspdg::QueryStats;
use ksp_graph::{UpdateBatch, VertexId, Weight};
use ksp_store::{CodecError, Reader, StoreCodec, Writer};

/// The protocol version this build speaks. Carried in every frame header and
/// echoed through the [`Request::Ping`] handshake.
pub const PROTOCOL_VERSION: u32 = 1;

/// The newest protocol version this build can negotiate up to. Version 2 is
/// the replication surface ([`Request::ShipSegment`] and friends): its tags
/// are appended (so v1 frames still parse), but a peer must negotiate `>= 2`
/// through the [`Request::Ping`] version range before relying on them —
/// that is what lets a future version *change* a payload shape without
/// breaking rollouts.
pub const PROTOCOL_VERSION_MAX: u32 = 2;

fn encode_str(s: &str, w: &mut Writer) {
    w.put_u64(s.len() as u64);
    w.put_bytes(s.as_bytes());
}

fn decode_string(r: &mut Reader<'_>) -> Result<String, CodecError> {
    let len = r.get_count(1)?;
    let bytes = r.get_bytes(len)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| CodecError::InvalidValue("string payload is not valid UTF-8"))
}

/// A client-originated trace context, carried in a [`Request::Traced`] /
/// [`Response::Traced`] envelope (tags appended under [`PROTOCOL_VERSION`] 1).
///
/// `trace_id` names one client-side operation; the server echoes it verbatim
/// in the response envelope and pins it to any flight dump the request
/// triggers, so a client can resolve *its own* trace id to the server's span
/// chain. `origin_micros` is the client's clock at send time, measured from
/// an origin only the client knows — the server treats it as opaque and
/// echoes it, letting the client difference its clock around the round trip
/// without any cross-host clock agreement.
///
/// Wire layout: 16 bytes, `trace_id` (u64 LE) then `origin_micros` (u64 LE),
/// inside the envelope tag. The envelope is a *tagged* variant rather than a
/// tolerant payload tail because several response payloads (`WireMetrics`,
/// `WireObsSnapshot`) already own their trailing bytes for appended-field
/// decoding — a bare suffix would be ambiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// Client-chosen id of the traced operation; `0` means untraced.
    pub trace_id: u64,
    /// The client's send-time stamp, microseconds from a client-local origin.
    pub origin_micros: u64,
}

impl StoreCodec for TraceContext {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.trace_id);
        w.put_u64(self.origin_micros);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(TraceContext { trace_id: r.get_u64()?, origin_micros: r.get_u64()? })
    }
}

/// The identity of one KSP query: find the `k` shortest paths from `source`
/// to `target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryKey {
    /// Source vertex.
    pub source: VertexId,
    /// Target vertex.
    pub target: VertexId,
    /// Number of shortest paths requested (must be at least 1).
    pub k: usize,
}

impl QueryKey {
    /// Creates a query key.
    pub fn new(source: VertexId, target: VertexId, k: usize) -> Self {
        QueryKey { source, target, k }
    }
}

impl StoreCodec for QueryKey {
    fn encode(&self, w: &mut Writer) {
        self.source.encode(w);
        self.target.encode(w);
        w.put_u64(self.k as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let source = VertexId::decode(r)?;
        let target = VertexId::decode(r)?;
        let k = r.get_u64()?;
        let k = usize::try_from(k).map_err(|_| CodecError::InvalidValue("k does not fit usize"))?;
        Ok(QueryKey { source, target, k })
    }
}

/// A request frame's payload: everything an operator or client can ask of a
/// serving shard.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version handshake and liveness probe. The server answers
    /// [`Response::Pong`] when the versions agree and
    /// [`ErrorReply::UnsupportedVersion`] otherwise.
    ///
    /// A v2-aware client also announces the *range* of versions it can speak
    /// as a tolerant payload tail (`min_version`/`max_version`, appended
    /// after the legacy field; the Ping body is always the final bytes of
    /// its message, so "no bytes left" is unambiguous). A legacy payload
    /// decodes with both at `0`, meaning "no range announced" — the server
    /// then applies the strict v1 equality check unchanged.
    Ping {
        /// The protocol version the client speaks (the legacy v1 field).
        protocol_version: u32,
        /// Oldest protocol version the client accepts; `0` when the client
        /// predates negotiation.
        min_version: u32,
        /// Newest protocol version the client accepts; `0` when the client
        /// predates negotiation.
        max_version: u32,
    },
    /// One KSP query.
    Query(QueryKey),
    /// A batch of queries answered in order with one frame round trip.
    QueryBatch(Vec<QueryKey>),
    /// Apply one weight-update batch and publish the next epoch.
    ApplyBatch(UpdateBatch),
    /// A point-in-time metrics snapshot.
    Metrics,
    /// Synchronously checkpoint the current epoch (persistent services only).
    CheckpointNow,
    /// A full observability snapshot: per-stage latency histograms, counters,
    /// gauges and the latest flight-recorder dump (appended under
    /// `PROTOCOL_VERSION` 1; an older server answers with a typed
    /// [`ErrorReply::Malformed`] for the unknown tag).
    ObsSnapshot,
    /// Any request wrapped in a client [`TraceContext`] (appended under
    /// `PROTOCOL_VERSION` 1). The server answers with the same envelope
    /// around its response; envelopes never nest — a nested `Traced` tag
    /// fails the decode typed.
    Traced {
        /// The client's trace context, echoed back verbatim.
        trace: TraceContext,
        /// The wrapped request.
        inner: Box<Request>,
    },
    /// Ship WAL records starting at `from_epoch` (appended under protocol
    /// version 2 — negotiate `>= 2` first). The server answers
    /// [`Response::SegmentBatch`]: either a run of contiguous records, or a
    /// snapshot-fallback manifest when `from_epoch` predates the retained
    /// log window.
    ShipSegment {
        /// First epoch the follower still needs (inclusive).
        from_epoch: u64,
        /// Upper bound on records in the reply; `0` means the server's cap.
        max_records: u64,
        /// Upper bound on summed record payload bytes in the reply; `0`
        /// means the server's cap. Keeps the reply under the frame limit.
        max_bytes: u64,
    },
    /// Fetch one chunk of a snapshot file named by a fallback manifest
    /// (appended under protocol version 2).
    SnapshotChunk {
        /// File name exactly as listed in the manifest (no path components).
        name: String,
        /// Byte offset to read from.
        offset: u64,
        /// Maximum bytes to return; the server may answer with fewer.
        max_len: u64,
    },
    /// Acknowledge that a follower has durably applied (published) every
    /// epoch up to and including `applied_epoch` (appended under protocol
    /// version 2). Feeds the leader's per-follower lag gauges.
    ReplAck {
        /// Stable identity of the follower (chosen by the follower).
        follower: String,
        /// Newest epoch the follower has applied.
        applied_epoch: u64,
    },
}

impl Request {
    /// Splits a possibly-traced request into its trace context (if any) and
    /// the inner request.
    pub fn into_parts(self) -> (Option<TraceContext>, Request) {
        match self {
            Request::Traced { trace, inner } => (Some(trace), *inner),
            other => (None, other),
        }
    }

    /// The handshake a current client sends: legacy field at
    /// [`PROTOCOL_VERSION`] plus the full negotiable range.
    pub fn ping() -> Request {
        Request::Ping {
            protocol_version: PROTOCOL_VERSION,
            min_version: PROTOCOL_VERSION,
            max_version: PROTOCOL_VERSION_MAX,
        }
    }

    /// The handshake a pre-negotiation client sends: just the legacy
    /// version field, no range tail on the wire.
    pub fn ping_legacy(protocol_version: u32) -> Request {
        Request::Ping { protocol_version, min_version: 0, max_version: 0 }
    }
}

const REQ_PING: u8 = 0;
const REQ_QUERY: u8 = 1;
const REQ_QUERY_BATCH: u8 = 2;
const REQ_APPLY_BATCH: u8 = 3;
const REQ_METRICS: u8 = 4;
const REQ_CHECKPOINT_NOW: u8 = 5;
const REQ_OBS_SNAPSHOT: u8 = 6;
const REQ_TRACED: u8 = 7;
// The replication surface, appended under protocol version 2. A v1 server
// answers these tags with a typed `Malformed`/`InvalidTag` error, which is
// why a replica must negotiate the version range before shipping.
const REQ_SHIP_SEGMENT: u8 = 8;
const REQ_SNAPSHOT_CHUNK: u8 = 9;
const REQ_REPL_ACK: u8 = 10;

impl Request {
    /// Decodes the body of one non-envelope request tag. `REQ_TRACED` falls
    /// to the unknown-tag arm by design: the caller handles envelopes, so a
    /// nested one fails typed here instead of recursing on hostile input.
    fn decode_body(tag: u8, r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match tag {
            REQ_PING => {
                let protocol_version = r.get_u32()?;
                // Tolerant tail appended under protocol version 2: a legacy
                // payload simply ends after the version field, and the
                // missing range reads as (0, 0) — "no range announced".
                let (mut min_version, mut max_version) = (0, 0);
                if !r.is_exhausted() {
                    min_version = r.get_u32()?;
                    max_version = r.get_u32()?;
                }
                Ok(Request::Ping { protocol_version, min_version, max_version })
            }
            REQ_QUERY => Ok(Request::Query(QueryKey::decode(r)?)),
            REQ_QUERY_BATCH => Ok(Request::QueryBatch(Vec::decode(r)?)),
            REQ_APPLY_BATCH => Ok(Request::ApplyBatch(UpdateBatch::decode(r)?)),
            REQ_METRICS => Ok(Request::Metrics),
            REQ_CHECKPOINT_NOW => Ok(Request::CheckpointNow),
            REQ_OBS_SNAPSHOT => Ok(Request::ObsSnapshot),
            REQ_SHIP_SEGMENT => Ok(Request::ShipSegment {
                from_epoch: r.get_u64()?,
                max_records: r.get_u64()?,
                max_bytes: r.get_u64()?,
            }),
            REQ_SNAPSHOT_CHUNK => Ok(Request::SnapshotChunk {
                name: decode_string(r)?,
                offset: r.get_u64()?,
                max_len: r.get_u64()?,
            }),
            REQ_REPL_ACK => {
                Ok(Request::ReplAck { follower: decode_string(r)?, applied_epoch: r.get_u64()? })
            }
            tag => Err(CodecError::InvalidTag { what: "Request", tag }),
        }
    }
}

impl StoreCodec for Request {
    fn encode(&self, w: &mut Writer) {
        match self {
            Request::Ping { protocol_version, min_version, max_version } => {
                w.put_u8(REQ_PING);
                w.put_u32(*protocol_version);
                // Emit the range tail only when there is a range to carry:
                // a (0, 0) range encodes to the byte-identical legacy
                // payload, so pre-negotiation servers keep decoding it.
                if *min_version != 0 || *max_version != 0 {
                    w.put_u32(*min_version);
                    w.put_u32(*max_version);
                }
            }
            Request::Query(key) => {
                w.put_u8(REQ_QUERY);
                key.encode(w);
            }
            Request::QueryBatch(keys) => {
                w.put_u8(REQ_QUERY_BATCH);
                keys.encode(w);
            }
            Request::ApplyBatch(batch) => {
                w.put_u8(REQ_APPLY_BATCH);
                batch.encode(w);
            }
            Request::Metrics => w.put_u8(REQ_METRICS),
            Request::CheckpointNow => w.put_u8(REQ_CHECKPOINT_NOW),
            Request::ObsSnapshot => w.put_u8(REQ_OBS_SNAPSHOT),
            Request::Traced { trace, inner } => {
                w.put_u8(REQ_TRACED);
                trace.encode(w);
                inner.encode(w);
            }
            Request::ShipSegment { from_epoch, max_records, max_bytes } => {
                w.put_u8(REQ_SHIP_SEGMENT);
                w.put_u64(*from_epoch);
                w.put_u64(*max_records);
                w.put_u64(*max_bytes);
            }
            Request::SnapshotChunk { name, offset, max_len } => {
                w.put_u8(REQ_SNAPSHOT_CHUNK);
                encode_str(name, w);
                w.put_u64(*offset);
                w.put_u64(*max_len);
            }
            Request::ReplAck { follower, applied_epoch } => {
                w.put_u8(REQ_REPL_ACK);
                encode_str(follower, w);
                w.put_u64(*applied_epoch);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            REQ_TRACED => {
                let trace = TraceContext::decode(r)?;
                let inner = Request::decode_body(r.get_u8()?, r)?;
                Ok(Request::Traced { trace, inner: Box::new(inner) })
            }
            tag => Request::decode_body(tag, r),
        }
    }
}

/// A path as it travels on the wire: the vertex sequence plus the distance as
/// raw IEEE-754 bits. Conversion back into a [`Path`] validates simplicity, so
/// a hostile peer cannot smuggle a looping path into the engine's invariants.
#[derive(Debug, Clone, PartialEq)]
pub struct WirePath {
    /// The vertex sequence.
    pub vertices: Vec<VertexId>,
    /// The distance, exact for the epoch the answer was computed at.
    pub distance: Weight,
}

impl WirePath {
    /// Converts a computed path to its wire form.
    pub fn from_path(path: &Path) -> Self {
        WirePath { vertices: path.vertices().to_vec(), distance: path.distance() }
    }

    /// Validates and converts the wire form back into a [`Path`].
    pub fn into_path(self) -> Result<Path, CodecError> {
        if self.vertices.is_empty() {
            return Err(CodecError::InvalidValue("a path must contain at least one vertex"));
        }
        if !Path::is_simple(&self.vertices) {
            return Err(CodecError::InvalidValue("paths on the wire must be simple"));
        }
        Ok(Path::new(self.vertices, self.distance))
    }
}

impl StoreCodec for WirePath {
    fn encode(&self, w: &mut Writer) {
        self.vertices.encode(w);
        self.distance.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(WirePath { vertices: Vec::decode(r)?, distance: Weight::decode(r)? })
    }
}

/// Engine statistics of one answered query, flattened for the wire
/// (mirrors [`QueryStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireQueryStats {
    /// Filter/refine iterations executed.
    pub iterations: u64,
    /// Partial-KSP computations performed (cache misses).
    pub partial_computations: u64,
    /// Partial-KSP computations answered from the per-query cache.
    pub partial_cache_hits: u64,
    /// (subgraph, pair) combinations examined.
    pub subgraphs_examined: u64,
    /// Candidate complete paths generated.
    pub candidates_generated: u64,
    /// Communication cost in vertex units (Section 5.6.1 of the paper).
    pub vertices_transferred: u64,
}

impl From<&QueryStats> for WireQueryStats {
    fn from(s: &QueryStats) -> Self {
        WireQueryStats {
            iterations: s.iterations as u64,
            partial_computations: s.partial_computations as u64,
            partial_cache_hits: s.partial_cache_hits as u64,
            subgraphs_examined: s.subgraphs_examined as u64,
            candidates_generated: s.candidates_generated as u64,
            vertices_transferred: s.vertices_transferred as u64,
        }
    }
}

impl StoreCodec for WireQueryStats {
    fn encode(&self, w: &mut Writer) {
        for v in [
            self.iterations,
            self.partial_computations,
            self.partial_cache_hits,
            self.subgraphs_examined,
            self.candidates_generated,
            self.vertices_transferred,
        ] {
            w.put_u64(v);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(WireQueryStats {
            iterations: r.get_u64()?,
            partial_computations: r.get_u64()?,
            partial_cache_hits: r.get_u64()?,
            subgraphs_examined: r.get_u64()?,
            candidates_generated: r.get_u64()?,
            vertices_transferred: r.get_u64()?,
        })
    }
}

/// The answer to one query, as carried on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// The k shortest paths, ascending by distance. Distances are bit-exact:
    /// they decode to the same `f64` the serving shard computed.
    pub paths: Vec<Path>,
    /// The epoch the answer is exact for.
    pub epoch: u64,
    /// Whether the answer came from the shard's result cache.
    pub cache_hit: bool,
    /// Server-side end-to-end latency (submission to completion) in
    /// microseconds.
    pub latency_micros: u64,
    /// Engine statistics (zeroed for cache hits).
    pub stats: WireQueryStats,
}

impl StoreCodec for QueryAnswer {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.paths.len() as u64);
        for path in &self.paths {
            WirePath::from_path(path).encode(w);
        }
        w.put_u64(self.epoch);
        self.cache_hit.encode(w);
        w.put_u64(self.latency_micros);
        self.stats.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let count = r.get_count(1)?;
        let mut paths = Vec::with_capacity(count);
        for _ in 0..count {
            paths.push(WirePath::decode(r)?.into_path()?);
        }
        Ok(QueryAnswer {
            paths,
            epoch: r.get_u64()?,
            cache_hit: bool::decode(r)?,
            latency_micros: r.get_u64()?,
            stats: WireQueryStats::decode(r)?,
        })
    }
}

/// Why the server could not satisfy a request — the wire form of the serving
/// layer's error types plus the protocol-level failures only a remote peer
/// can observe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorReply {
    /// Admission control rejected the request — either the target shard's
    /// queue is at its configured depth, or the adaptive controller predicted
    /// the queueing delay would breach the SLO budget. Retry later.
    Overloaded {
        /// The queue depth observed at rejection time.
        depth: u64,
        /// Suggested client backoff in milliseconds before retrying; `0`
        /// means the server offered no hint (static-cap rejection from a
        /// server that predates the adaptive controller).
        retry_after_ms: u64,
    },
    /// The service is shutting down.
    ShuttingDown,
    /// A query endpoint does not exist in the current graph.
    InvalidQuery(String),
    /// `k` must be at least 1.
    InvalidK,
    /// The update batch was rejected by the data layer; nothing was published.
    InvalidBatch(String),
    /// The storage layer could not make the request durable.
    Storage(String),
    /// The request is not supported by this server (e.g. `CheckpointNow` on a
    /// service without a store would be a no-op, or a future request kind).
    Unsupported(String),
    /// The peer speaks a different protocol version; the connection closes
    /// after this reply.
    UnsupportedVersion {
        /// The version the server speaks.
        server: u32,
        /// The version the client announced.
        client: u32,
    },
    /// The peer sent bytes that do not parse as a frame or message; the
    /// connection closes after this reply (stream synchronisation is lost).
    Malformed(String),
    /// The service is in read-only degraded mode: the delta log refused an
    /// append, so writes are rejected while queries keep serving the last
    /// published epoch. A background probe repairs the log; retry later.
    Degraded(String),
}

impl ErrorReply {
    /// Whether this error is the admission-control backpressure signal.
    pub fn is_overloaded(&self) -> bool {
        matches!(self, ErrorReply::Overloaded { .. })
    }

    /// The server's suggested backoff before retrying, if this is an
    /// [`ErrorReply::Overloaded`] rejection that carried a non-zero hint.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ErrorReply::Overloaded { retry_after_ms, .. } if *retry_after_ms > 0 => {
                Some(*retry_after_ms)
            }
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrorReply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrorReply::Overloaded { depth, retry_after_ms: 0 } => {
                write!(f, "shard queue full (depth {depth}); request rejected")
            }
            ErrorReply::Overloaded { depth, retry_after_ms } => {
                write!(
                    f,
                    "admission rejected (queue depth {depth}); retry after {retry_after_ms} ms"
                )
            }
            ErrorReply::ShuttingDown => write!(f, "service is shutting down"),
            ErrorReply::InvalidQuery(detail) => write!(f, "invalid query: {detail}"),
            ErrorReply::InvalidK => write!(f, "k must be at least 1"),
            ErrorReply::InvalidBatch(detail) => write!(f, "invalid update batch: {detail}"),
            ErrorReply::Storage(detail) => write!(f, "storage error: {detail}"),
            ErrorReply::Unsupported(detail) => write!(f, "unsupported request: {detail}"),
            ErrorReply::UnsupportedVersion { server, client } => {
                write!(f, "protocol version mismatch: server speaks v{server}, client v{client}")
            }
            ErrorReply::Malformed(detail) => write!(f, "malformed frame: {detail}"),
            ErrorReply::Degraded(detail) => {
                write!(f, "service degraded (read-only): {detail}")
            }
        }
    }
}

impl std::error::Error for ErrorReply {}

const ERR_OVERLOADED: u8 = 0;
const ERR_SHUTTING_DOWN: u8 = 1;
const ERR_INVALID_QUERY: u8 = 2;
const ERR_INVALID_K: u8 = 3;
const ERR_INVALID_BATCH: u8 = 4;
const ERR_STORAGE: u8 = 5;
const ERR_UNSUPPORTED: u8 = 6;
const ERR_UNSUPPORTED_VERSION: u8 = 7;
const ERR_MALFORMED: u8 = 8;
// Appended under PROTOCOL_VERSION 1: `Overloaded` with a retry hint. Encoders
// emit the legacy tag 0 when the hint is zero so pre-hint decoders keep
// understanding static-cap rejections; tag 9 is only on the wire when there is
// a hint to carry. `ErrorReply` nests mid-stream inside `QueryOutcome` lists,
// so the hint must live under its own tag rather than a tolerant payload tail.
const ERR_OVERLOADED_RETRY: u8 = 9;
// Appended for read-only degraded mode (fault-tolerance work): a WAL append
// failure flips the service read-only and `ApplyBatch` answers with this.
const ERR_DEGRADED: u8 = 10;

impl StoreCodec for ErrorReply {
    fn encode(&self, w: &mut Writer) {
        match self {
            ErrorReply::Overloaded { depth, retry_after_ms: 0 } => {
                w.put_u8(ERR_OVERLOADED);
                w.put_u64(*depth);
            }
            ErrorReply::Overloaded { depth, retry_after_ms } => {
                w.put_u8(ERR_OVERLOADED_RETRY);
                w.put_u64(*depth);
                w.put_u64(*retry_after_ms);
            }
            ErrorReply::ShuttingDown => w.put_u8(ERR_SHUTTING_DOWN),
            ErrorReply::InvalidQuery(detail) => {
                w.put_u8(ERR_INVALID_QUERY);
                encode_str(detail, w);
            }
            ErrorReply::InvalidK => w.put_u8(ERR_INVALID_K),
            ErrorReply::InvalidBatch(detail) => {
                w.put_u8(ERR_INVALID_BATCH);
                encode_str(detail, w);
            }
            ErrorReply::Storage(detail) => {
                w.put_u8(ERR_STORAGE);
                encode_str(detail, w);
            }
            ErrorReply::Unsupported(detail) => {
                w.put_u8(ERR_UNSUPPORTED);
                encode_str(detail, w);
            }
            ErrorReply::UnsupportedVersion { server, client } => {
                w.put_u8(ERR_UNSUPPORTED_VERSION);
                w.put_u32(*server);
                w.put_u32(*client);
            }
            ErrorReply::Malformed(detail) => {
                w.put_u8(ERR_MALFORMED);
                encode_str(detail, w);
            }
            ErrorReply::Degraded(detail) => {
                w.put_u8(ERR_DEGRADED);
                encode_str(detail, w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            ERR_OVERLOADED => Ok(ErrorReply::Overloaded { depth: r.get_u64()?, retry_after_ms: 0 }),
            ERR_OVERLOADED_RETRY => {
                Ok(ErrorReply::Overloaded { depth: r.get_u64()?, retry_after_ms: r.get_u64()? })
            }
            ERR_SHUTTING_DOWN => Ok(ErrorReply::ShuttingDown),
            ERR_INVALID_QUERY => Ok(ErrorReply::InvalidQuery(decode_string(r)?)),
            ERR_INVALID_K => Ok(ErrorReply::InvalidK),
            ERR_INVALID_BATCH => Ok(ErrorReply::InvalidBatch(decode_string(r)?)),
            ERR_STORAGE => Ok(ErrorReply::Storage(decode_string(r)?)),
            ERR_UNSUPPORTED => Ok(ErrorReply::Unsupported(decode_string(r)?)),
            ERR_UNSUPPORTED_VERSION => {
                Ok(ErrorReply::UnsupportedVersion { server: r.get_u32()?, client: r.get_u32()? })
            }
            ERR_MALFORMED => Ok(ErrorReply::Malformed(decode_string(r)?)),
            ERR_DEGRADED => Ok(ErrorReply::Degraded(decode_string(r)?)),
            tag => Err(CodecError::InvalidTag { what: "ErrorReply", tag }),
        }
    }
}

/// One element of a [`Response::QueryBatch`]: each query in the batch
/// succeeds or fails independently.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// The query was answered.
    Answer(QueryAnswer),
    /// The query failed (e.g. an invalid endpoint); the rest of the batch is
    /// unaffected.
    Error(ErrorReply),
}

impl QueryOutcome {
    /// Converts into a standard `Result`.
    pub fn into_result(self) -> Result<QueryAnswer, ErrorReply> {
        match self {
            QueryOutcome::Answer(a) => Ok(a),
            QueryOutcome::Error(e) => Err(e),
        }
    }
}

impl StoreCodec for QueryOutcome {
    fn encode(&self, w: &mut Writer) {
        match self {
            QueryOutcome::Answer(a) => {
                w.put_u8(0);
                a.encode(w);
            }
            QueryOutcome::Error(e) => {
                w.put_u8(1);
                e.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(QueryOutcome::Answer(QueryAnswer::decode(r)?)),
            1 => Ok(QueryOutcome::Error(ErrorReply::decode(r)?)),
            tag => Err(CodecError::InvalidTag { what: "QueryOutcome", tag }),
        }
    }
}

/// Point-in-time backlog gauges of one shard queue, as carried on the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireQueueGauge {
    /// Requests admitted and waiting right now.
    pub depth: u64,
    /// Deepest the queue has ever been.
    pub high_water: u64,
    /// The configured depth at which submissions are rejected.
    pub max_depth: u64,
}

impl StoreCodec for WireQueueGauge {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.depth);
        w.put_u64(self.high_water);
        w.put_u64(self.max_depth);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(WireQueueGauge {
            depth: r.get_u64()?,
            high_water: r.get_u64()?,
            max_depth: r.get_u64()?,
        })
    }
}

/// A service metrics snapshot, flattened for the wire. Latency quantiles are
/// carried in microseconds.
///
/// This is the full overload-observability surface: `rejected` counts every
/// request turned away by admission control, and `queue_gauges` carries each
/// shard's current depth and high-water mark so a remote operator sees
/// backpressure building before requests start failing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireMetrics {
    /// Requests answered.
    pub completed: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests served from the result cache.
    pub cache_hits: u64,
    /// Requests that ran the engine.
    pub cache_misses: u64,
    /// Epochs published since the service started.
    pub epochs_published: u64,
    /// Median end-to-end latency, microseconds.
    pub p50_micros: u64,
    /// 95th-percentile end-to-end latency, microseconds.
    pub p95_micros: u64,
    /// 99th-percentile end-to-end latency, microseconds.
    pub p99_micros: u64,
    /// Mean end-to-end latency, microseconds.
    pub mean_micros: u64,
    /// Worst observed end-to-end latency, microseconds.
    pub max_micros: u64,
    /// Per-shard queue backlog gauges.
    pub queue_gauges: Vec<WireQueueGauge>,
    /// Requests answered by a worker that stole them from another shard's
    /// queue (appended under `PROTOCOL_VERSION` 1; encoded after
    /// `queue_gauges`, append-only — see the decode note below).
    pub steals: u64,
    /// Cache entries that survived epoch publishes via dirty-set retention
    /// (appended under `PROTOCOL_VERSION` 1).
    pub cache_retained: u64,
    /// Cache entries dropped at epoch publishes (appended under
    /// `PROTOCOL_VERSION` 1).
    pub cache_evicted: u64,
    /// Milliseconds since the last epoch publish when the snapshot was taken
    /// — the staleness gauge a freshness SLO watches (appended under
    /// `PROTOCOL_VERSION` 1, after `cache_evicted`).
    pub epoch_age_ms: u64,
}

impl WireMetrics {
    /// Fraction of completed requests answered from the cache, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let denom = self.cache_hits + self.cache_misses;
        if denom == 0 {
            0.0
        } else {
            self.cache_hits as f64 / denom as f64
        }
    }
}

impl StoreCodec for WireMetrics {
    fn encode(&self, w: &mut Writer) {
        for v in [
            self.completed,
            self.rejected,
            self.cache_hits,
            self.cache_misses,
            self.epochs_published,
            self.p50_micros,
            self.p95_micros,
            self.p99_micros,
            self.mean_micros,
            self.max_micros,
        ] {
            w.put_u64(v);
        }
        self.queue_gauges.encode(w);
        // Fields appended under PROTOCOL_VERSION 1: encode strictly after
        // everything the version shipped with, never in the middle.
        w.put_u64(self.steals);
        w.put_u64(self.cache_retained);
        w.put_u64(self.cache_evicted);
        w.put_u64(self.epoch_age_ms);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let mut metrics = WireMetrics {
            completed: r.get_u64()?,
            rejected: r.get_u64()?,
            cache_hits: r.get_u64()?,
            cache_misses: r.get_u64()?,
            epochs_published: r.get_u64()?,
            p50_micros: r.get_u64()?,
            p95_micros: r.get_u64()?,
            p99_micros: r.get_u64()?,
            mean_micros: r.get_u64()?,
            max_micros: r.get_u64()?,
            queue_gauges: Vec::decode(r)?,
            steals: 0,
            cache_retained: 0,
            cache_evicted: 0,
            epoch_age_ms: 0,
        };
        // Tolerant-tail decode of the appended fields: each one is guarded
        // individually, so a payload from a v1 build that predates *any*
        // suffix of them simply ends there, and the missing fields read as
        // zero. (WireMetrics is always the final value of its enclosing
        // message, so "no bytes left" is unambiguous.) The reverse direction
        // — an old decoder rejecting the longer payload as trailing bytes —
        // is what the v2 negotiation item on the roadmap exists for.
        if !r.is_exhausted() {
            metrics.steals = r.get_u64()?;
        }
        if !r.is_exhausted() {
            metrics.cache_retained = r.get_u64()?;
        }
        if !r.is_exhausted() {
            metrics.cache_evicted = r.get_u64()?;
        }
        if !r.is_exhausted() {
            metrics.epoch_age_ms = r.get_u64()?;
        }
        Ok(metrics)
    }
}

/// One WAL record as shipped to a follower: the epoch it published and the
/// update batch that produced it. CRC integrity is re-established by the
/// carrying frame; the leader only ships records its own CRC-checked log
/// reader accepted, so a torn or corrupt record can never reach a follower.
#[derive(Debug, Clone, PartialEq)]
pub struct WireShippedRecord {
    /// The epoch this record published on the leader.
    pub epoch: u64,
    /// The weight-update batch to replay through `apply_batch`.
    pub batch: UpdateBatch,
}

impl StoreCodec for WireShippedRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.epoch);
        self.batch.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(WireShippedRecord { epoch: r.get_u64()?, batch: UpdateBatch::decode(r)? })
    }
}

/// One file of a snapshot-fallback manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSnapshotFile {
    /// Bare file name (`checkpoint-*.ckpt` / `partial-*.pckpt`), no path
    /// components — the chunk server rejects anything else.
    pub name: String,
    /// Total file length in bytes, so the follower knows when a transfer is
    /// complete.
    pub len: u64,
}

impl StoreCodec for WireSnapshotFile {
    fn encode(&self, w: &mut Writer) {
        encode_str(&self.name, w);
        w.put_u64(self.len);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(WireSnapshotFile { name: decode_string(r)?, len: r.get_u64()? })
    }
}

/// The snapshot fallback a leader answers when the requested epoch predates
/// its retained log window: the newest full checkpoint plus its partial
/// chain, fetched file by file via [`Request::SnapshotChunk`]. After
/// recovering from these images the follower resumes shipping from
/// `snapshot_epoch + 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSnapshotManifest {
    /// The epoch the manifest's images recover to.
    pub snapshot_epoch: u64,
    /// The files to fetch, in recovery order (full image first).
    pub files: Vec<WireSnapshotFile>,
}

impl StoreCodec for WireSnapshotManifest {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.snapshot_epoch);
        self.files.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(WireSnapshotManifest { snapshot_epoch: r.get_u64()?, files: Vec::decode(r)? })
    }
}

/// The answer to a [`Request::ShipSegment`]: a contiguous run of WAL records
/// starting exactly at the requested epoch, or a snapshot-fallback manifest
/// when that epoch has been pruned. An empty batch with no fallback means
/// the follower is caught up to `leader_epoch`.
#[derive(Debug, Clone, PartialEq)]
pub struct WireSegmentBatch {
    /// The epoch the leader was publishing when it answered — the follower's
    /// lag reference.
    pub leader_epoch: u64,
    /// Contiguous records from the requested epoch (possibly truncated by
    /// the request's `max_records`/`max_bytes` caps; ship again to continue).
    pub records: Vec<WireShippedRecord>,
    /// Present when the requested epoch predates the retained log window:
    /// bootstrap from these images instead.
    pub fallback: Option<WireSnapshotManifest>,
}

impl StoreCodec for WireSegmentBatch {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.leader_epoch);
        self.records.encode(w);
        match &self.fallback {
            Some(manifest) => {
                w.put_u8(1);
                manifest.encode(w);
            }
            None => w.put_u8(0),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let leader_epoch = r.get_u64()?;
        let records = Vec::decode(r)?;
        let fallback = match r.get_u8()? {
            0 => None,
            1 => Some(WireSnapshotManifest::decode(r)?),
            tag => {
                return Err(CodecError::InvalidTag { what: "Option<WireSnapshotManifest>", tag })
            }
        };
        Ok(WireSegmentBatch { leader_epoch, records, fallback })
    }
}

/// One chunk of a snapshot file, answering a [`Request::SnapshotChunk`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSnapshotChunk {
    /// The file name, echoed from the request.
    pub name: String,
    /// The offset these bytes start at, echoed from the request.
    pub offset: u64,
    /// The file's total length (lets the follower detect truncation races).
    pub total_len: u64,
    /// The raw bytes; shorter than requested at end of file.
    pub bytes: Vec<u8>,
}

impl StoreCodec for WireSnapshotChunk {
    fn encode(&self, w: &mut Writer) {
        encode_str(&self.name, w);
        w.put_u64(self.offset);
        w.put_u64(self.total_len);
        w.put_u64(self.bytes.len() as u64);
        w.put_bytes(&self.bytes);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let name = decode_string(r)?;
        let offset = r.get_u64()?;
        let total_len = r.get_u64()?;
        let len = r.get_count(1)?;
        let bytes = r.get_bytes(len)?.to_vec();
        Ok(WireSnapshotChunk { name, offset, total_len, bytes })
    }
}

/// A response frame's payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful handshake.
    Pong {
        /// The protocol version the server speaks.
        protocol_version: u32,
        /// The epoch the server is currently publishing.
        epoch: u64,
        /// Number of shard workers behind this endpoint.
        num_shards: u64,
        /// The version the server negotiated from the client's announced
        /// range; `0` when the client announced none (a legacy Ping — the
        /// tail is then omitted on the wire, so legacy clients keep
        /// decoding the payload they expect).
        negotiated_version: u32,
    },
    /// The answer to a [`Request::Query`].
    Query(QueryAnswer),
    /// The per-query outcomes of a [`Request::QueryBatch`], in request order.
    QueryBatch(Vec<QueryOutcome>),
    /// The epoch a [`Request::ApplyBatch`] published.
    ApplyBatch {
        /// The epoch id the batch produced.
        epoch: u64,
    },
    /// The metrics snapshot answering a [`Request::Metrics`].
    Metrics(WireMetrics),
    /// Outcome of a [`Request::CheckpointNow`]: `Some(epoch)` after a
    /// successful checkpoint, `None` for an in-memory service.
    CheckpointNow {
        /// The checkpointed epoch, when the service persists one.
        epoch: Option<u64>,
    },
    /// The observability snapshot answering a [`Request::ObsSnapshot`]
    /// (appended under `PROTOCOL_VERSION` 1).
    ObsSnapshot(crate::obs::WireObsSnapshot),
    /// The request failed; see the carried [`ErrorReply`].
    Error(ErrorReply),
    /// Any response wrapped in the [`TraceContext`] echoed from a
    /// [`Request::Traced`] (appended under `PROTOCOL_VERSION` 1). The
    /// envelope wraps *whatever* the server answered — including
    /// [`Response::Error`] — so clients must unwrap it before matching.
    /// Envelopes never nest.
    Traced {
        /// The request's trace context, echoed verbatim.
        trace: TraceContext,
        /// The wrapped response.
        inner: Box<Response>,
    },
    /// The record run (or snapshot fallback) answering a
    /// [`Request::ShipSegment`] (appended under protocol version 2).
    SegmentBatch(WireSegmentBatch),
    /// The file chunk answering a [`Request::SnapshotChunk`] (appended under
    /// protocol version 2).
    SnapshotChunk(WireSnapshotChunk),
    /// Acknowledges a [`Request::ReplAck`] (appended under protocol
    /// version 2).
    ReplAck {
        /// The epoch the leader was publishing when the ack landed — lets
        /// the follower compute its lag from the ack round trip alone.
        leader_epoch: u64,
    },
}

impl Response {
    /// Splits a possibly-traced response into its trace context (if any) and
    /// the inner response.
    pub fn into_parts(self) -> (Option<TraceContext>, Response) {
        match self {
            Response::Traced { trace, inner } => (Some(trace), *inner),
            other => (None, other),
        }
    }
}

const RESP_PONG: u8 = 0;
const RESP_QUERY: u8 = 1;
const RESP_QUERY_BATCH: u8 = 2;
const RESP_APPLY_BATCH: u8 = 3;
const RESP_METRICS: u8 = 4;
const RESP_CHECKPOINT_NOW: u8 = 5;
const RESP_ERROR: u8 = 6;
const RESP_OBS_SNAPSHOT: u8 = 7;
const RESP_TRACED: u8 = 8;
// The replication surface, appended under protocol version 2.
const RESP_SEGMENT_BATCH: u8 = 9;
const RESP_SNAPSHOT_CHUNK: u8 = 10;
const RESP_REPL_ACK: u8 = 11;

impl Response {
    /// Decodes the body of one non-envelope response tag; like
    /// [`Request::decode_body`], a nested `RESP_TRACED` fails typed here
    /// instead of recursing.
    fn decode_body(tag: u8, r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match tag {
            RESP_PONG => {
                let protocol_version = r.get_u32()?;
                let epoch = r.get_u64()?;
                let num_shards = r.get_u64()?;
                // Tolerant tail appended under protocol version 2, emitted
                // only in answer to a range-announcing Ping (the Pong body
                // is always the final bytes of its message).
                let negotiated_version = if r.is_exhausted() { 0 } else { r.get_u32()? };
                Ok(Response::Pong { protocol_version, epoch, num_shards, negotiated_version })
            }
            RESP_QUERY => Ok(Response::Query(QueryAnswer::decode(r)?)),
            RESP_QUERY_BATCH => Ok(Response::QueryBatch(Vec::decode(r)?)),
            RESP_APPLY_BATCH => Ok(Response::ApplyBatch { epoch: r.get_u64()? }),
            RESP_METRICS => Ok(Response::Metrics(WireMetrics::decode(r)?)),
            RESP_CHECKPOINT_NOW => {
                let epoch = match r.get_u8()? {
                    0 => None,
                    1 => Some(r.get_u64()?),
                    tag => return Err(CodecError::InvalidTag { what: "Option<u64>", tag }),
                };
                Ok(Response::CheckpointNow { epoch })
            }
            RESP_OBS_SNAPSHOT => Ok(Response::ObsSnapshot(crate::obs::WireObsSnapshot::decode(r)?)),
            RESP_ERROR => Ok(Response::Error(ErrorReply::decode(r)?)),
            RESP_SEGMENT_BATCH => Ok(Response::SegmentBatch(WireSegmentBatch::decode(r)?)),
            RESP_SNAPSHOT_CHUNK => Ok(Response::SnapshotChunk(WireSnapshotChunk::decode(r)?)),
            RESP_REPL_ACK => Ok(Response::ReplAck { leader_epoch: r.get_u64()? }),
            tag => Err(CodecError::InvalidTag { what: "Response", tag }),
        }
    }
}

impl StoreCodec for Response {
    fn encode(&self, w: &mut Writer) {
        match self {
            Response::Pong { protocol_version, epoch, num_shards, negotiated_version } => {
                w.put_u8(RESP_PONG);
                w.put_u32(*protocol_version);
                w.put_u64(*epoch);
                w.put_u64(*num_shards);
                // A zero negotiation (legacy peer) encodes to the
                // byte-identical legacy payload.
                if *negotiated_version != 0 {
                    w.put_u32(*negotiated_version);
                }
            }
            Response::Query(answer) => {
                w.put_u8(RESP_QUERY);
                answer.encode(w);
            }
            Response::QueryBatch(outcomes) => {
                w.put_u8(RESP_QUERY_BATCH);
                outcomes.encode(w);
            }
            Response::ApplyBatch { epoch } => {
                w.put_u8(RESP_APPLY_BATCH);
                w.put_u64(*epoch);
            }
            Response::Metrics(metrics) => {
                w.put_u8(RESP_METRICS);
                metrics.encode(w);
            }
            Response::CheckpointNow { epoch } => {
                w.put_u8(RESP_CHECKPOINT_NOW);
                match epoch {
                    Some(e) => {
                        w.put_u8(1);
                        w.put_u64(*e);
                    }
                    None => w.put_u8(0),
                }
            }
            Response::ObsSnapshot(snapshot) => {
                w.put_u8(RESP_OBS_SNAPSHOT);
                snapshot.encode(w);
            }
            Response::Error(e) => {
                w.put_u8(RESP_ERROR);
                e.encode(w);
            }
            Response::Traced { trace, inner } => {
                w.put_u8(RESP_TRACED);
                trace.encode(w);
                inner.encode(w);
            }
            Response::SegmentBatch(batch) => {
                w.put_u8(RESP_SEGMENT_BATCH);
                batch.encode(w);
            }
            Response::SnapshotChunk(chunk) => {
                w.put_u8(RESP_SNAPSHOT_CHUNK);
                chunk.encode(w);
            }
            Response::ReplAck { leader_epoch } => {
                w.put_u8(RESP_REPL_ACK);
                w.put_u64(*leader_epoch);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            RESP_TRACED => {
                let trace = TraceContext::decode(r)?;
                let inner = Response::decode_body(r.get_u8()?, r)?;
                Ok(Response::Traced { trace, inner: Box::new(inner) })
            }
            tag => Response::decode_body(tag, r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_graph::{EdgeId, WeightUpdate};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn requests_round_trip() {
        let requests = vec![
            Request::ping(),
            Request::ping_legacy(PROTOCOL_VERSION),
            Request::ShipSegment { from_epoch: 41, max_records: 128, max_bytes: 1 << 20 },
            Request::SnapshotChunk {
                name: "checkpoint-00000000000000000007.ckpt".to_string(),
                offset: 4096,
                max_len: 1 << 22,
            },
            Request::ReplAck { follower: "replica-a".to_string(), applied_epoch: 40 },
            Request::Query(QueryKey::new(v(3), v(9), 4)),
            Request::QueryBatch(vec![QueryKey::new(v(0), v(1), 1), QueryKey::new(v(5), v(2), 8)]),
            Request::ApplyBatch(UpdateBatch::new(vec![
                WeightUpdate::new(EdgeId(7), Weight::new(2.5)),
                WeightUpdate::new(EdgeId(0), Weight::new(0.125)),
            ])),
            Request::Metrics,
            Request::CheckpointNow,
            Request::ObsSnapshot,
            Request::Traced {
                trace: TraceContext { trace_id: 0xABCD_0001, origin_micros: 987_654 },
                inner: Box::new(Request::Query(QueryKey::new(v(3), v(9), 4))),
            },
        ];
        for request in requests {
            let decoded = Request::from_bytes(&request.to_bytes()).unwrap();
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn trace_envelopes_round_trip_and_split() {
        let trace = TraceContext { trace_id: 7, origin_micros: 13 };
        let traced =
            Response::Traced { trace, inner: Box::new(Response::Error(ErrorReply::InvalidK)) };
        let decoded = Response::from_bytes(&traced.to_bytes()).unwrap();
        assert_eq!(decoded, traced);
        let (got_trace, inner) = decoded.into_parts();
        assert_eq!(got_trace, Some(trace));
        assert_eq!(inner, Response::Error(ErrorReply::InvalidK));
        // An untraced message splits into (None, itself).
        let (none, inner) = Request::Metrics.into_parts();
        assert_eq!(none, None);
        assert_eq!(inner, Request::Metrics);
    }

    #[test]
    fn nested_trace_envelopes_fail_typed_without_recursing() {
        // Hand-encode Traced(Traced(...)) nesting — a hostile peer could
        // nest thousands deep; the decoder must reject at depth one with a
        // typed error rather than recurse.
        for depth in [2usize, 10_000] {
            let mut w = Writer::new();
            for _ in 0..depth {
                w.put_u8(7); // REQ_TRACED
                TraceContext::default().encode(&mut w);
            }
            w.put_u8(4); // REQ_METRICS
            assert!(matches!(
                Request::from_bytes(&w.into_bytes()),
                Err(CodecError::InvalidTag { what: "Request", tag: 7 })
            ));
            let mut w = Writer::new();
            for _ in 0..depth {
                w.put_u8(8); // RESP_TRACED
                TraceContext::default().encode(&mut w);
            }
            w.put_u8(3); // RESP_APPLY_BATCH
            w.put_u64(1);
            assert!(matches!(
                Response::from_bytes(&w.into_bytes()),
                Err(CodecError::InvalidTag { what: "Response", tag: 8 })
            ));
        }
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        let path = Path::new(vec![v(1), v(4), v(2)], Weight::new(0.1 + 0.2));
        let answer = QueryAnswer {
            paths: vec![path.clone()],
            epoch: 42,
            cache_hit: true,
            latency_micros: 1234,
            stats: WireQueryStats { iterations: 3, ..Default::default() },
        };
        let responses = vec![
            Response::Pong { protocol_version: 1, epoch: 7, num_shards: 4, negotiated_version: 0 },
            Response::Pong { protocol_version: 1, epoch: 7, num_shards: 4, negotiated_version: 2 },
            Response::SegmentBatch(WireSegmentBatch {
                leader_epoch: 19,
                records: vec![WireShippedRecord {
                    epoch: 17,
                    batch: UpdateBatch::new(vec![WeightUpdate::new(EdgeId(3), Weight::new(1.5))]),
                }],
                fallback: None,
            }),
            Response::SegmentBatch(WireSegmentBatch {
                leader_epoch: 19,
                records: vec![],
                fallback: Some(WireSnapshotManifest {
                    snapshot_epoch: 16,
                    files: vec![
                        WireSnapshotFile {
                            name: "checkpoint-00000000000000000010.ckpt".to_string(),
                            len: 1024,
                        },
                        WireSnapshotFile {
                            name: "partial-00000000000000000016.pckpt".to_string(),
                            len: 128,
                        },
                    ],
                }),
            }),
            Response::SnapshotChunk(WireSnapshotChunk {
                name: "checkpoint-00000000000000000010.ckpt".to_string(),
                offset: 512,
                total_len: 1024,
                bytes: vec![0xAB; 512],
            }),
            Response::ReplAck { leader_epoch: 21 },
            Response::Query(answer.clone()),
            Response::QueryBatch(vec![
                QueryOutcome::Answer(answer),
                QueryOutcome::Error(ErrorReply::InvalidK),
            ]),
            Response::ApplyBatch { epoch: 9 },
            Response::Metrics(WireMetrics {
                completed: 10,
                rejected: 3,
                queue_gauges: vec![WireQueueGauge { depth: 1, high_water: 5, max_depth: 64 }],
                steals: 7,
                cache_retained: 21,
                cache_evicted: 4,
                epoch_age_ms: 350,
                ..Default::default()
            }),
            Response::CheckpointNow { epoch: Some(12) },
            Response::CheckpointNow { epoch: None },
            Response::ObsSnapshot(crate::obs::WireObsSnapshot {
                counters: vec![crate::obs::WireCounter {
                    name: "ksp_requests_completed_total".to_string(),
                    labels: String::new(),
                    value: 11,
                }],
                ..Default::default()
            }),
            Response::Error(ErrorReply::UnsupportedVersion { server: 1, client: 99 }),
        ];
        for response in responses {
            let decoded = Response::from_bytes(&response.to_bytes()).unwrap();
            assert_eq!(decoded, response);
        }
        // Distances survive bit-for-bit, not merely approximately.
        let encoded = Response::Query(QueryAnswer {
            paths: vec![path.clone()],
            epoch: 0,
            cache_hit: false,
            latency_micros: 0,
            stats: WireQueryStats::default(),
        })
        .to_bytes();
        let Response::Query(decoded) = Response::from_bytes(&encoded).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(
            decoded.paths[0].distance().value().to_bits(),
            path.distance().value().to_bits()
        );
    }

    #[test]
    fn error_replies_round_trip() {
        let errors = vec![
            ErrorReply::Overloaded { depth: 64, retry_after_ms: 0 },
            ErrorReply::Overloaded { depth: 2048, retry_after_ms: 125 },
            ErrorReply::ShuttingDown,
            ErrorReply::InvalidQuery("vertex v99 out of range".to_string()),
            ErrorReply::InvalidK,
            ErrorReply::InvalidBatch("edge e7 out of range".to_string()),
            ErrorReply::Storage("disk full".to_string()),
            ErrorReply::Unsupported("no store attached".to_string()),
            ErrorReply::UnsupportedVersion { server: 1, client: 2 },
            ErrorReply::Malformed("bad magic".to_string()),
        ];
        for e in errors {
            assert_eq!(ErrorReply::from_bytes(&e.to_bytes()).unwrap(), e);
        }
    }

    #[test]
    fn overloaded_wire_compat_across_the_retry_hint() {
        // A hint-free rejection must still travel under the legacy tag 0 so
        // pre-hint decoders understand it...
        let legacy = ErrorReply::Overloaded { depth: 7, retry_after_ms: 0 };
        let bytes = legacy.to_bytes();
        assert_eq!(bytes[0], ERR_OVERLOADED);

        // ...and a hand-built legacy payload (tag 0 + depth, from a server
        // that predates the adaptive controller) must decode with a zero hint.
        let mut w = Writer::new();
        w.put_u8(ERR_OVERLOADED);
        w.put_u64(42);
        assert_eq!(
            ErrorReply::from_bytes(&w.into_bytes()).unwrap(),
            ErrorReply::Overloaded { depth: 42, retry_after_ms: 0 }
        );

        // The hinted form rides its own appended tag and exposes the hint.
        let hinted = ErrorReply::Overloaded { depth: 9, retry_after_ms: 250 };
        assert_eq!(hinted.to_bytes()[0], ERR_OVERLOADED_RETRY);
        assert_eq!(hinted.retry_after_ms(), Some(250));
        assert_eq!(legacy.retry_after_ms(), None);
    }

    #[test]
    fn legacy_ping_and_pong_payloads_keep_decoding() {
        // A v1 client's Ping is tag + one u32 and nothing else. The new
        // decoder must read it with an empty version range...
        let mut w = Writer::new();
        w.put_u8(REQ_PING);
        w.put_u32(PROTOCOL_VERSION);
        assert_eq!(
            Request::from_bytes(&w.into_bytes()).unwrap(),
            Request::Ping { protocol_version: PROTOCOL_VERSION, min_version: 0, max_version: 0 }
        );

        // ...and the legacy constructor must emit that byte-identical
        // payload, so a pre-negotiation *server* keeps decoding our Ping.
        let mut w = Writer::new();
        w.put_u8(REQ_PING);
        w.put_u32(PROTOCOL_VERSION);
        assert_eq!(Request::ping_legacy(PROTOCOL_VERSION).to_bytes(), w.into_bytes());

        // Same both ways for Pong: a legacy server's payload ends after
        // num_shards and decodes with negotiated_version 0...
        let mut w = Writer::new();
        w.put_u8(RESP_PONG);
        w.put_u32(PROTOCOL_VERSION);
        w.put_u64(7);
        w.put_u64(4);
        let legacy_pong = w.into_bytes();
        assert_eq!(
            Response::from_bytes(&legacy_pong).unwrap(),
            Response::Pong {
                protocol_version: PROTOCOL_VERSION,
                epoch: 7,
                num_shards: 4,
                negotiated_version: 0,
            }
        );
        // ...and a zero negotiation encodes to that byte-identical payload,
        // so answering a legacy client never grows the Pong.
        let unnegotiated = Response::Pong {
            protocol_version: PROTOCOL_VERSION,
            epoch: 7,
            num_shards: 4,
            negotiated_version: 0,
        };
        assert_eq!(unnegotiated.to_bytes(), legacy_pong);

        // The range-announcing Ping carries the tail and round-trips.
        let Request::Ping { min_version, max_version, .. } =
            Request::from_bytes(&Request::ping().to_bytes()).unwrap()
        else {
            panic!("wrong variant");
        };
        assert_eq!((min_version, max_version), (PROTOCOL_VERSION, PROTOCOL_VERSION_MAX));
    }

    #[test]
    fn appended_metrics_counters_round_trip() {
        // The steal/retention counters and the epoch-age gauge were appended
        // under PROTOCOL_VERSION 1 (after `queue_gauges`, append-only): they
        // must survive the wire exactly, including at the extremes and
        // alongside populated gauges.
        for (steals, retained, evicted, age) in
            [(0u64, 0u64, 0u64, 0u64), (1, 2, 3, 4), (u64::MAX, 7, u64::MAX, 12_000)]
        {
            let metrics = WireMetrics {
                completed: 100,
                cache_hits: 40,
                cache_misses: 60,
                queue_gauges: vec![
                    WireQueueGauge { depth: 2, high_water: 9, max_depth: 64 },
                    WireQueueGauge { depth: 0, high_water: 1, max_depth: 64 },
                ],
                steals,
                cache_retained: retained,
                cache_evicted: evicted,
                epoch_age_ms: age,
                ..Default::default()
            };
            let decoded = WireMetrics::from_bytes(&metrics.to_bytes()).unwrap();
            assert_eq!(decoded, metrics);
            assert_eq!(decoded.steals, steals);
            assert_eq!(decoded.cache_retained, retained);
            assert_eq!(decoded.cache_evicted, evicted);
            assert_eq!(decoded.epoch_age_ms, age);

            // Each appended field is guarded individually: a payload cut
            // after any prefix of the tail still decodes, with the missing
            // fields reading as zero. 0 fields cut = full tail; 4 = a payload
            // from a v1 build that predates all of them.
            let bytes = metrics.to_bytes();
            for fields_cut in 0..=4usize {
                let cut = bytes.len() - 8 * fields_cut;
                let legacy = WireMetrics::from_bytes(&bytes[..cut]).unwrap();
                assert_eq!(legacy.completed, metrics.completed);
                assert_eq!(legacy.queue_gauges, metrics.queue_gauges);
                assert_eq!(legacy.steals, if fields_cut >= 4 { 0 } else { steals });
                assert_eq!(legacy.cache_retained, if fields_cut >= 3 { 0 } else { retained });
                assert_eq!(legacy.cache_evicted, if fields_cut >= 2 { 0 } else { evicted });
                assert_eq!(legacy.epoch_age_ms, if fields_cut >= 1 { 0 } else { age });
            }
        }
    }

    #[test]
    fn non_simple_wire_paths_are_rejected() {
        let looping = WirePath { vertices: vec![v(1), v(2), v(1)], distance: Weight::new(3.0) };
        assert!(looping.into_path().is_err());
        let empty = WirePath { vertices: vec![], distance: Weight::ZERO };
        assert!(empty.into_path().is_err());
    }

    #[test]
    fn unknown_tags_fail_typed() {
        assert!(matches!(
            Request::from_bytes(&[200]),
            Err(CodecError::InvalidTag { what: "Request", tag: 200 })
        ));
        assert!(matches!(
            Response::from_bytes(&[200]),
            Err(CodecError::InvalidTag { what: "Response", tag: 200 })
        ));
    }

    #[test]
    fn truncated_messages_fail_typed() {
        let bytes = Request::Query(QueryKey::new(v(1), v(2), 3)).to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Request::from_bytes(&bytes[..cut]).is_err(),
                "a {cut}-byte prefix must not decode"
            );
        }
    }

    #[test]
    fn oversized_batch_count_fails_before_allocation() {
        // A QueryBatch claiming u64::MAX entries with a tiny payload must be
        // rejected by the count validation, not by the allocator.
        let mut w = Writer::new();
        w.put_u8(2); // REQ_QUERY_BATCH
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(matches!(Request::from_bytes(&bytes), Err(CodecError::LengthOutOfBounds { .. })));
    }
}
