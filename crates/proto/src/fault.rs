//! [`FaultTransport`]: deterministic network-fault injection over any
//! [`Transport`].
//!
//! The wrapper consults a seeded [`FaultPlan`] at two points — once before a
//! request is sent ([`FaultPoint::NetSend`]) and once when its response
//! arrives ([`FaultPoint::NetRecv`]) — and turns the drawn
//! [`FaultAction`]s into the failures a flaky network produces at the
//! message level:
//!
//! * `DelayMs` — the round trip stalls (a congested or lossy-and-retrying
//!   link). With an I/O deadline armed on the inner transport, a long enough
//!   delay manifests as [`TransportError::TimedOut`] exactly as a real stall
//!   would.
//! * `DropReply` — the response is discarded after the inner transport
//!   produced it: the caller sees [`TransportError::TimedOut`], the server
//!   believes it answered. This is the classic "did my write commit?"
//!   ambiguity.
//! * `DuplicateReply` — the response is delivered *and* stashed; the next
//!   round trip returns the stale copy without consulting the server (a
//!   retransmitted frame answering the wrong request).
//! * `Sever` — the connection dies mid-exchange and stays dead: this and
//!   every later call fail with [`TransportError::Disconnected`] until the
//!   caller reconnects (which, for a [`FaultTransport`], means building a
//!   new wrapper).
//! * `Fail` / anything else — the round trip fails with the action's
//!   injected [`std::io::Error`].
//!
//! Because the plan is seeded, a chaos test replays the exact same fault
//! schedule from the same seed — see `ksp-fault`'s crate docs.

use crate::message::{Request, Response};
use crate::transport::{Transport, TransportError, TransportStats};
use ksp_fault::{FaultAction, FaultPlan, FaultPoint};
use std::time::Duration;

/// A [`Transport`] wrapper injecting scheduled message-level faults. See the
/// [module docs](self) for the action semantics.
pub struct FaultTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    /// Once severed, every call fails `Disconnected` — a dead socket does
    /// not come back.
    severed: bool,
    /// A stashed duplicate response, delivered on the next round trip in
    /// place of a fresh exchange.
    duplicate: Option<Response>,
}

impl<T: Transport> FaultTransport<T> {
    /// Wraps `inner`, drawing faults from `plan` (clones of one plan share
    /// one schedule — wrap several transports with clones to spread a single
    /// deterministic schedule across connections).
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        FaultTransport { inner, plan, severed: false, duplicate: None }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The fault plan faults are drawn from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Applies one drawn action around the send side. `Ok(())` means the
    /// request may proceed to the inner transport.
    fn apply_send(&mut self, action: FaultAction) -> Result<(), TransportError> {
        match action {
            FaultAction::DelayMs { ms } => {
                std::thread::sleep(Duration::from_millis(ms));
                Ok(())
            }
            FaultAction::Sever => {
                self.severed = true;
                Err(TransportError::Disconnected)
            }
            FaultAction::DropReply | FaultAction::DuplicateReply => {
                // Reply-shaped actions armed on the send point have nothing
                // to act on yet; treat them as a generic send failure so an
                // over-broad plan still fails loudly instead of silently.
                Err(TransportError::Io(action.to_io_error()))
            }
            other => Err(TransportError::Io(other.to_io_error())),
        }
    }

    /// Applies one drawn action to a received response.
    fn apply_recv(
        &mut self,
        action: FaultAction,
        response: Response,
    ) -> Result<Response, TransportError> {
        match action {
            FaultAction::DelayMs { ms } => {
                std::thread::sleep(Duration::from_millis(ms));
                Ok(response)
            }
            FaultAction::DropReply => Err(TransportError::TimedOut),
            FaultAction::DuplicateReply => {
                self.duplicate = Some(response.clone());
                Ok(response)
            }
            FaultAction::Sever => {
                self.severed = true;
                Err(TransportError::Disconnected)
            }
            other => Err(TransportError::Io(other.to_io_error())),
        }
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn roundtrip(&mut self, request: Request) -> Result<Response, TransportError> {
        if self.severed {
            return Err(TransportError::Disconnected);
        }
        if let Some(stale) = self.duplicate.take() {
            // A duplicated frame sits first in the receive buffer: it answers
            // this request, whatever was asked.
            return Ok(stale);
        }
        if let Some(action) = self.plan.next(FaultPoint::NetSend) {
            self.apply_send(action)?;
        }
        let response = self.inner.roundtrip(request)?;
        match self.plan.next(FaultPoint::NetRecv) {
            Some(action) => self.apply_recv(action, response),
            None => Ok(response),
        }
    }

    // `pipeline` intentionally uses the trait's sequential default: every
    // message then passes both fault points, which is the coverage a chaos
    // test wants (true pipelining would bypass per-message injection).

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_fault::Schedule;

    /// Answers every round trip with a Pong carrying the call ordinal as the
    /// epoch, so tests can see *which* exchange produced a response.
    struct CountingTransport {
        calls: u64,
    }

    impl Transport for CountingTransport {
        fn roundtrip(&mut self, _request: Request) -> Result<Response, TransportError> {
            self.calls += 1;
            Ok(Response::Pong {
                protocol_version: crate::message::PROTOCOL_VERSION,
                epoch: self.calls,
                num_shards: 1,
                negotiated_version: crate::message::PROTOCOL_VERSION_MAX,
            })
        }

        fn stats(&self) -> TransportStats {
            TransportStats::default()
        }
    }

    fn pong_epoch(r: &Response) -> u64 {
        match r {
            Response::Pong { epoch, .. } => *epoch,
            other => panic!("expected Pong, got {other:?}"),
        }
    }

    #[test]
    fn drop_reply_times_out_but_server_answered() {
        let plan = FaultPlan::new(7);
        plan.arm(FaultPoint::NetRecv, Schedule::Nth(2), FaultAction::DropReply);
        let mut t = FaultTransport::new(CountingTransport { calls: 0 }, plan);
        assert_eq!(pong_epoch(&t.roundtrip(Request::ping()).unwrap()), 1);
        assert!(matches!(t.roundtrip(Request::ping()), Err(TransportError::TimedOut)));
        // The server side did process the dropped exchange.
        assert_eq!(t.inner().calls, 2);
        assert_eq!(pong_epoch(&t.roundtrip(Request::ping()).unwrap()), 3);
    }

    #[test]
    fn duplicate_reply_answers_the_next_request() {
        let plan = FaultPlan::new(7);
        plan.arm(FaultPoint::NetRecv, Schedule::Nth(1), FaultAction::DuplicateReply);
        let mut t = FaultTransport::new(CountingTransport { calls: 0 }, plan);
        assert_eq!(pong_epoch(&t.roundtrip(Request::ping()).unwrap()), 1);
        // The duplicate answers without reaching the server.
        assert_eq!(pong_epoch(&t.roundtrip(Request::ping()).unwrap()), 1);
        assert_eq!(t.inner().calls, 1);
        assert_eq!(pong_epoch(&t.roundtrip(Request::ping()).unwrap()), 2);
    }

    #[test]
    fn sever_is_permanent() {
        let plan = FaultPlan::new(7);
        plan.arm(FaultPoint::NetSend, Schedule::Nth(2), FaultAction::Sever);
        let mut t = FaultTransport::new(CountingTransport { calls: 0 }, plan);
        assert!(t.roundtrip(Request::ping()).is_ok());
        for _ in 0..3 {
            assert!(matches!(t.roundtrip(Request::ping()), Err(TransportError::Disconnected)));
        }
        assert_eq!(t.inner().calls, 1, "nothing reaches a severed connection");
    }

    #[test]
    fn same_seed_same_network_schedule() {
        let run = |seed: u64| {
            let plan = FaultPlan::new(seed);
            plan.arm(FaultPoint::NetRecv, Schedule::PerMille(300), FaultAction::DropReply);
            let mut t = FaultTransport::new(CountingTransport { calls: 0 }, plan);
            let outcomes: Vec<bool> =
                (0..64).map(|_| t.roundtrip(Request::ping()).is_ok()).collect();
            (outcomes, t.plan().fingerprint())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds should diverge");
    }
}
