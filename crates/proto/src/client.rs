//! [`KspClient`]: the typed handle applications hold on a serving endpoint.
//!
//! A client wraps any [`Transport`] — the TCP transport for a remote shard,
//! `ksp-serve`'s `InProcTransport` for the same-process path — behind the
//! operations the protocol offers: single queries, pipelined multi-query
//! batches, epoch publication, metrics and checkpointing. Server-side
//! failures arrive as typed [`ErrorReply`] values inside
//! [`ClientError::Server`]; a client never needs to parse error strings to
//! tell backpressure from a bad request.

use crate::message::{
    ErrorReply, QueryAnswer, QueryKey, QueryOutcome, Request, Response, TraceContext, WireMetrics,
    WireSegmentBatch, WireSnapshotChunk,
};
use crate::transport::{TcpTransport, Transport, TransportError, TransportStats};
use ksp_graph::{UpdateBatch, VertexId};
use ksp_obs::LatencyHistogram;
use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Process-wide client id allocator: every `KspClient` gets a distinct id so
/// trace ids minted by different clients (threads) never collide.
static NEXT_CLIENT_ID: AtomicU64 = AtomicU64::new(1);

/// A client-perceived latency decomposition, all values cumulative
/// microseconds since the client was created.
///
/// `total` is wall-clock time spent inside client calls; `serialize` and
/// `decode` come from [`TransportStats`]; `server` is the sum of the
/// server-reported per-query latencies echoed in [`QueryAnswer`]s. What
/// remains — `network` — is the unattributed residual: wire transit, kernel
/// buffers and server-side queueing outside the measured request span. For
/// in-process transports serialize/decode/network are all zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Wall-clock microseconds spent inside client calls.
    pub total_micros: u64,
    /// Microseconds encoding request payloads.
    pub serialize_micros: u64,
    /// Residual microseconds not attributed to any other bucket
    /// (`total − serialize − server − decode`, saturating at zero).
    pub network_micros: u64,
    /// Sum of server-reported query latencies, microseconds.
    pub server_micros: u64,
    /// Microseconds decoding response payloads.
    pub decode_micros: u64,
    /// Overload retries performed under
    /// [`ClientConfig::retry_on_overload`]; `0` when the policy is off (the
    /// default) or never triggered. Each retry's backoff sleep is *included*
    /// in `total_micros` — a retried call is one client-perceived call.
    pub retries: u64,
}

/// What the server reported during the `Ping` handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandshakeInfo {
    /// The protocol version the server speaks (equals
    /// [`PROTOCOL_VERSION`] — a mismatch fails the handshake instead).
    pub protocol_version: u32,
    /// The epoch the server was publishing at handshake time.
    pub epoch: u64,
    /// Number of shard workers behind the endpoint.
    pub num_shards: u64,
    /// The protocol version negotiated from this client's announced range;
    /// `0` when the server predates negotiation (treat as v1).
    pub negotiated_version: u32,
}

/// Client-side policy knobs.
///
/// The retry policy implements *decorrelated jitter*: each backoff is drawn
/// uniformly from `[base_backoff_ms, 3 × previous_sleep]` (clamped to
/// `max_backoff_ms`), and never below the server's `retry_after_ms` hint when
/// one was carried — so a fleet of rejected clients decorrelates instead of
/// retrying in lockstep, while still honouring the server's own estimate of
/// when capacity returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Whether [`ErrorReply::Overloaded`] rejections are retried after a
    /// backoff instead of surfaced. Off by default: a load generator must
    /// observe rejections, and retries amplify overload unless an operator
    /// opts in deliberately.
    pub retry_on_overload: bool,
    /// Maximum retries per call before the rejection surfaces anyway.
    pub max_retries: u32,
    /// Lower bound of every backoff draw, milliseconds.
    pub base_backoff_ms: u64,
    /// Upper clamp on any single backoff sleep, milliseconds.
    pub max_backoff_ms: u64,
    /// Deadline applied to the TCP connect and to every individual socket
    /// read and write ([`KspClient::connect_with_config`]). An expired
    /// deadline surfaces as [`ClientError::TimedOut`]. `None` (the default)
    /// blocks forever — the pre-deadline behaviour.
    pub io_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            retry_on_overload: false,
            max_retries: 3,
            base_backoff_ms: 5,
            max_backoff_ms: 500,
            io_timeout: None,
        }
    }
}

impl ClientConfig {
    /// The opt-in retry policy with default bounds.
    pub fn retrying() -> Self {
        ClientConfig { retry_on_overload: true, ..ClientConfig::default() }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport could not complete the round trip.
    Transport(TransportError),
    /// An I/O deadline ([`ClientConfig::io_timeout`]) expired before the
    /// server answered. The connection's stream state is unknown (a late
    /// response may still be in flight); reconnect before reusing it.
    TimedOut,
    /// The server answered with a typed error.
    Server(ErrorReply),
    /// The server answered with a response of the wrong kind (protocol
    /// violation).
    UnexpectedResponse {
        /// The response kind that was expected.
        expected: &'static str,
    },
}

impl ClientError {
    /// Whether this is the admission-control backpressure signal — the one
    /// error a load generator treats as "slow down", not "fail".
    pub fn is_overloaded(&self) -> bool {
        matches!(self, ClientError::Server(e) if e.is_overloaded())
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport failed: {e}"),
            ClientError::TimedOut => write!(f, "I/O deadline expired waiting for the server"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::UnexpectedResponse { expected } => {
                write!(f, "server sent the wrong response kind (expected {expected})")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Transport(e) => Some(e),
            ClientError::Server(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for ClientError {
    fn from(e: TransportError) -> Self {
        match e {
            TransportError::TimedOut => ClientError::TimedOut,
            other => ClientError::Transport(other),
        }
    }
}

/// A blocking client for the KSP serving protocol, generic over its
/// [`Transport`].
///
/// Every request is stamped with a [`TraceContext`] — a process-unique trace
/// id plus the client-clock origin — wrapped in a `Request::Traced` envelope.
/// The server echoes the context on its response and records the trace id in
/// any flight-recorder dump the request triggers, so a client can resolve its
/// own trace ids to server-side span chains. Call
/// [`KspClient::set_tracing`]`(false)` to send bare requests instead.
pub struct KspClient<T: Transport> {
    transport: T,
    /// Origin of this client's trace clock; `origin_micros` stamps are
    /// elapsed time since here.
    origin: Instant,
    client_id: u64,
    requests_sent: u64,
    tracing: bool,
    last_trace_id: u64,
    total_micros: u64,
    server_micros: u64,
    perceived: Option<Arc<LatencyHistogram>>,
    config: ClientConfig,
    retries: u64,
    /// Previous backoff sleep in ms — the decorrelated-jitter state.
    prev_backoff_ms: u64,
    /// xorshift64 state for the jitter draws; seeded from the client id so
    /// concurrent clients decorrelate without any shared randomness source.
    jitter_state: u64,
}

impl KspClient<TcpTransport> {
    /// Connects over TCP and performs the `Ping` version handshake.
    ///
    /// A version disagreement always fails typed, through one of two shapes:
    /// when the server rejects the *announced* version it answers
    /// [`ErrorReply::UnsupportedVersion`] (surfaced as
    /// [`ClientError::Server`]); when the peers' *frame-level* versions
    /// differ, each side detects the foreign header locally as a
    /// [`FrameError::VersionMismatch`](crate::FrameError::VersionMismatch)
    /// before touching the payload — the frozen header layout is what makes
    /// that possible without decoding bytes of an unknown format.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<(Self, HandshakeInfo), ClientError> {
        Self::connect_with_config(addr, ClientConfig::default())
    }

    /// [`KspClient::connect`] with explicit policy knobs. In particular,
    /// [`ClientConfig::io_timeout`] bounds the TCP connect and every socket
    /// read/write (including the handshake): a dead or wedged peer surfaces
    /// as [`ClientError::TimedOut`] instead of blocking forever.
    pub fn connect_with_config(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<(Self, HandshakeInfo), ClientError> {
        let transport = TcpTransport::connect_timeout(addr, config.io_timeout)
            .map_err(|e| ClientError::from(TransportError::from(e)))?;
        let (client, info) = Self::handshake(transport)?;
        Ok((client.with_config(config), info))
    }
}

impl<T: Transport> KspClient<T> {
    /// Wraps a transport without a handshake. Useful for in-process
    /// transports, where both ends are the same build by construction.
    pub fn new(transport: T) -> Self {
        let client_id = NEXT_CLIENT_ID.fetch_add(1, Ordering::Relaxed);
        KspClient {
            transport,
            origin: Instant::now(),
            client_id,
            requests_sent: 0,
            tracing: true,
            last_trace_id: 0,
            total_micros: 0,
            server_micros: 0,
            perceived: None,
            config: ClientConfig::default(),
            retries: 0,
            prev_backoff_ms: 0,
            jitter_state: client_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// Replaces the client's policy knobs (retry behaviour).
    pub fn set_config(&mut self, config: ClientConfig) {
        self.config = config;
    }

    /// Builder-style [`KspClient::set_config`].
    pub fn with_config(mut self, config: ClientConfig) -> Self {
        self.set_config(config);
        self
    }

    /// Overload retries performed so far under
    /// [`ClientConfig::retry_on_overload`].
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Wraps a transport and performs the `Ping` version handshake.
    pub fn handshake(transport: T) -> Result<(Self, HandshakeInfo), ClientError> {
        let mut client = KspClient::new(transport);
        let info = client.ping()?;
        Ok((client, info))
    }

    /// Enables or disables trace-context stamping (on by default).
    pub fn set_tracing(&mut self, tracing: bool) {
        self.tracing = tracing;
    }

    /// The trace id stamped on the most recent traced request, or zero if no
    /// traced request has been sent. Matches the `trace_id` a server-side
    /// flight dump records when that request trips an anomaly trigger.
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace_id
    }

    /// Installs a shared sink recording the client-perceived wall-clock
    /// latency of every call. Several clients can share one histogram to
    /// build a fleet-wide perceived-latency distribution.
    pub fn set_perceived_sink(&mut self, sink: Arc<LatencyHistogram>) {
        self.perceived = Some(sink);
    }

    /// Decomposes cumulative client-perceived latency into
    /// serialize / network / server / decode buckets.
    pub fn latency_breakdown(&self) -> LatencyBreakdown {
        let stats = self.transport.stats();
        let attributed = stats.serialize_micros + self.server_micros + stats.decode_micros;
        LatencyBreakdown {
            total_micros: self.total_micros,
            serialize_micros: stats.serialize_micros,
            network_micros: self.total_micros.saturating_sub(attributed),
            server_micros: self.server_micros,
            decode_micros: stats.decode_micros,
            retries: self.retries,
        }
    }

    /// Mints the next trace context: the id is `client_id << 32 | sequence`,
    /// unique across every client in this process.
    fn next_trace(&mut self) -> TraceContext {
        self.requests_sent += 1;
        TraceContext {
            trace_id: (self.client_id << 32) | (self.requests_sent & 0xFFFF_FFFF),
            origin_micros: self.origin.elapsed().as_micros().min(u64::MAX as u128) as u64,
        }
    }

    /// Sends a `Ping` announcing the full `[PROTOCOL_VERSION,
    /// PROTOCOL_VERSION_MAX]` range this build can speak, returning the
    /// server's version, negotiated version and current epoch. A server that
    /// predates negotiation reports `negotiated_version` 0 — callers treat
    /// that as v1.
    pub fn ping(&mut self) -> Result<HandshakeInfo, ClientError> {
        match self.call(Request::ping())? {
            Response::Pong { protocol_version, epoch, num_shards, negotiated_version } => {
                Ok(HandshakeInfo { protocol_version, epoch, num_shards, negotiated_version })
            }
            _ => Err(ClientError::UnexpectedResponse { expected: "Pong" }),
        }
    }

    /// Requests WAL records from `from_epoch` (replication surface;
    /// negotiate protocol version `>= 2` first). `max_records`/`max_bytes`
    /// of `0` accept the server's caps.
    pub fn ship_segment(
        &mut self,
        from_epoch: u64,
        max_records: u64,
        max_bytes: u64,
    ) -> Result<WireSegmentBatch, ClientError> {
        match self.call(Request::ShipSegment { from_epoch, max_records, max_bytes })? {
            Response::SegmentBatch(batch) => Ok(batch),
            _ => Err(ClientError::UnexpectedResponse { expected: "SegmentBatch" }),
        }
    }

    /// Fetches one chunk of a snapshot file named by a fallback manifest.
    pub fn snapshot_chunk(
        &mut self,
        name: &str,
        offset: u64,
        max_len: u64,
    ) -> Result<WireSnapshotChunk, ClientError> {
        match self.call(Request::SnapshotChunk { name: name.to_string(), offset, max_len })? {
            Response::SnapshotChunk(chunk) => Ok(chunk),
            _ => Err(ClientError::UnexpectedResponse { expected: "SnapshotChunk" }),
        }
    }

    /// Acknowledges the newest epoch this follower has applied, returning
    /// the leader's current epoch (the lag reference).
    pub fn repl_ack(&mut self, follower: &str, applied_epoch: u64) -> Result<u64, ClientError> {
        match self.call(Request::ReplAck { follower: follower.to_string(), applied_epoch })? {
            Response::ReplAck { leader_epoch } => Ok(leader_epoch),
            _ => Err(ClientError::UnexpectedResponse { expected: "ReplAck" }),
        }
    }

    /// Answers one KSP query.
    pub fn query(
        &mut self,
        source: VertexId,
        target: VertexId,
        k: usize,
    ) -> Result<QueryAnswer, ClientError> {
        match self.call(Request::Query(QueryKey::new(source, target, k)))? {
            Response::Query(answer) => Ok(answer),
            _ => Err(ClientError::UnexpectedResponse { expected: "Query" }),
        }
    }

    /// Answers a batch of queries with one request frame; each query
    /// succeeds or fails independently, in request order.
    pub fn query_batch(
        &mut self,
        keys: &[QueryKey],
    ) -> Result<Vec<Result<QueryAnswer, ErrorReply>>, ClientError> {
        match self.call(Request::QueryBatch(keys.to_vec()))? {
            Response::QueryBatch(outcomes) => {
                if outcomes.len() != keys.len() {
                    return Err(ClientError::UnexpectedResponse {
                        expected: "one outcome per batched query",
                    });
                }
                Ok(outcomes.into_iter().map(|o| o.into_result()).collect())
            }
            _ => Err(ClientError::UnexpectedResponse { expected: "QueryBatch" }),
        }
    }

    /// Issues many single-query requests *pipelined*: every request frame is
    /// written before the first response is read, so the batch costs one
    /// round trip of latency instead of one per query.
    pub fn query_pipelined(
        &mut self,
        keys: &[QueryKey],
    ) -> Result<Vec<Result<QueryAnswer, ErrorReply>>, ClientError> {
        let started = Instant::now();
        let requests = keys
            .iter()
            .map(|&key| {
                let request = Request::Query(key);
                if self.tracing {
                    let trace = self.next_trace();
                    self.last_trace_id = trace.trace_id;
                    Request::Traced { trace, inner: Box::new(request) }
                } else {
                    request
                }
            })
            .collect();
        let responses = self.transport.pipeline(requests)?;
        let elapsed = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.total_micros += elapsed;
        if let Some(sink) = &self.perceived {
            sink.record_micros(elapsed);
        }
        responses
            .into_iter()
            .map(|response| {
                let (_trace, response) = response.into_parts();
                self.absorb_server_micros(&response);
                match response {
                    Response::Query(answer) => Ok(Ok(answer)),
                    Response::Error(e) => Ok(Err(e)),
                    _ => Err(ClientError::UnexpectedResponse { expected: "Query" }),
                }
            })
            .collect()
    }

    /// Applies one weight-update batch, returning the epoch it published.
    pub fn apply_batch(&mut self, batch: &UpdateBatch) -> Result<u64, ClientError> {
        match self.call(Request::ApplyBatch(batch.clone()))? {
            Response::ApplyBatch { epoch } => Ok(epoch),
            _ => Err(ClientError::UnexpectedResponse { expected: "ApplyBatch" }),
        }
    }

    /// Fetches a point-in-time metrics snapshot.
    pub fn metrics(&mut self) -> Result<WireMetrics, ClientError> {
        match self.call(Request::Metrics)? {
            Response::Metrics(metrics) => Ok(metrics),
            _ => Err(ClientError::UnexpectedResponse { expected: "Metrics" }),
        }
    }

    /// Synchronously checkpoints the current epoch. `Ok(None)` means the
    /// service has no store attached.
    pub fn checkpoint_now(&mut self) -> Result<Option<u64>, ClientError> {
        match self.call(Request::CheckpointNow)? {
            Response::CheckpointNow { epoch } => Ok(epoch),
            _ => Err(ClientError::UnexpectedResponse { expected: "CheckpointNow" }),
        }
    }

    /// Fetches a full observability snapshot — per-stage latency histograms,
    /// the end-to-end histogram, counters/gauges and the latest
    /// flight-recorder dump — validated back into the `ksp-obs` types.
    pub fn obs_snapshot(&mut self) -> Result<ksp_obs::ObsSnapshot, ClientError> {
        match self.call(Request::ObsSnapshot)? {
            Response::ObsSnapshot(wire) => wire.into_snapshot().map_err(|_| {
                ClientError::UnexpectedResponse { expected: "a well-formed ObsSnapshot" }
            }),
            _ => Err(ClientError::UnexpectedResponse { expected: "ObsSnapshot" }),
        }
    }

    /// Scrapes the server's metrics in the Prometheus text exposition format:
    /// one `ObsSnapshot` round trip rendered client-side with
    /// [`ksp_obs::render_prometheus`] — byte-identical to what the server
    /// renders locally.
    pub fn scrape_text(&mut self) -> Result<String, ClientError> {
        Ok(ksp_obs::render_prometheus(&self.obs_snapshot()?))
    }

    /// Physical communication cost so far (zero for in-process transports).
    pub fn stats(&self) -> TransportStats {
        self.transport.stats()
    }

    /// Consumes the client, returning its transport.
    pub fn into_transport(self) -> T {
        self.transport
    }

    fn call(&mut self, request: Request) -> Result<Response, ClientError> {
        if !self.config.retry_on_overload {
            return self.call_once(request);
        }
        let mut attempt = 0u32;
        loop {
            let result = self.call_once(request.clone());
            let hint = match &result {
                Err(ClientError::Server(e)) if e.is_overloaded() => e.retry_after_ms(),
                _ => return result,
            };
            if attempt >= self.config.max_retries {
                return result;
            }
            attempt += 1;
            self.retries += 1;
            let backoff = Duration::from_millis(self.next_backoff_ms(hint));
            let slept = Instant::now();
            std::thread::sleep(backoff);
            // The backoff is part of what this caller perceived for the call.
            self.total_micros += slept.elapsed().as_micros().min(u64::MAX as u128) as u64;
        }
    }

    /// Draws the next decorrelated-jitter backoff: uniform in
    /// `[base, 3 × previous]`, clamped to the configured maximum, then
    /// floored by the server's `retry_after_ms` hint when one was carried.
    fn next_backoff_ms(&mut self, hint: Option<u64>) -> u64 {
        let base = self.config.base_backoff_ms.max(1);
        let prev = self.prev_backoff_ms.max(base);
        let span = prev.saturating_mul(3).saturating_sub(base).max(1);
        let draw = base.saturating_add(self.next_jitter() % span);
        let mut sleep = draw.min(self.config.max_backoff_ms.max(base));
        if let Some(hint) = hint {
            sleep = sleep.max(hint);
        }
        self.prev_backoff_ms = sleep;
        sleep
    }

    /// xorshift64 — deterministic per client, decorrelated across clients.
    fn next_jitter(&mut self) -> u64 {
        let mut x = self.jitter_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter_state = x;
        x
    }

    fn call_once(&mut self, request: Request) -> Result<Response, ClientError> {
        let started = Instant::now();
        let (sent_trace, request) = if self.tracing {
            let trace = self.next_trace();
            self.last_trace_id = trace.trace_id;
            (Some(trace), Request::Traced { trace, inner: Box::new(request) })
        } else {
            (None, request)
        };
        let response = self.transport.roundtrip(request)?;
        let elapsed = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.total_micros += elapsed;
        if let Some(sink) = &self.perceived {
            sink.record_micros(elapsed);
        }
        // Unwrap the trace envelope *before* the error check: the server
        // echoes `Traced` around typed error replies too.
        let (echoed, response) = response.into_parts();
        if let (Some(sent), Some(echo)) = (sent_trace, echoed) {
            if echo.trace_id != sent.trace_id {
                return Err(ClientError::UnexpectedResponse {
                    expected: "the request's own trace id echoed back",
                });
            }
        }
        self.absorb_server_micros(&response);
        match response {
            Response::Error(e) => Err(ClientError::Server(e)),
            response => Ok(response),
        }
    }

    /// Accumulates the server-reported latency carried by query answers, the
    /// `server` bucket of [`LatencyBreakdown`].
    fn absorb_server_micros(&mut self, response: &Response) {
        match response {
            Response::Query(answer) => self.server_micros += answer.latency_micros,
            Response::QueryBatch(outcomes) => {
                for outcome in outcomes {
                    if let QueryOutcome::Answer(answer) = outcome {
                        self.server_micros += answer.latency_micros;
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ErrorReply, PROTOCOL_VERSION, PROTOCOL_VERSION_MAX};

    /// Rejects the first `rejections_left` calls with a typed `Overloaded`
    /// carrying a 1 ms hint, then answers every call with a Pong.
    struct FlakyTransport {
        rejections_left: u32,
        calls: u32,
    }

    impl Transport for FlakyTransport {
        fn roundtrip(&mut self, _request: Request) -> Result<Response, TransportError> {
            self.calls += 1;
            if self.rejections_left > 0 {
                self.rejections_left -= 1;
                return Ok(Response::Error(ErrorReply::Overloaded { depth: 7, retry_after_ms: 1 }));
            }
            Ok(Response::Pong {
                protocol_version: PROTOCOL_VERSION,
                epoch: 4,
                num_shards: 1,
                negotiated_version: PROTOCOL_VERSION_MAX,
            })
        }

        fn stats(&self) -> TransportStats {
            TransportStats::default()
        }
    }

    fn fast_retrying(max_retries: u32) -> ClientConfig {
        ClientConfig {
            retry_on_overload: true,
            max_retries,
            base_backoff_ms: 1,
            max_backoff_ms: 2,
            ..ClientConfig::default()
        }
    }

    #[test]
    fn overload_retry_is_off_by_default() {
        let mut client = KspClient::new(FlakyTransport { rejections_left: 1, calls: 0 });
        assert!(matches!(client.ping(), Err(ClientError::Server(e)) if e.is_overloaded()));
        assert_eq!(client.retries(), 0);
        assert_eq!(client.into_transport().calls, 1, "no hidden retry without opting in");
    }

    #[test]
    fn overload_retry_absorbs_transient_rejections() {
        let mut client = KspClient::new(FlakyTransport { rejections_left: 2, calls: 0 })
            .with_config(fast_retrying(3));
        let hello = client.ping().expect("two rejections are under the retry budget");
        assert_eq!(hello.epoch, 4);
        assert_eq!(client.retries(), 2);
        assert!(
            client.latency_breakdown().total_micros >= 2_000,
            "the backoff sleeps ride the perceived latency"
        );
        assert_eq!(client.latency_breakdown().retries, 2);
        assert_eq!(client.into_transport().calls, 3);
    }

    #[test]
    fn overload_retry_is_bounded() {
        let mut client = KspClient::new(FlakyTransport { rejections_left: 10, calls: 0 })
            .with_config(fast_retrying(2));
        assert!(matches!(client.ping(), Err(ClientError::Server(e)) if e.is_overloaded()));
        assert_eq!(client.retries(), 2);
        assert_eq!(client.into_transport().calls, 3, "initial call plus exactly max_retries");
    }

    #[test]
    fn backoff_is_decorrelated_hint_floored_and_clamped() {
        let mut client = KspClient::new(FlakyTransport { rejections_left: 0, calls: 0 })
            .with_config(ClientConfig {
                retry_on_overload: true,
                max_retries: 8,
                base_backoff_ms: 2,
                max_backoff_ms: 50,
                ..ClientConfig::default()
            });
        let mut prev = 0u64;
        for _ in 0..32 {
            let sleep = client.next_backoff_ms(None);
            assert!((2..=50).contains(&sleep), "draw {sleep} must stay in [base, max]");
            // Decorrelated jitter: the window grows from the previous draw,
            // never from a fixed schedule.
            assert!(sleep <= prev.max(2) * 3);
            prev = sleep;
        }
        // A server hint floors the draw.
        assert!(client.next_backoff_ms(Some(40)) >= 40);
    }
}
