//! [`KspClient`]: the typed handle applications hold on a serving endpoint.
//!
//! A client wraps any [`Transport`] — the TCP transport for a remote shard,
//! `ksp-serve`'s `InProcTransport` for the same-process path — behind the
//! operations the protocol offers: single queries, pipelined multi-query
//! batches, epoch publication, metrics and checkpointing. Server-side
//! failures arrive as typed [`ErrorReply`] values inside
//! [`ClientError::Server`]; a client never needs to parse error strings to
//! tell backpressure from a bad request.

use crate::message::{
    ErrorReply, QueryAnswer, QueryKey, Request, Response, WireMetrics, PROTOCOL_VERSION,
};
use crate::transport::{TcpTransport, Transport, TransportError, TransportStats};
use ksp_graph::{UpdateBatch, VertexId};
use std::net::ToSocketAddrs;

/// What the server reported during the `Ping` handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandshakeInfo {
    /// The protocol version the server speaks (equals
    /// [`PROTOCOL_VERSION`] — a mismatch fails the handshake instead).
    pub protocol_version: u32,
    /// The epoch the server was publishing at handshake time.
    pub epoch: u64,
    /// Number of shard workers behind the endpoint.
    pub num_shards: u64,
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport could not complete the round trip.
    Transport(TransportError),
    /// The server answered with a typed error.
    Server(ErrorReply),
    /// The server answered with a response of the wrong kind (protocol
    /// violation).
    UnexpectedResponse {
        /// The response kind that was expected.
        expected: &'static str,
    },
}

impl ClientError {
    /// Whether this is the admission-control backpressure signal — the one
    /// error a load generator treats as "slow down", not "fail".
    pub fn is_overloaded(&self) -> bool {
        matches!(self, ClientError::Server(e) if e.is_overloaded())
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport failed: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::UnexpectedResponse { expected } => {
                write!(f, "server sent the wrong response kind (expected {expected})")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Transport(e) => Some(e),
            ClientError::Server(e) => Some(e),
            ClientError::UnexpectedResponse { .. } => None,
        }
    }
}

impl From<TransportError> for ClientError {
    fn from(e: TransportError) -> Self {
        ClientError::Transport(e)
    }
}

/// A blocking client for the KSP serving protocol, generic over its
/// [`Transport`].
pub struct KspClient<T: Transport> {
    transport: T,
}

impl KspClient<TcpTransport> {
    /// Connects over TCP and performs the `Ping` version handshake.
    ///
    /// A version disagreement always fails typed, through one of two shapes:
    /// when the server rejects the *announced* version it answers
    /// [`ErrorReply::UnsupportedVersion`] (surfaced as
    /// [`ClientError::Server`]); when the peers' *frame-level* versions
    /// differ, each side detects the foreign header locally as a
    /// [`FrameError::VersionMismatch`](crate::FrameError::VersionMismatch)
    /// before touching the payload — the frozen header layout is what makes
    /// that possible without decoding bytes of an unknown format.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<(Self, HandshakeInfo), ClientError> {
        let transport = TcpTransport::connect(addr)
            .map_err(|e| ClientError::Transport(TransportError::Io(e)))?;
        Self::handshake(transport)
    }
}

impl<T: Transport> KspClient<T> {
    /// Wraps a transport without a handshake. Useful for in-process
    /// transports, where both ends are the same build by construction.
    pub fn new(transport: T) -> Self {
        KspClient { transport }
    }

    /// Wraps a transport and performs the `Ping` version handshake.
    pub fn handshake(transport: T) -> Result<(Self, HandshakeInfo), ClientError> {
        let mut client = KspClient { transport };
        let info = client.ping()?;
        Ok((client, info))
    }

    /// Sends a `Ping`, returning the server's version and current epoch.
    pub fn ping(&mut self) -> Result<HandshakeInfo, ClientError> {
        match self.call(Request::Ping { protocol_version: PROTOCOL_VERSION })? {
            Response::Pong { protocol_version, epoch, num_shards } => {
                Ok(HandshakeInfo { protocol_version, epoch, num_shards })
            }
            _ => Err(ClientError::UnexpectedResponse { expected: "Pong" }),
        }
    }

    /// Answers one KSP query.
    pub fn query(
        &mut self,
        source: VertexId,
        target: VertexId,
        k: usize,
    ) -> Result<QueryAnswer, ClientError> {
        match self.call(Request::Query(QueryKey::new(source, target, k)))? {
            Response::Query(answer) => Ok(answer),
            _ => Err(ClientError::UnexpectedResponse { expected: "Query" }),
        }
    }

    /// Answers a batch of queries with one request frame; each query
    /// succeeds or fails independently, in request order.
    pub fn query_batch(
        &mut self,
        keys: &[QueryKey],
    ) -> Result<Vec<Result<QueryAnswer, ErrorReply>>, ClientError> {
        match self.call(Request::QueryBatch(keys.to_vec()))? {
            Response::QueryBatch(outcomes) => {
                if outcomes.len() != keys.len() {
                    return Err(ClientError::UnexpectedResponse {
                        expected: "one outcome per batched query",
                    });
                }
                Ok(outcomes.into_iter().map(|o| o.into_result()).collect())
            }
            _ => Err(ClientError::UnexpectedResponse { expected: "QueryBatch" }),
        }
    }

    /// Issues many single-query requests *pipelined*: every request frame is
    /// written before the first response is read, so the batch costs one
    /// round trip of latency instead of one per query.
    pub fn query_pipelined(
        &mut self,
        keys: &[QueryKey],
    ) -> Result<Vec<Result<QueryAnswer, ErrorReply>>, ClientError> {
        let requests = keys.iter().map(|&key| Request::Query(key)).collect();
        let responses = self.transport.pipeline(requests)?;
        responses
            .into_iter()
            .map(|response| match response {
                Response::Query(answer) => Ok(Ok(answer)),
                Response::Error(e) => Ok(Err(e)),
                _ => Err(ClientError::UnexpectedResponse { expected: "Query" }),
            })
            .collect()
    }

    /// Applies one weight-update batch, returning the epoch it published.
    pub fn apply_batch(&mut self, batch: &UpdateBatch) -> Result<u64, ClientError> {
        match self.call(Request::ApplyBatch(batch.clone()))? {
            Response::ApplyBatch { epoch } => Ok(epoch),
            _ => Err(ClientError::UnexpectedResponse { expected: "ApplyBatch" }),
        }
    }

    /// Fetches a point-in-time metrics snapshot.
    pub fn metrics(&mut self) -> Result<WireMetrics, ClientError> {
        match self.call(Request::Metrics)? {
            Response::Metrics(metrics) => Ok(metrics),
            _ => Err(ClientError::UnexpectedResponse { expected: "Metrics" }),
        }
    }

    /// Synchronously checkpoints the current epoch. `Ok(None)` means the
    /// service has no store attached.
    pub fn checkpoint_now(&mut self) -> Result<Option<u64>, ClientError> {
        match self.call(Request::CheckpointNow)? {
            Response::CheckpointNow { epoch } => Ok(epoch),
            _ => Err(ClientError::UnexpectedResponse { expected: "CheckpointNow" }),
        }
    }

    /// Fetches a full observability snapshot — per-stage latency histograms,
    /// the end-to-end histogram, counters/gauges and the latest
    /// flight-recorder dump — validated back into the `ksp-obs` types.
    pub fn obs_snapshot(&mut self) -> Result<ksp_obs::ObsSnapshot, ClientError> {
        match self.call(Request::ObsSnapshot)? {
            Response::ObsSnapshot(wire) => wire.into_snapshot().map_err(|_| {
                ClientError::UnexpectedResponse { expected: "a well-formed ObsSnapshot" }
            }),
            _ => Err(ClientError::UnexpectedResponse { expected: "ObsSnapshot" }),
        }
    }

    /// Scrapes the server's metrics in the Prometheus text exposition format:
    /// one `ObsSnapshot` round trip rendered client-side with
    /// [`ksp_obs::render_prometheus`] — byte-identical to what the server
    /// renders locally.
    pub fn scrape_text(&mut self) -> Result<String, ClientError> {
        Ok(ksp_obs::render_prometheus(&self.obs_snapshot()?))
    }

    /// Physical communication cost so far (zero for in-process transports).
    pub fn stats(&self) -> TransportStats {
        self.transport.stats()
    }

    /// Consumes the client, returning its transport.
    pub fn into_transport(self) -> T {
        self.transport
    }

    fn call(&mut self, request: Request) -> Result<Response, ClientError> {
        match self.transport.roundtrip(request)? {
            Response::Error(e) => Err(ClientError::Server(e)),
            response => Ok(response),
        }
    }
}
