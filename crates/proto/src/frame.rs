//! Length-prefixed, CRC-guarded, versioned framing.
//!
//! Every protocol message travels as exactly one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "KSPF"
//! 4       4     protocol version (u32 LE)
//! 8       1     frame kind (0 = request, 1 = response)
//! 9       4     payload length in bytes (u32 LE)
//! 13      4     CRC-32 (ISO-HDLC) of the payload
//! 17      n     payload (StoreCodec-encoded message)
//! ```
//!
//! This is the delta log's record discipline lifted onto a socket: the length
//! bounds the read, the CRC rejects bit rot and torn writes, and the version
//! field — validated *before* the payload is decoded — lets a server answer a
//! foreign-version client with a typed error instead of misparsing its bytes.
//! The header layout is frozen across protocol versions for exactly that
//! reason.
//!
//! [`read_frame`] distinguishes the three ways a stream can end: a clean
//! disconnect at a frame boundary (`Ok(None)`), a tear mid-frame
//! ([`FrameError::Truncated`]), and corrupt bytes ([`FrameError::BadMagic`],
//! [`FrameError::CrcMismatch`], …). None of them panic, and none of them can
//! make the reader allocate more than [`MAX_FRAME_PAYLOAD`] bytes.

use crate::message::PROTOCOL_VERSION;
use ksp_store::{crc32, CodecError};
use std::io::{self, Read, Write};

/// Magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"KSPF";

/// Size of the fixed frame header in bytes.
pub const FRAME_HEADER_LEN: usize = 17;

/// Upper bound on a frame payload (64 MiB). A header declaring more is
/// rejected before any allocation — a corrupt or hostile length cannot make
/// the receiver reserve unbounded memory.
pub const MAX_FRAME_PAYLOAD: u32 = 64 << 20;

/// What a frame carries. On a connection, clients send request frames and
/// servers send response frames; anything else is a protocol violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// The payload is a [`crate::Request`].
    Request,
    /// The payload is a [`crate::Response`].
    Response,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::Request => 0,
            FrameKind::Response => 1,
        }
    }

    fn from_u8(tag: u8) -> Option<FrameKind> {
        match tag {
            0 => Some(FrameKind::Request),
            1 => Some(FrameKind::Response),
            _ => None,
        }
    }
}

/// Why a frame could not be read or its payload could not be decoded.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The stream ended in the middle of a frame (torn header or payload).
    Truncated {
        /// What was being read when the stream ended.
        while_reading: &'static str,
    },
    /// The first four bytes are not [`FRAME_MAGIC`]; the peer is not speaking
    /// this protocol (or stream synchronisation was lost).
    BadMagic {
        /// The bytes actually read.
        found: [u8; 4],
    },
    /// The frame was produced by a different protocol version.
    VersionMismatch {
        /// The version this build speaks.
        ours: u32,
        /// The version in the frame header.
        theirs: u32,
    },
    /// The frame kind byte is not a known [`FrameKind`].
    BadKind(u8),
    /// The declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized {
        /// The declared length.
        declared: u32,
    },
    /// The payload bytes do not match the CRC in the header.
    CrcMismatch {
        /// CRC carried in the header.
        expected: u32,
        /// CRC computed over the received payload.
        actual: u32,
    },
    /// The payload did not decode as a protocol message.
    Codec(CodecError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Truncated { while_reading } => {
                write!(f, "stream ended mid-frame (reading {while_reading})")
            }
            FrameError::BadMagic { found } => {
                write!(f, "bad frame magic {found:02x?} (expected {FRAME_MAGIC:02x?})")
            }
            FrameError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours v{ours}, frame carries v{theirs}")
            }
            FrameError::BadKind(tag) => write!(f, "unknown frame kind {tag}"),
            FrameError::Oversized { declared } => {
                write!(f, "payload of {declared} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap")
            }
            FrameError::CrcMismatch { expected, actual } => {
                write!(f, "payload CRC mismatch: header says {expected:#010x}, got {actual:#010x}")
            }
            FrameError::Codec(e) => write!(f, "payload decode failed: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<CodecError> for FrameError {
    fn from(e: CodecError) -> Self {
        FrameError::Codec(e)
    }
}

/// Total size on the wire of a frame carrying `payload_len` payload bytes.
pub fn frame_len(payload_len: usize) -> usize {
    FRAME_HEADER_LEN + payload_len
}

/// Writes one frame. Does not flush — callers batch frames and flush once
/// (that is what makes pipelined multi-query a single syscall).
///
/// A payload larger than [`MAX_FRAME_PAYLOAD`] is refused with an
/// [`io::ErrorKind::InvalidInput`] error *before any byte reaches the
/// stream*: the frame sequence stays intact, so the caller can report the
/// failure (e.g. as a typed [`crate::ErrorReply`]) on the same connection.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_PAYLOAD as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame payload of {} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap",
                payload.len()
            ),
        ));
    }
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0..4].copy_from_slice(&FRAME_MAGIC);
    header[4..8].copy_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    header[8] = kind.to_u8();
    header[9..13].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[13..17].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)
}

/// Reads from `r` until `buf` is full. Distinguishes a clean end-of-stream
/// before the first byte (`Ok(false)`) from a tear partway through
/// ([`FrameError::Truncated`]).
fn read_exact_or_eof(
    r: &mut impl Read,
    buf: &mut [u8],
    what: &'static str,
) -> Result<bool, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(FrameError::Truncated { while_reading: what });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads one frame, returning its kind and payload.
///
/// Returns `Ok(None)` when the stream ends cleanly at a frame boundary (the
/// peer closed the connection). Every other irregularity is a typed
/// [`FrameError`]; the header is validated field by field (magic, version,
/// kind, length cap) before the payload is read, and the payload CRC before
/// the bytes are handed to the caller.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(FrameKind, Vec<u8>)>, FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    if !read_exact_or_eof(r, &mut header, "frame header")? {
        return Ok(None);
    }
    if header[0..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic { found: header[0..4].try_into().expect("4 bytes") });
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if version != PROTOCOL_VERSION {
        return Err(FrameError::VersionMismatch { ours: PROTOCOL_VERSION, theirs: version });
    }
    let kind = FrameKind::from_u8(header[8]).ok_or(FrameError::BadKind(header[8]))?;
    let declared = u32::from_le_bytes(header[9..13].try_into().expect("4 bytes"));
    if declared > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversized { declared });
    }
    let expected_crc = u32::from_le_bytes(header[13..17].try_into().expect("4 bytes"));
    let mut payload = vec![0u8; declared as usize];
    if !read_exact_or_eof(r, &mut payload, "frame payload")? && declared > 0 {
        return Err(FrameError::Truncated { while_reading: "frame payload" });
    }
    let actual_crc = crc32(&payload);
    if actual_crc != expected_crc {
        return Err(FrameError::CrcMismatch { expected: expected_crc, actual: actual_crc });
    }
    Ok(Some((kind, payload)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(kind: FrameKind, payload: &[u8]) -> (FrameKind, Vec<u8>) {
        let mut buf = Vec::new();
        write_frame(&mut buf, kind, payload).unwrap();
        assert_eq!(buf.len(), frame_len(payload.len()));
        read_frame(&mut Cursor::new(buf)).unwrap().unwrap()
    }

    #[test]
    fn frames_round_trip() {
        let (kind, payload) = roundtrip(FrameKind::Request, b"hello frame");
        assert_eq!(kind, FrameKind::Request);
        assert_eq!(payload, b"hello frame");
        let (kind, payload) = roundtrip(FrameKind::Response, &[]);
        assert_eq!(kind, FrameKind::Response);
        assert!(payload.is_empty());
    }

    #[test]
    fn clean_eof_is_none_torn_header_is_truncated() {
        assert!(read_frame(&mut Cursor::new(Vec::new())).unwrap().is_none());
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"abc").unwrap();
        for cut in 1..FRAME_HEADER_LEN {
            let result = read_frame(&mut Cursor::new(buf[..cut].to_vec()));
            assert!(
                matches!(result, Err(FrameError::Truncated { while_reading: "frame header" })),
                "cut at {cut} must be a header tear"
            );
        }
        // A cut inside the payload is a payload tear.
        let result = read_frame(&mut Cursor::new(buf[..FRAME_HEADER_LEN + 1].to_vec()));
        assert!(matches!(result, Err(FrameError::Truncated { while_reading: "frame payload" })));
    }

    #[test]
    fn bad_magic_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"abc").unwrap();
        buf[0] = b'X';
        assert!(matches!(read_frame(&mut Cursor::new(buf)), Err(FrameError::BadMagic { .. })));
    }

    #[test]
    fn foreign_version_is_detected_before_payload_decode() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"abc").unwrap();
        buf[4..8].copy_from_slice(&0xDEAD_u32.to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(FrameError::VersionMismatch { ours: PROTOCOL_VERSION, theirs: 0xDEAD })
        ));
    }

    #[test]
    fn corrupt_payload_fails_the_crc() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Response, b"payload bytes").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        assert!(matches!(read_frame(&mut Cursor::new(buf)), Err(FrameError::CrcMismatch { .. })));
    }

    #[test]
    fn oversized_and_bad_kind_headers_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"x").unwrap();
        let mut oversized = buf.clone();
        oversized[9..13].copy_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(oversized)),
            Err(FrameError::Oversized { .. })
        ));
        let mut bad_kind = buf;
        bad_kind[8] = 9;
        assert!(matches!(read_frame(&mut Cursor::new(bad_kind)), Err(FrameError::BadKind(9))));
    }

    #[test]
    fn oversized_payload_is_refused_before_any_byte_is_written() {
        let payload = vec![0u8; MAX_FRAME_PAYLOAD as usize + 1];
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, FrameKind::Response, &payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(buf.is_empty(), "a refused frame must not tear the stream");
    }

    #[test]
    fn back_to_back_frames_read_in_order() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"first").unwrap();
        write_frame(&mut buf, FrameKind::Response, b"second").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap().1, b"first");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap().1, b"second");
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }
}
