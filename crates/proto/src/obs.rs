//! Wire forms of the `ksp-obs` observability snapshot.
//!
//! The serving layer's [`ObsSnapshot`] — per-stage latency histograms, the
//! end-to-end histogram, counters/gauges and the latest flight-recorder dump
//! — crosses the wire as the mirror structs in this module. `ksp-obs` owns
//! the in-process types and knows nothing about encoding; this crate owns the
//! wire layout (the orphan rule forbids implementing the store's codec for
//! another crate's types, and the split also keeps the wire format explicit).
//!
//! Decoding is hostile-input safe in the same way as the rest of the
//! protocol: lengths validate against the bytes actually available, stage and
//! event-kind codes outside the known range fail with a typed
//! [`CodecError`], and span chains must carry exactly one duration per stage.
//! Within those checks conversion back to the `ksp-obs` types is lossless, so
//! a remote scrape renders byte-identically to a local
//! [`render_prometheus`](ksp_obs::render_prometheus) call.

use ksp_obs::{
    Counter, EventKind, FlightDump, Gauge, HistogramSnapshot, ObsEvent, ObsSnapshot, PublishStage,
    PublishStageSnapshot, SpanChain, Stage, StageSnapshot,
};
use ksp_store::{CodecError, Reader, StoreCodec, Writer};

fn encode_str(s: &str, w: &mut Writer) {
    w.put_u64(s.len() as u64);
    w.put_bytes(s.as_bytes());
}

fn decode_string(r: &mut Reader<'_>) -> Result<String, CodecError> {
    let len = r.get_count(1)?;
    let bytes = r.get_bytes(len)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| CodecError::InvalidValue("string payload is not valid UTF-8"))
}

/// A latency histogram snapshot as carried on the wire (mirrors
/// [`HistogramSnapshot`]; bucket boundaries are implied by `ksp-obs`'s fixed
/// log₂-microsecond scale, so only the occupancy vector travels).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireHistogram {
    /// Per-bucket occupancy, log₂-microsecond scale, oldest bucket first.
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values, microseconds.
    pub total_micros: u64,
    /// Largest recorded value, microseconds.
    pub max_micros: u64,
}

impl From<&HistogramSnapshot> for WireHistogram {
    fn from(h: &HistogramSnapshot) -> Self {
        WireHistogram {
            buckets: h.buckets.clone(),
            count: h.count,
            total_micros: h.total_micros,
            max_micros: h.max_micros,
        }
    }
}

impl WireHistogram {
    /// Converts back into the `ksp-obs` snapshot type.
    pub fn into_snapshot(self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets,
            count: self.count,
            total_micros: self.total_micros,
            max_micros: self.max_micros,
        }
    }
}

impl StoreCodec for WireHistogram {
    fn encode(&self, w: &mut Writer) {
        self.buckets.encode(w);
        w.put_u64(self.count);
        w.put_u64(self.total_micros);
        w.put_u64(self.max_micros);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(WireHistogram {
            buckets: Vec::decode(r)?,
            count: r.get_u64()?,
            total_micros: r.get_u64()?,
            max_micros: r.get_u64()?,
        })
    }
}

/// One request stage's histogram, tagged with the stage's index code
/// (see [`Stage::index`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireStageHistogram {
    /// The stage's index code; must name a known [`Stage`] to decode.
    pub stage: u8,
    /// The stage's latency histogram.
    pub histogram: WireHistogram,
}

impl From<&StageSnapshot> for WireStageHistogram {
    fn from(s: &StageSnapshot) -> Self {
        WireStageHistogram {
            stage: s.stage.index() as u8,
            histogram: WireHistogram::from(&s.histogram),
        }
    }
}

impl WireStageHistogram {
    /// Validates the stage code and converts back into the `ksp-obs` type.
    pub fn into_snapshot(self) -> Result<StageSnapshot, CodecError> {
        let stage = Stage::from_index(self.stage as usize)
            .ok_or(CodecError::InvalidValue("stage code out of range"))?;
        Ok(StageSnapshot { stage, histogram: self.histogram.into_snapshot() })
    }
}

impl StoreCodec for WireStageHistogram {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.stage);
        self.histogram.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(WireStageHistogram { stage: r.get_u8()?, histogram: WireHistogram::decode(r)? })
    }
}

/// One write-path stage's histogram, tagged with the stage's index code
/// (see [`PublishStage::index`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePublishStageHistogram {
    /// The stage's index code; must name a known [`PublishStage`] to decode.
    pub stage: u8,
    /// The stage's latency histogram.
    pub histogram: WireHistogram,
}

impl From<&PublishStageSnapshot> for WirePublishStageHistogram {
    fn from(s: &PublishStageSnapshot) -> Self {
        WirePublishStageHistogram {
            stage: s.stage.index() as u8,
            histogram: WireHistogram::from(&s.histogram),
        }
    }
}

impl WirePublishStageHistogram {
    /// Validates the stage code and converts back into the `ksp-obs` type.
    pub fn into_snapshot(self) -> Result<PublishStageSnapshot, CodecError> {
        let stage = PublishStage::from_index(self.stage as usize)
            .ok_or(CodecError::InvalidValue("publish stage code out of range"))?;
        Ok(PublishStageSnapshot { stage, histogram: self.histogram.into_snapshot() })
    }
}

impl StoreCodec for WirePublishStageHistogram {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.stage);
        self.histogram.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(WirePublishStageHistogram { stage: r.get_u8()?, histogram: WireHistogram::decode(r)? })
    }
}

/// One flight-recorder event as carried on the wire (mirrors [`ObsEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireObsEvent {
    /// Microseconds since the recorder started.
    pub at_micros: u64,
    /// The event-kind code; must name a known [`EventKind`] to decode.
    pub kind: u8,
    /// First payload word (meaning depends on the kind).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Third payload word.
    pub c: u64,
}

impl From<&ObsEvent> for WireObsEvent {
    fn from(e: &ObsEvent) -> Self {
        WireObsEvent { at_micros: e.at_micros, kind: e.kind as u8, a: e.a, b: e.b, c: e.c }
    }
}

impl WireObsEvent {
    /// Validates the kind code and converts back into the `ksp-obs` type.
    pub fn into_event(self) -> Result<ObsEvent, CodecError> {
        let kind = EventKind::from_code(self.kind)
            .ok_or(CodecError::InvalidValue("event kind code out of range"))?;
        Ok(ObsEvent { at_micros: self.at_micros, kind, a: self.a, b: self.b, c: self.c })
    }
}

impl StoreCodec for WireObsEvent {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.at_micros);
        w.put_u8(self.kind);
        w.put_u64(self.a);
        w.put_u64(self.b);
        w.put_u64(self.c);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(WireObsEvent {
            at_micros: r.get_u64()?,
            kind: r.get_u8()?,
            a: r.get_u64()?,
            b: r.get_u64()?,
            c: r.get_u64()?,
        })
    }
}

/// A finished request's per-stage durations (mirrors [`SpanChain`]). Exactly
/// one duration per stage, in [`Stage::ALL`] order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSpanChain {
    /// Stage durations in microseconds, [`Stage::ALL`] order.
    pub stage_micros: Vec<u64>,
    /// Whether the request was answered by a thief worker.
    pub stolen: bool,
}

impl From<&SpanChain> for WireSpanChain {
    fn from(c: &SpanChain) -> Self {
        WireSpanChain { stage_micros: c.micros.to_vec(), stolen: c.stolen }
    }
}

impl WireSpanChain {
    /// Validates the stage count and converts back into the `ksp-obs` type.
    pub fn into_chain(self) -> Result<SpanChain, CodecError> {
        let micros: [u64; Stage::COUNT] =
            self.stage_micros.as_slice().try_into().map_err(|_| {
                CodecError::InvalidValue("span chain must carry one value per stage")
            })?;
        Ok(SpanChain { micros, stolen: self.stolen })
    }
}

impl StoreCodec for WireSpanChain {
    fn encode(&self, w: &mut Writer) {
        self.stage_micros.encode(w);
        self.stolen.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(WireSpanChain { stage_micros: Vec::decode(r)?, stolen: bool::decode(r)? })
    }
}

/// A flight-recorder dump as carried on the wire (mirrors [`FlightDump`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFlightDump {
    /// When the dump was taken, microseconds since the recorder started.
    pub at_micros: u64,
    /// The anomaly that triggered the dump.
    pub cause: WireObsEvent,
    /// The offending request's span chain, when the anomaly was per-request.
    pub span: Option<WireSpanChain>,
    /// The ring contents at dump time, oldest first.
    pub events: Vec<WireObsEvent>,
}

impl From<&FlightDump> for WireFlightDump {
    fn from(d: &FlightDump) -> Self {
        WireFlightDump {
            at_micros: d.at_micros,
            cause: WireObsEvent::from(&d.cause),
            span: d.span.as_ref().map(WireSpanChain::from),
            events: d.events.iter().map(WireObsEvent::from).collect(),
        }
    }
}

impl WireFlightDump {
    /// Validates every carried code and converts back into the `ksp-obs`
    /// type.
    ///
    /// The dump's `trace_id` does not travel inside this struct — it rides as
    /// [`WireObsSnapshot::dump_trace_id`], an appended outer-level field (a
    /// nested struct cannot grow its own tolerant tail when the enclosing one
    /// appends fields after it) — so it decodes to zero here and
    /// [`WireObsSnapshot::into_snapshot`] restores it.
    pub fn into_dump(self) -> Result<FlightDump, CodecError> {
        Ok(FlightDump {
            at_micros: self.at_micros,
            cause: self.cause.into_event()?,
            span: self.span.map(WireSpanChain::into_chain).transpose()?,
            events: self
                .events
                .into_iter()
                .map(WireObsEvent::into_event)
                .collect::<Result<_, _>>()?,
            trace_id: 0,
        })
    }
}

impl StoreCodec for WireFlightDump {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.at_micros);
        self.cause.encode(w);
        match &self.span {
            Some(span) => {
                w.put_u8(1);
                span.encode(w);
            }
            None => w.put_u8(0),
        }
        self.events.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(WireFlightDump {
            at_micros: r.get_u64()?,
            cause: WireObsEvent::decode(r)?,
            span: match r.get_u8()? {
                0 => None,
                1 => Some(WireSpanChain::decode(r)?),
                tag => return Err(CodecError::InvalidTag { what: "Option<WireSpanChain>", tag }),
            },
            events: Vec::decode(r)?,
        })
    }
}

/// A named monotonic counter as carried on the wire (mirrors [`Counter`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireCounter {
    /// Metric family name.
    pub name: String,
    /// Pre-rendered label pairs (`key="value"`), empty for none.
    pub labels: String,
    /// The running total.
    pub value: u64,
}

impl StoreCodec for WireCounter {
    fn encode(&self, w: &mut Writer) {
        encode_str(&self.name, w);
        encode_str(&self.labels, w);
        w.put_u64(self.value);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(WireCounter { name: decode_string(r)?, labels: decode_string(r)?, value: r.get_u64()? })
    }
}

/// A named point-in-time gauge as carried on the wire (mirrors [`Gauge`]).
/// The value travels as raw IEEE-754 bits, so it survives bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct WireGauge {
    /// Metric family name.
    pub name: String,
    /// Pre-rendered label pairs, empty for none.
    pub labels: String,
    /// The instantaneous value.
    pub value: f64,
}

impl StoreCodec for WireGauge {
    fn encode(&self, w: &mut Writer) {
        encode_str(&self.name, w);
        encode_str(&self.labels, w);
        w.put_f64(self.value);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(WireGauge { name: decode_string(r)?, labels: decode_string(r)?, value: r.get_f64()? })
    }
}

/// The full observability snapshot as carried on the wire (mirrors
/// [`ObsSnapshot`]): everything a scraper needs to render the per-stage
/// breakdown, the counters/gauges and the latest flight dump.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WireObsSnapshot {
    /// Per-stage latency histograms.
    pub stages: Vec<WireStageHistogram>,
    /// The end-to-end latency histogram the stages telescope to.
    pub end_to_end: WireHistogram,
    /// Monotonic counters.
    pub counters: Vec<WireCounter>,
    /// Point-in-time gauges.
    pub gauges: Vec<WireGauge>,
    /// The latest flight-recorder dump, when an anomaly has triggered one.
    pub dump: Option<WireFlightDump>,
    /// Per-write-path-stage latency histograms (appended in protocol
    /// generation two; empty when a legacy peer omitted the tail).
    pub publish_stages: Vec<WirePublishStageHistogram>,
    /// The end-to-end publish histogram the write-path stages telescope to.
    pub publish_end_to_end: WireHistogram,
    /// The trace id of the request that triggered `dump` (zero when untraced
    /// or absent). Travels at this level, not inside [`WireFlightDump`],
    /// because only the outermost message value can grow a tolerant tail.
    pub dump_trace_id: u64,
}

impl From<&ObsSnapshot> for WireObsSnapshot {
    fn from(s: &ObsSnapshot) -> Self {
        WireObsSnapshot {
            stages: s.stages.iter().map(WireStageHistogram::from).collect(),
            end_to_end: WireHistogram::from(&s.end_to_end),
            counters: s
                .counters
                .iter()
                .map(|c| WireCounter {
                    name: c.name.clone(),
                    labels: c.labels.clone(),
                    value: c.value,
                })
                .collect(),
            gauges: s
                .gauges
                .iter()
                .map(|g| WireGauge {
                    name: g.name.clone(),
                    labels: g.labels.clone(),
                    value: g.value,
                })
                .collect(),
            dump: s.dump.as_ref().map(WireFlightDump::from),
            publish_stages: s.publish_stages.iter().map(WirePublishStageHistogram::from).collect(),
            publish_end_to_end: WireHistogram::from(&s.publish_end_to_end),
            dump_trace_id: s.dump.as_ref().map(|d| d.trace_id).unwrap_or(0),
        }
    }
}

impl WireObsSnapshot {
    /// Validates every carried code and converts back into the `ksp-obs`
    /// snapshot, ready for [`ksp_obs::render_prometheus`].
    pub fn into_snapshot(self) -> Result<ObsSnapshot, CodecError> {
        let mut dump = self.dump.map(WireFlightDump::into_dump).transpose()?;
        if let Some(dump) = dump.as_mut() {
            dump.trace_id = self.dump_trace_id;
        }
        Ok(ObsSnapshot {
            stages: self
                .stages
                .into_iter()
                .map(WireStageHistogram::into_snapshot)
                .collect::<Result<_, _>>()?,
            end_to_end: self.end_to_end.into_snapshot(),
            publish_stages: self
                .publish_stages
                .into_iter()
                .map(WirePublishStageHistogram::into_snapshot)
                .collect::<Result<_, _>>()?,
            publish_end_to_end: self.publish_end_to_end.into_snapshot(),
            counters: self
                .counters
                .into_iter()
                .map(|c| Counter { name: c.name, labels: c.labels, value: c.value })
                .collect(),
            gauges: self
                .gauges
                .into_iter()
                .map(|g| Gauge { name: g.name, labels: g.labels, value: g.value })
                .collect(),
            dump,
        })
    }
}

impl StoreCodec for WireObsSnapshot {
    fn encode(&self, w: &mut Writer) {
        self.stages.encode(w);
        self.end_to_end.encode(w);
        self.counters.encode(w);
        self.gauges.encode(w);
        match &self.dump {
            Some(dump) => {
                w.put_u8(1);
                dump.encode(w);
            }
            None => w.put_u8(0),
        }
        // Write-path tracing tail, appended after the generation-one layout.
        // A legacy decoder stops at the dump; a current decoder reads on only
        // when bytes remain — `WireObsSnapshot` is always the final value of
        // its enclosing message, so "no bytes left" is unambiguous.
        self.publish_stages.encode(w);
        self.publish_end_to_end.encode(w);
        w.put_u64(self.dump_trace_id);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let mut snapshot = WireObsSnapshot {
            stages: Vec::decode(r)?,
            end_to_end: WireHistogram::decode(r)?,
            counters: Vec::decode(r)?,
            gauges: Vec::decode(r)?,
            dump: match r.get_u8()? {
                0 => None,
                1 => Some(WireFlightDump::decode(r)?),
                tag => return Err(CodecError::InvalidTag { what: "Option<WireFlightDump>", tag }),
            },
            ..WireObsSnapshot::default()
        };
        if !r.is_exhausted() {
            snapshot.publish_stages = Vec::decode(r)?;
            snapshot.publish_end_to_end = WireHistogram::decode(r)?;
            snapshot.dump_trace_id = r.get_u64()?;
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> ObsSnapshot {
        let hist = |seed: u64| {
            let mut buckets = vec![0u64; ksp_obs::BUCKETS];
            buckets[3] = seed;
            buckets[10] = seed + 1;
            HistogramSnapshot {
                buckets,
                count: 2 * seed + 1,
                total_micros: 100 * seed,
                max_micros: 90 * seed,
            }
        };
        ObsSnapshot {
            stages: Stage::ALL
                .iter()
                .enumerate()
                .map(|(i, &stage)| StageSnapshot { stage, histogram: hist(i as u64 + 1) })
                .collect(),
            end_to_end: hist(40),
            publish_stages: PublishStage::ALL
                .iter()
                .enumerate()
                .map(|(i, &stage)| PublishStageSnapshot { stage, histogram: hist(i as u64 + 20) })
                .collect(),
            publish_end_to_end: hist(60),
            counters: vec![
                Counter {
                    name: "ksp_requests_completed_total".into(),
                    labels: String::new(),
                    value: 17,
                },
                Counter { name: "ksp_steals_total".into(), labels: "shard=\"1\"".into(), value: 3 },
            ],
            gauges: vec![Gauge {
                name: "ksp_epoch_age_seconds".into(),
                labels: String::new(),
                value: 0.25,
            }],
            dump: Some(FlightDump {
                at_micros: 12345,
                cause: ObsEvent {
                    at_micros: 12345,
                    kind: EventKind::SloBreach,
                    a: 9000,
                    b: 10,
                    c: 0,
                },
                span: Some(SpanChain { micros: [1, 2, 0, 3, 4, 5, 6], stolen: false }),
                events: vec![
                    ObsEvent { at_micros: 1, kind: EventKind::EpochPublished, a: 1, b: 4, c: 900 },
                    ObsEvent { at_micros: 2, kind: EventKind::Steal, a: 0, b: 1, c: 8 },
                ],
                trace_id: 0xBEEF_0007,
            }),
        }
    }

    #[test]
    fn obs_snapshots_round_trip_losslessly() {
        let snapshot = sample_snapshot();
        let wire = WireObsSnapshot::from(&snapshot);
        let decoded = WireObsSnapshot::from_bytes(&wire.to_bytes()).unwrap();
        assert_eq!(decoded, wire);
        let back = decoded.into_snapshot().unwrap();
        assert_eq!(back.stages, snapshot.stages);
        assert_eq!(back.end_to_end, snapshot.end_to_end);
        assert_eq!(back.counters, snapshot.counters);
        assert_eq!(back.gauges, snapshot.gauges);
        assert_eq!(back.dump, snapshot.dump);
        // The remote render matches the local one byte for byte.
        assert_eq!(ksp_obs::render_prometheus(&back), ksp_obs::render_prometheus(&snapshot));
    }

    #[test]
    fn legacy_snapshots_without_the_publish_tail_still_decode() {
        // Hand-encode the generation-one layout — stages through dump, no
        // publish tail — and decode with the current reader: the appended
        // fields default instead of failing.
        let wire = WireObsSnapshot::from(&sample_snapshot());
        let mut w = Writer::new();
        wire.stages.encode(&mut w);
        wire.end_to_end.encode(&mut w);
        wire.counters.encode(&mut w);
        wire.gauges.encode(&mut w);
        w.put_u8(1);
        wire.dump.as_ref().unwrap().encode(&mut w);
        let decoded = WireObsSnapshot::from_bytes(&w.into_bytes()).unwrap();
        assert_eq!(decoded.stages, wire.stages);
        assert_eq!(decoded.dump, wire.dump);
        assert!(decoded.publish_stages.is_empty());
        assert_eq!(decoded.publish_end_to_end, WireHistogram::default());
        assert_eq!(decoded.dump_trace_id, 0);
        // The untagged trace id degrades to zero, not garbage.
        assert_eq!(decoded.into_snapshot().unwrap().dump.unwrap().trace_id, 0);
    }

    #[test]
    fn dump_trace_ids_ride_the_outer_tail() {
        let snapshot = sample_snapshot();
        let wire = WireObsSnapshot::from(&snapshot);
        assert_eq!(wire.dump_trace_id, 0xBEEF_0007);
        let back = WireObsSnapshot::from_bytes(&wire.to_bytes()).unwrap().into_snapshot().unwrap();
        assert_eq!(back.dump.unwrap().trace_id, 0xBEEF_0007);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let wire = WireObsSnapshot::default();
        let decoded = WireObsSnapshot::from_bytes(&wire.to_bytes()).unwrap();
        assert_eq!(decoded, wire);
        assert!(decoded.into_snapshot().unwrap().dump.is_none());
    }

    #[test]
    fn hostile_codes_fail_typed() {
        // An unknown stage code survives decode (it is just a u8 on the wire)
        // but refuses conversion into the typed snapshot.
        let bad_stage = WireStageHistogram { stage: 200, histogram: WireHistogram::default() };
        let decoded = WireStageHistogram::from_bytes(&bad_stage.to_bytes()).unwrap();
        assert!(decoded.into_snapshot().is_err());

        let bad_publish =
            WirePublishStageHistogram { stage: 200, histogram: WireHistogram::default() };
        let decoded = WirePublishStageHistogram::from_bytes(&bad_publish.to_bytes()).unwrap();
        assert!(decoded.into_snapshot().is_err());

        let bad_kind = WireObsEvent { at_micros: 0, kind: 99, a: 0, b: 0, c: 0 };
        assert!(WireObsEvent::from_bytes(&bad_kind.to_bytes()).unwrap().into_event().is_err());

        let short_chain = WireSpanChain { stage_micros: vec![1, 2, 3], stolen: false };
        assert!(WireSpanChain::from_bytes(&short_chain.to_bytes()).unwrap().into_chain().is_err());

        // A dump option tag outside {0, 1} is rejected at decode time.
        let mut w = Writer::new();
        let snapshot = WireObsSnapshot::default();
        snapshot.stages.encode(&mut w);
        snapshot.end_to_end.encode(&mut w);
        snapshot.counters.encode(&mut w);
        snapshot.gauges.encode(&mut w);
        w.put_u8(7);
        assert!(matches!(
            WireObsSnapshot::from_bytes(&w.into_bytes()),
            Err(CodecError::InvalidTag { what: "Option<WireFlightDump>", tag: 7 })
        ));
    }

    #[test]
    fn truncated_snapshots_fail_typed() {
        let bytes = WireObsSnapshot::from(&sample_snapshot()).to_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(WireObsSnapshot::from_bytes(&bytes[..cut]).is_err());
        }
    }
}
