//! `ksp-proto`: the typed wire protocol and transport abstraction for KSP-DG
//! serving.
//!
//! The paper's deployment (Section 6.1) puts clients, the query coordinator
//! and the subgraph workers on opposite sides of a network; this crate is the
//! contract they speak. It has three layers, each usable on its own:
//!
//! * [`message`] — the **operator surface** as data: [`Request`] / [`Response`]
//!   enums covering single queries, pipelined multi-query batches, epoch
//!   publication (`ApplyBatch`), metrics scraping, observability snapshots
//!   (`ObsSnapshot`, with [`obs`] carrying the wire mirrors of `ksp-obs`'s
//!   per-stage histograms and flight dumps), checkpointing and the
//!   `Ping` version handshake. Payloads are encoded with the same
//!   [`StoreCodec`](ksp_store::StoreCodec) discipline as the on-disk
//!   checkpoint format: little-endian, length-validated counts, floats as raw
//!   IEEE-754 bits so a path distance survives the wire bit-for-bit.
//! * [`frame`] — the **framing**: every message travels as one
//!   length-prefixed, CRC-32-guarded, version-stamped frame. A corrupt,
//!   truncated or foreign-version frame is detected *before* payload decoding
//!   and surfaces as a typed [`FrameError`], never a panic or a garbage
//!   message.
//! * [`transport`] / [`client`] — the **pluggable transport**: the
//!   [`Transport`] trait abstracts "send a request, get a response" with
//!   physical byte accounting ([`TransportStats`]), [`TcpTransport`] is the
//!   blocking-socket implementation (with true pipelining for batches), and
//!   [`KspClient`] is the typed handle applications hold. The in-process
//!   zero-copy implementation lives in `ksp-serve` (`InProcTransport`), next
//!   to the service it short-circuits into.
//!
//! [`shard`] carries the frame types reserved for *shard-to-shard* traffic —
//! the tuples the Storm-style topology in `ksp-cluster` exchanges between the
//! entrance spout and the subgraph workers — so the communication-cost
//! accounting of the distributed experiments can price tuples in physical
//! wire bytes today, and a future multi-process topology can reuse the exact
//! same encoding.
//!
//! # Wire format
//!
//! ```text
//! offset  size  field
//! 0       4     magic "KSPF"
//! 4       4     protocol version (u32 LE, currently 1)
//! 8       1     frame kind (0 = request, 1 = response)
//! 9       4     payload length in bytes (u32 LE)
//! 13      4     CRC-32 (ISO-HDLC) of the payload
//! 17      n     payload: one StoreCodec-encoded Request or Response
//! ```
//!
//! The header layout is frozen across protocol versions: a server can always
//! parse the header of a newer client's frame, reject it with a typed
//! [`ErrorReply::UnsupportedVersion`] response and close the connection
//! cleanly instead of reading garbage.

#![warn(missing_docs)]

pub mod client;
pub mod fault;
pub mod frame;
pub mod message;
pub mod obs;
pub mod shard;
pub mod transport;

pub use client::{ClientConfig, ClientError, HandshakeInfo, KspClient, LatencyBreakdown};
pub use fault::FaultTransport;
pub use frame::{FrameError, FrameKind, FRAME_HEADER_LEN, FRAME_MAGIC, MAX_FRAME_PAYLOAD};
pub use message::{
    ErrorReply, QueryAnswer, QueryKey, QueryOutcome, Request, Response, TraceContext, WireMetrics,
    WirePath, WireQueryStats, WireQueueGauge, WireSegmentBatch, WireShippedRecord,
    WireSnapshotChunk, WireSnapshotFile, WireSnapshotManifest, PROTOCOL_VERSION,
    PROTOCOL_VERSION_MAX,
};
pub use obs::{
    WireCounter, WireFlightDump, WireGauge, WireHistogram, WireObsEvent, WireObsSnapshot,
    WirePublishStageHistogram, WireSpanChain, WireStageHistogram,
};
pub use shard::{LowerBoundDelta, PairPaths, ShardTuple};
pub use transport::{TcpTransport, Transport, TransportError, TransportStats};
