//! Prometheus text exposition format rendering for [`ObsSnapshot`].
//!
//! The output follows the text-based exposition format version 0.0.4:
//! `# TYPE` comments, cumulative `_bucket{le=...}` histogram series with an
//! explicit `+Inf` bucket, `_sum` in seconds, `_count`, and one sample per
//! line. Latency histograms keep this crate's log₂-microsecond buckets,
//! converted to seconds for the `le` bounds.

use crate::histogram::bucket_upper_micros;
use crate::snapshot::ObsSnapshot;
use crate::HistogramSnapshot;
use std::fmt::Write;

/// The metric family per-stage histograms are rendered under, with a
/// `stage="..."` label per stage.
pub const STAGE_FAMILY: &str = "ksp_stage_duration_seconds";

/// The metric family of the end-to-end latency histogram.
pub const E2E_FAMILY: &str = "ksp_request_duration_seconds";

/// The metric family per-write-path-stage publish histograms are rendered
/// under, with a `stage="..."` label per publish stage.
pub const PUBLISH_STAGE_FAMILY: &str = "ksp_publish_stage_duration_seconds";

/// The metric family of the end-to-end epoch-publish histogram.
pub const PUBLISH_E2E_FAMILY: &str = "ksp_publish_duration_seconds";

/// Renders a snapshot in Prometheus text exposition format.
pub fn render_prometheus(snapshot: &ObsSnapshot) -> String {
    let mut out = String::with_capacity(16 * 1024);

    let mut last_family = "";
    for c in &snapshot.counters {
        if c.name != last_family {
            let _ = writeln!(out, "# TYPE {} counter", c.name);
            last_family = &c.name;
        }
        let _ = writeln!(out, "{}{} {}", c.name, braced(&c.labels), c.value);
    }
    let mut last_family = "";
    for g in &snapshot.gauges {
        if g.name != last_family {
            let _ = writeln!(out, "# TYPE {} gauge", g.name);
            last_family = &g.name;
        }
        let _ = writeln!(out, "{}{} {}", g.name, braced(&g.labels), fmt_f64(g.value));
    }

    let _ = writeln!(out, "# TYPE {STAGE_FAMILY} histogram");
    for s in &snapshot.stages {
        let label = format!("stage=\"{}\"", s.stage.name());
        render_histogram(&mut out, STAGE_FAMILY, &label, &s.histogram);
    }
    let _ = writeln!(out, "# TYPE {E2E_FAMILY} histogram");
    render_histogram(&mut out, E2E_FAMILY, "", &snapshot.end_to_end);

    let _ = writeln!(out, "# TYPE {PUBLISH_STAGE_FAMILY} histogram");
    for s in &snapshot.publish_stages {
        let label = format!("stage=\"{}\"", s.stage.name());
        render_histogram(&mut out, PUBLISH_STAGE_FAMILY, &label, &s.histogram);
    }
    let _ = writeln!(out, "# TYPE {PUBLISH_E2E_FAMILY} histogram");
    render_histogram(&mut out, PUBLISH_E2E_FAMILY, "", &snapshot.publish_end_to_end);

    out
}

/// Renders one histogram's `_bucket`/`_sum`/`_count` series. Buckets above
/// the largest non-empty one are elided (they would repeat the same
/// cumulative count the `+Inf` bucket already carries).
fn render_histogram(out: &mut String, family: &str, labels: &str, h: &HistogramSnapshot) {
    let last_used = h.buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
    let mut cumulative = 0u64;
    for (i, count) in h.buckets.iter().take(last_used).enumerate() {
        cumulative += count;
        let le = bucket_upper_micros(i) as f64 / 1e6;
        let _ = writeln!(
            out,
            "{family}_bucket{} {cumulative}",
            braced(&join(labels, &format!("le=\"{}\"", fmt_f64(le))))
        );
    }
    let _ = writeln!(out, "{family}_bucket{} {}", braced(&join(labels, "le=\"+Inf\"")), h.count);
    let _ =
        writeln!(out, "{family}_sum{} {}", braced(labels), fmt_f64(h.total_micros as f64 / 1e6));
    let _ = writeln!(out, "{family}_count{} {}", braced(labels), h.count);
}

fn braced(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

fn join(a: &str, b: &str) -> String {
    if a.is_empty() {
        b.to_string()
    } else {
        format!("{a},{b}")
    }
}

/// Prometheus floats: decimal, no exponent surprises for the magnitudes we
/// emit, trailing zeros trimmed.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.9}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publish::{PublishChain, PublishStage, PublishStageHistograms};
    use crate::snapshot::{Counter, Gauge, PublishStageSnapshot, StageSnapshot};
    use crate::span::{SpanChain, StageHistograms};
    use crate::Stage;

    fn sample_snapshot() -> ObsSnapshot {
        let stages = StageHistograms::new();
        stages.record_chain(&SpanChain { micros: [1, 5, 0, 2, 900, 40, 1], stolen: false });
        stages.record_chain(&SpanChain { micros: [2, 0, 9, 1, 0, 0, 1], stolen: true });
        let e2e = crate::LatencyHistogram::default();
        e2e.record_micros(949);
        e2e.record_micros(13);
        let publish = PublishStageHistograms::new();
        publish
            .record_chain(&PublishChain { micros: [40, 10, 200, 3, 8, 0, 2], checkpointed: false });
        let publish_e2e = crate::LatencyHistogram::default();
        publish_e2e.record_micros(263);
        ObsSnapshot {
            stages: stages
                .snapshot()
                .into_iter()
                .map(|(stage, histogram)| StageSnapshot { stage, histogram })
                .collect(),
            end_to_end: e2e.snapshot(),
            publish_stages: publish
                .snapshot()
                .into_iter()
                .map(|(stage, histogram)| PublishStageSnapshot { stage, histogram })
                .collect(),
            publish_end_to_end: publish_e2e.snapshot(),
            counters: vec![
                Counter {
                    name: "ksp_requests_completed_total".into(),
                    labels: String::new(),
                    value: 2,
                },
                Counter { name: "ksp_steals_total".into(), labels: "shard=\"1\"".into(), value: 1 },
            ],
            gauges: vec![Gauge {
                name: "ksp_epoch_age_seconds".into(),
                labels: String::new(),
                value: 0.125,
            }],
            dump: None,
        }
    }

    #[test]
    fn renders_every_family_and_stage() {
        let text = render_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE ksp_requests_completed_total counter"));
        assert!(text.contains("ksp_requests_completed_total 2"));
        assert!(text.contains("ksp_steals_total{shard=\"1\"} 1"));
        assert!(text.contains("# TYPE ksp_epoch_age_seconds gauge"));
        assert!(text.contains("ksp_epoch_age_seconds 0.125"));
        assert!(text.contains("# TYPE ksp_stage_duration_seconds histogram"));
        for stage in Stage::ALL {
            assert!(
                text.contains(&format!("stage=\"{}\"", stage.name())),
                "missing stage family for {}",
                stage.name()
            );
        }
        assert!(text.contains("ksp_request_duration_seconds_count 2"));
        assert!(text.contains("# TYPE ksp_publish_stage_duration_seconds histogram"));
        for stage in PublishStage::ALL {
            assert!(
                text.contains(&format!(
                    "ksp_publish_stage_duration_seconds_count{{stage=\"{}\"}} 1",
                    stage.name()
                )),
                "missing publish stage family for {}",
                stage.name()
            );
        }
        assert!(text.contains("ksp_publish_duration_seconds_count 1"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_capped_by_inf() {
        let text = render_prometheus(&sample_snapshot());
        // The end-to-end histogram holds observations at 13 µs and 949 µs:
        // the +Inf bucket must report both.
        let inf = text
            .lines()
            .find(|l| l.starts_with("ksp_request_duration_seconds_bucket{le=\"+Inf\"}"))
            .expect("+Inf bucket");
        assert!(inf.ends_with(" 2"), "cumulative +Inf bucket: {inf}");
        // Sum is in seconds.
        let sum = text
            .lines()
            .find(|l| l.starts_with("ksp_request_duration_seconds_sum"))
            .expect("sum line");
        assert!(sum.ends_with("0.000962"), "sum in seconds: {sum}");
    }
}
