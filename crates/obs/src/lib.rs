//! Observability for the KSP-DG serving stack: per-stage request spans, a
//! flight recorder, and metrics exposition.
//!
//! The serving layer (PRs 2–5) made the paper's thesis — maintenance cost
//! scales with what changed — hold end to end, but a running service could
//! only report one end-to-end latency histogram and a handful of counters.
//! This crate is the missing layer between "the benchmarks say so" and "the
//! operator can see it":
//!
//! * **[`Stage`] / [`RequestSpan`] / [`StageHistograms`]** — every request is
//!   decorated with a span chain of monotonic-clock stamps covering
//!   admission → queue → (steal?) → cache → engine → trace-sweep → reply.
//!   Stage durations are derived from *one* set of cumulative stamps, so they
//!   telescope: per-stage totals sum exactly to the end-to-end latency the
//!   service records. Disabled spans cost one branch per stage mark.
//! * **[`PublishStage`] / [`PublishSpan`] / [`PublishStageHistograms`]** —
//!   the same discipline for the *write* path: every epoch publish is
//!   decomposed into stage_index → wal_append → fsync → swap → retention →
//!   checkpoint_encode → checkpoint_commit, with the span travelling into the
//!   background checkpointer for checkpoint epochs, so the paper's central
//!   cost (epoch maintenance) is exactly attributable too.
//! * **[`FlightRecorder`]** — a fixed-size, lock-free ring of recent
//!   structured [`ObsEvent`]s (epoch publishes with dirty-set sizes,
//!   checkpoint commits, cache retention outcomes, steals, rejections,
//!   hostile frames, recovery steps). Anomaly triggers (per-request SLO
//!   breach, slow publish, hostile frame, recovery) capture a bounded
//!   [`FlightDump`] — the ring contents plus the offending request's span
//!   chain — for post-hoc diagnosis.
//! * **[`ObsSnapshot`] / [`render_prometheus`]** — a plain-data snapshot of
//!   per-stage histograms, counters, gauges and the latest flight dump,
//!   renderable as Prometheus text exposition format so any scraper can read
//!   a service over the existing wire protocol.
//!
//! The crate is dependency-free (std only) and sits below `ksp-proto` and
//! `ksp-serve`: proto mirrors the snapshot types on the wire, serve owns the
//! instrumentation points.

#![warn(missing_docs)]

mod config;
mod expo;
mod flight;
mod histogram;
mod publish;
mod snapshot;
mod span;
mod stage;

pub use config::ObsConfig;
pub use expo::{
    render_prometheus, E2E_FAMILY, PUBLISH_E2E_FAMILY, PUBLISH_STAGE_FAMILY, STAGE_FAMILY,
};
pub use flight::{EventKind, FlightDump, FlightRecorder, ObsEvent};
pub use histogram::{bucket_upper_micros, HistogramSnapshot, LatencyHistogram, BUCKETS};
pub use publish::{PublishChain, PublishSpan, PublishStage, PublishStageHistograms};
pub use snapshot::{Counter, Gauge, ObsSnapshot, PublishStageSnapshot, StageSnapshot};
pub use span::{RequestSpan, SpanChain, StageHistograms};
pub use stage::Stage;
