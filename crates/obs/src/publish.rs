//! Write-path pipeline spans: where an epoch publish spends its lifetime.
//!
//! A [`PublishSpan`] is the write-path sibling of
//! [`RequestSpan`](crate::RequestSpan): it rides through
//! `QueryService::apply_batch` (and, for checkpoint epochs, into the
//! background checkpointer), is stamped at each stage boundary with
//! cumulative microseconds from one monotonic origin, and telescopes into a
//! [`PublishChain`] whose per-stage durations sum *exactly* to the recorded
//! end-to-end publish latency. Per-stage publish histogram totals therefore
//! sum to the end-to-end publish histogram total to the microsecond — the
//! same attribution guarantee the read path has had since the request-span
//! work, now extended to the paper's central cost: epoch maintenance.
//!
//! A disabled span is `None` inside: every mark is one branch, no clock
//! reads, no allocation.

use crate::histogram::{HistogramSnapshot, LatencyHistogram};
use std::time::{Duration, Instant};

/// One stage of an epoch publish inside the query service.
///
/// The stages partition the interval from the start of `apply_batch` to the
/// end of the publish (for checkpoint epochs: to the checkpoint commit in the
/// background checkpointer), in this order:
///
/// 1. [`StageIndex`](PublishStage::StageIndex) — staging the batch against
///    the master graph and COW index (`with_batch` + `apply_batch`), up to
///    the dirty set being known.
/// 2. [`WalAppend`](PublishStage::WalAppend) — encoding and appending the
///    batch record to the delta log, excluding the fsync. Zero for an
///    in-memory service.
/// 3. [`Fsync`](PublishStage::Fsync) — the `sync_data` making the record
///    durable. Zero for an in-memory service or a non-`Always` sync policy.
/// 4. [`Swap`](PublishStage::Swap) — publishing the epoch snapshot pointer
///    and updating the masters.
/// 5. [`Retention`](PublishStage::Retention) — sweeping every shard cache
///    against the batch's dirty set (or clearing it wholesale).
/// 6. [`CheckpointEncode`](PublishStage::CheckpointEncode) — encoding the
///    checkpoint image off the publish path, including the hand-off wait to
///    the background checkpointer. Zero for non-checkpoint epochs.
/// 7. [`CheckpointCommit`](PublishStage::CheckpointCommit) — staging and
///    committing the image (write-temp, fsync, rename), plus the final
///    accounting tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PublishStage {
    /// Staging the batch against the master graph + COW index.
    StageIndex,
    /// Delta-log record encode + append, excluding the fsync.
    WalAppend,
    /// The fsync making the appended record durable.
    Fsync,
    /// Epoch-snapshot pointer swap + masters update.
    Swap,
    /// Per-shard cache retention sweep (or wholesale clear).
    Retention,
    /// Checkpoint image encoding (including checkpointer hand-off wait).
    CheckpointEncode,
    /// Checkpoint image stage + commit, plus the accounting tail.
    CheckpointCommit,
}

impl PublishStage {
    /// Number of publish stages.
    pub const COUNT: usize = 7;

    /// All stages in pipeline order.
    pub const ALL: [PublishStage; PublishStage::COUNT] = [
        PublishStage::StageIndex,
        PublishStage::WalAppend,
        PublishStage::Fsync,
        PublishStage::Swap,
        PublishStage::Retention,
        PublishStage::CheckpointEncode,
        PublishStage::CheckpointCommit,
    ];

    /// Stable metric-label name of this stage.
    pub fn name(self) -> &'static str {
        match self {
            PublishStage::StageIndex => "stage_index",
            PublishStage::WalAppend => "wal_append",
            PublishStage::Fsync => "fsync",
            PublishStage::Swap => "swap",
            PublishStage::Retention => "retention",
            PublishStage::CheckpointEncode => "checkpoint_encode",
            PublishStage::CheckpointCommit => "checkpoint_commit",
        }
    }

    /// Dense index of this stage in [`PublishStage::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`PublishStage::index`]; `None` for out-of-range values
    /// (e.g. a stage added by a newer peer and decoded from the wire).
    pub fn from_index(index: usize) -> Option<PublishStage> {
        PublishStage::ALL.get(index).copied()
    }
}

/// Live stamp state of an enabled publish span. Stamps are cumulative
/// microseconds since `origin`.
#[derive(Debug, Clone, Copy)]
struct PublishState {
    origin: Instant,
    staged: u64,
    logged: u64,
    fsync_micros: u64,
    swapped: u64,
    retained: u64,
    encoded: u64,
    checkpointed: bool,
}

/// The per-publish stage clock. Create one per `apply_batch` call with
/// [`PublishSpan::begin_at`]; mark stage boundaries as the epoch moves
/// through the write path; [`finish`](PublishSpan::finish) yields the
/// [`PublishChain`].
///
/// For checkpoint epochs the span travels into the background checkpointer
/// with the job and finishes there, so the encode/commit stages cover the
/// real off-path work; an unmarked boundary clamps to the previous one and
/// the stage reads as zero-width (the non-checkpoint, in-memory case).
#[derive(Debug, Clone, Copy)]
pub struct PublishSpan {
    inner: Option<PublishState>,
}

impl PublishSpan {
    /// A span that records nothing; every mark is a single branch.
    pub fn disabled() -> PublishSpan {
        PublishSpan { inner: None }
    }

    /// Starts a span whose stamps are measured from `origin` — pass the same
    /// instant used for the publish's end-to-end latency so the stage
    /// durations telescope to it.
    pub fn begin_at(origin: Instant, enabled: bool) -> PublishSpan {
        PublishSpan {
            inner: enabled.then_some(PublishState {
                origin,
                staged: 0,
                logged: 0,
                fsync_micros: 0,
                swapped: 0,
                retained: 0,
                encoded: 0,
                checkpointed: false,
            }),
        }
    }

    /// Whether this span is recording.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn stamp(origin: Instant) -> u64 {
        origin.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Marks the end of index staging: the new graph/index pair and the dirty
    /// set are known.
    pub fn mark_staged(&mut self) {
        if let Some(s) = &mut self.inner {
            s.staged = Self::stamp(s.origin);
        }
    }

    /// Marks the end of the delta-log append; `fsync` is the portion the
    /// append spent in `sync_data` (zero when the record was not synced).
    pub fn mark_logged(&mut self, fsync: Duration) {
        if let Some(s) = &mut self.inner {
            s.logged = Self::stamp(s.origin);
            s.fsync_micros = fsync.as_micros().min(u64::MAX as u128) as u64;
        }
    }

    /// Marks the epoch-snapshot pointer swap.
    pub fn mark_swapped(&mut self) {
        if let Some(s) = &mut self.inner {
            s.swapped = Self::stamp(s.origin);
        }
    }

    /// Marks the end of the cache-retention sweep.
    pub fn mark_retained(&mut self) {
        if let Some(s) = &mut self.inner {
            s.retained = Self::stamp(s.origin);
        }
    }

    /// Marks the end of checkpoint-image encoding (checkpoint epochs only);
    /// also flags the chain as checkpointed.
    pub fn mark_encoded(&mut self) {
        if let Some(s) = &mut self.inner {
            s.encoded = Self::stamp(s.origin);
            s.checkpointed = true;
        }
    }

    /// Takes the final stamp and converts the chain into per-stage durations.
    /// Returns the chain plus the end-to-end duration (`== chain.total()`),
    /// or `None` for a disabled span.
    pub fn finish(&self) -> Option<(PublishChain, Duration)> {
        let s = self.inner.as_ref()?;
        let end = Self::stamp(s.origin);
        // Clamp each boundary to be monotone, then difference. The sum of
        // differences telescopes to `end` exactly; unmarked boundaries (0)
        // clamp to the previous one and read as zero-width stages.
        let staged = s.staged.min(end);
        let logged = s.logged.clamp(staged, end);
        let swapped = s.swapped.clamp(logged, end);
        let retained = s.retained.clamp(swapped, end);
        let encoded = s.encoded.clamp(retained, end);
        let mut micros = [0u64; PublishStage::COUNT];
        micros[PublishStage::StageIndex.index()] = staged;
        let log = logged - staged;
        let fsync = s.fsync_micros.min(log);
        micros[PublishStage::WalAppend.index()] = log - fsync;
        micros[PublishStage::Fsync.index()] = fsync;
        micros[PublishStage::Swap.index()] = swapped - logged;
        micros[PublishStage::Retention.index()] = retained - swapped;
        micros[PublishStage::CheckpointEncode.index()] = encoded - retained;
        micros[PublishStage::CheckpointCommit.index()] = end - encoded;
        Some((PublishChain { micros, checkpointed: s.checkpointed }, Duration::from_micros(end)))
    }
}

/// A finished publish's per-stage durations, in microseconds, indexed by
/// [`PublishStage::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishChain {
    /// Duration of each stage, microseconds.
    pub micros: [u64; PublishStage::COUNT],
    /// Whether this publish produced a checkpoint image.
    pub checkpointed: bool,
}

impl PublishChain {
    /// Total duration across all stages — the publish's end-to-end latency in
    /// microseconds.
    pub fn total_micros(&self) -> u64 {
        self.micros.iter().sum()
    }

    /// Duration of one stage.
    pub fn stage(&self, stage: PublishStage) -> Duration {
        Duration::from_micros(self.micros[stage.index()])
    }
}

/// One [`LatencyHistogram`] per publish stage; the aggregation target of
/// finished publish chains.
#[derive(Debug, Default)]
pub struct PublishStageHistograms {
    hists: [LatencyHistogram; PublishStage::COUNT],
}

impl PublishStageHistograms {
    /// Creates empty per-stage histograms.
    pub fn new() -> Self {
        PublishStageHistograms::default()
    }

    /// Folds one finished chain in. Every stage is recorded (zero-width
    /// stages too), so every stage count equals the publish count and the
    /// stage totals sum to the end-to-end total.
    pub fn record_chain(&self, chain: &PublishChain) {
        for stage in PublishStage::ALL {
            self.hists[stage.index()].record_micros(chain.micros[stage.index()]);
        }
    }

    /// The live histogram of one stage.
    pub fn stage(&self, stage: PublishStage) -> &LatencyHistogram {
        &self.hists[stage.index()]
    }

    /// Snapshots every stage histogram, in [`PublishStage::ALL`] order.
    pub fn snapshot(&self) -> Vec<(PublishStage, HistogramSnapshot)> {
        PublishStage::ALL.iter().map(|&s| (s, self.hists[s.index()].snapshot())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_round_trip_and_names_are_unique() {
        let mut names = std::collections::HashSet::new();
        for (i, stage) in PublishStage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
            assert_eq!(PublishStage::from_index(i), Some(*stage));
            assert!(names.insert(stage.name()));
        }
        assert_eq!(PublishStage::from_index(PublishStage::COUNT), None);
    }

    #[test]
    fn disabled_span_is_inert() {
        let mut span = PublishSpan::disabled();
        assert!(!span.is_enabled());
        span.mark_staged();
        span.mark_logged(Duration::from_micros(5));
        span.mark_swapped();
        span.mark_retained();
        span.mark_encoded();
        assert!(span.finish().is_none());
    }

    #[test]
    fn chain_telescopes_to_the_end_to_end_publish_latency() {
        let origin = Instant::now();
        let mut span = PublishSpan::begin_at(origin, true);
        std::thread::sleep(Duration::from_millis(2));
        span.mark_staged();
        std::thread::sleep(Duration::from_millis(1));
        span.mark_logged(Duration::from_micros(300));
        span.mark_swapped();
        span.mark_retained();
        let (chain, total) = span.finish().expect("enabled span finishes");
        assert_eq!(chain.total_micros(), total.as_micros() as u64);
        assert!(!chain.checkpointed);
        assert!(chain.stage(PublishStage::StageIndex) >= Duration::from_millis(2));
        assert_eq!(chain.stage(PublishStage::Fsync), Duration::from_micros(300));
        assert!(chain.stage(PublishStage::WalAppend) >= Duration::from_micros(700));
        // Unmarked checkpoint stages read zero-width; the accounting tail
        // between the retention mark and finish lands in CheckpointCommit.
        assert_eq!(chain.micros[PublishStage::CheckpointEncode.index()], 0);
    }

    #[test]
    fn checkpoint_marks_attribute_the_off_path_work() {
        let origin = Instant::now();
        let mut span = PublishSpan::begin_at(origin, true);
        span.mark_staged();
        span.mark_logged(Duration::ZERO);
        span.mark_swapped();
        span.mark_retained();
        std::thread::sleep(Duration::from_millis(2));
        span.mark_encoded();
        std::thread::sleep(Duration::from_millis(1));
        let (chain, total) = span.finish().unwrap();
        assert!(chain.checkpointed);
        assert_eq!(chain.total_micros(), total.as_micros() as u64);
        assert!(chain.stage(PublishStage::CheckpointEncode) >= Duration::from_millis(2));
        assert!(chain.stage(PublishStage::CheckpointCommit) >= Duration::from_millis(1));
    }

    #[test]
    fn fsync_never_exceeds_the_log_interval_and_totals_still_telescope() {
        let origin = Instant::now();
        let mut span = PublishSpan::begin_at(origin, true);
        span.mark_staged();
        // A hostile fsync duration larger than the whole logged interval is
        // clamped into it; the telescoping sum is preserved.
        span.mark_logged(Duration::from_secs(3600));
        span.mark_swapped();
        span.mark_retained();
        let (chain, total) = span.finish().unwrap();
        assert_eq!(chain.total_micros(), total.as_micros() as u64);
    }

    #[test]
    fn publish_histograms_record_every_stage_per_chain() {
        let hists = PublishStageHistograms::new();
        let chain = PublishChain { micros: [5, 3, 2, 1, 4, 0, 1], checkpointed: false };
        hists.record_chain(&chain);
        hists.record_chain(&chain);
        for stage in PublishStage::ALL {
            assert_eq!(hists.stage(stage).count(), 2);
        }
        let snap = hists.snapshot();
        assert_eq!(snap.len(), PublishStage::COUNT);
        let total: u64 = snap.iter().map(|(_, h)| h.total_micros).sum();
        assert_eq!(total, 2 * chain.total_micros());
    }
}
