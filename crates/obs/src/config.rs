//! Observability configuration.

use std::time::Duration;

/// Knobs for the observability layer; lives inside the service configuration
/// (and therefore stays `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record per-request span chains and per-stage histograms. When `false`,
    /// requests carry a disabled span and every stage mark is a single
    /// branch; the flight recorder still captures service-level events
    /// (publishes, checkpoints, recovery), which are far off the per-request
    /// hot path.
    pub enabled: bool,
    /// Capacity of the flight-recorder ring, in events. Memory is bounded by
    /// `capacity` fixed-size slots regardless of event volume.
    pub flight_capacity: usize,
    /// Per-request latency SLO: a completed request slower than this triggers
    /// a flight dump carrying the offending request's span chain.
    /// [`Duration::ZERO`] disables the trigger.
    pub slo_p99: Duration,
    /// An epoch publish slower than this triggers a flight dump.
    /// [`Duration::ZERO`] disables the trigger.
    pub publish_stall: Duration,
    /// A delta-log append (record encode + write, excluding the fsync)
    /// slower than this triggers a flight dump. [`Duration::ZERO`] disables
    /// the trigger.
    pub wal_append_stall: Duration,
    /// A delta-log fsync slower than this triggers a flight dump.
    /// [`Duration::ZERO`] disables the trigger.
    pub fsync_stall: Duration,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            flight_capacity: 256,
            slo_p99: Duration::ZERO,
            publish_stall: Duration::from_millis(250),
            wal_append_stall: Duration::from_millis(50),
            fsync_stall: Duration::from_millis(100),
        }
    }
}

impl ObsConfig {
    /// A configuration with per-request instrumentation off.
    pub fn disabled() -> Self {
        ObsConfig { enabled: false, ..ObsConfig::default() }
    }
}
