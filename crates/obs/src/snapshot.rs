//! The plain-data observability snapshot a service hands to scrapers.

use crate::flight::FlightDump;
use crate::histogram::HistogramSnapshot;
use crate::publish::PublishStage;
use crate::stage::Stage;

/// A cumulative-monotonic counter sample, optionally labelled
/// (e.g. `shard="2"`). Labels are pre-rendered `key="value"` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    /// Metric family name (e.g. `ksp_requests_completed_total`).
    pub name: String,
    /// Pre-rendered label pairs, empty for none.
    pub labels: String,
    /// Current value; never decreases over a service's lifetime.
    pub value: u64,
}

/// A point-in-time gauge sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Gauge {
    /// Metric family name (e.g. `ksp_epoch_age_seconds`).
    pub name: String,
    /// Pre-rendered label pairs, empty for none.
    pub labels: String,
    /// Current value.
    pub value: f64,
}

/// One stage's latency histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Which stage.
    pub stage: Stage,
    /// Its histogram.
    pub histogram: HistogramSnapshot,
}

/// One write-path stage's latency histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishStageSnapshot {
    /// Which publish stage.
    pub stage: PublishStage,
    /// Its histogram.
    pub histogram: HistogramSnapshot,
}

/// Everything an observability scrape returns: per-stage histograms, the
/// end-to-end histogram, counters, gauges, and the latest flight-recorder
/// dump. This is the payload behind the wire `ObsSnapshot` request and the
/// input of [`render_prometheus`](crate::render_prometheus).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsSnapshot {
    /// Per-stage latency histograms, in [`Stage::ALL`] order.
    pub stages: Vec<StageSnapshot>,
    /// The end-to-end latency histogram.
    pub end_to_end: HistogramSnapshot,
    /// Per-write-path-stage publish histograms, in [`PublishStage::ALL`]
    /// order. Their totals telescope to `publish_end_to_end.total_micros`.
    pub publish_stages: Vec<PublishStageSnapshot>,
    /// The end-to-end epoch-publish latency histogram.
    pub publish_end_to_end: HistogramSnapshot,
    /// Cumulative counters.
    pub counters: Vec<Counter>,
    /// Point-in-time gauges.
    pub gauges: Vec<Gauge>,
    /// The latest anomaly dump, if any trigger has fired.
    pub dump: Option<FlightDump>,
}

impl ObsSnapshot {
    /// The histogram of one stage, if present.
    pub fn stage(&self, stage: Stage) -> Option<&HistogramSnapshot> {
        self.stages.iter().find(|s| s.stage == stage).map(|s| &s.histogram)
    }

    /// The histogram of one write-path publish stage, if present.
    pub fn publish_stage(&self, stage: PublishStage) -> Option<&HistogramSnapshot> {
        self.publish_stages.iter().find(|s| s.stage == stage).map(|s| &s.histogram)
    }

    /// The value of an (unlabelled or labelled) counter by family name,
    /// summed over labels.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().filter(|c| c.name == name).map(|c| c.value).sum()
    }

    /// The first gauge sample with this family name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }
}
