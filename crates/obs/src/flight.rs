//! The flight recorder: a fixed-size lock-free ring of recent structured
//! events, snapshotted ("dumped") when an anomaly trigger fires.
//!
//! Events are fixed-size — a kind byte plus three `u64` payload words — so a
//! slot is five atomics and recording is wait-free: claim a monotonically
//! increasing ticket with one `fetch_add`, then publish the slot with a
//! per-slot sequence word (a seqlock). Readers validate the sequence before
//! and after copying a slot and simply skip slots that are mid-write or were
//! lapped, so a snapshot never blocks writers and writers never block each
//! other. The ring's memory is `capacity` slots forever, no matter how many
//! events storm through it.

use crate::span::SpanChain;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// What kind of service event an [`ObsEvent`] records. The discriminants are
/// stable wire values.
///
/// # Stable wire codes
///
/// The `u8` discriminants below travel verbatim in flight events, dumps and
/// `ObsSnapshot` payloads; they are append-only under `PROTOCOL_VERSION` 1.
/// A decoder receiving a code it does not know (from a newer peer) skips the
/// event rather than failing the payload — see [`EventKind::from_code`].
///
/// | code | variant                 |
/// |-----:|-------------------------|
/// |    0 | `EpochPublished`        |
/// |    1 | `CheckpointCommitted`   |
/// |    2 | `CheckpointFailed`      |
/// |    3 | `CacheRetention`        |
/// |    4 | `Steal`                 |
/// |    5 | `Rejection`             |
/// |    6 | `HostileFrame`          |
/// |    7 | `RecoveryStep`          |
/// |    8 | `SloBreach`             |
/// |    9 | `PublishStall`          |
/// |   10 | `WalAppendStall`        |
/// |   11 | `FsyncStall`            |
/// |   12 | `AdmissionBreach`       |
/// |   13 | `DegradedEntered`       |
/// |   14 | `DegradedRecovered`     |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// An epoch publish. `a` = epoch, `b` = dirty-subgraph count,
    /// `c` = publish duration in microseconds.
    EpochPublished = 0,
    /// A checkpoint commit. `a` = epoch, `b` = 1 for a full image / 0 for a
    /// partial, `c` = duration in microseconds.
    CheckpointCommitted = 1,
    /// A failed checkpoint attempt. `a` = epoch.
    CheckpointFailed = 2,
    /// Publish-time cache retention on one shard. `a` = shard,
    /// `b` = entries retained, `c` = entries evicted.
    CacheRetention = 3,
    /// A work-stealing transfer. `a` = thief shard, `b` = victim shard,
    /// `c` = requests transferred.
    Steal = 4,
    /// An admission rejection. `a` = shard, `b` = queue depth at rejection.
    Rejection = 5,
    /// A hostile or malformed frame on a wire connection. `a` = reason code
    /// (see the serve layer's frame handling).
    HostileFrame = 6,
    /// One step of store recovery. `a` = step code (0 checkpoint loaded,
    /// 1 partial images applied, 2 batches replayed, 3 torn bytes dropped,
    /// 4 corrupt checkpoints skipped, 5 recovery completed), `b` = the step's
    /// value (the recovered epoch, a count, or — for code 5 — the recovery
    /// duration in microseconds).
    RecoveryStep = 7,
    /// A completed request breached the configured latency SLO.
    /// `a` = latency in microseconds, `b` = the SLO bound in microseconds.
    SloBreach = 8,
    /// An epoch publish exceeded the configured stall bound.
    /// `a` = epoch, `b` = publish duration in microseconds.
    PublishStall = 9,
    /// A delta-log append (record encode + write, excluding the fsync)
    /// exceeded the configured stall bound. `a` = epoch, `b` = append
    /// duration in microseconds, `c` = the configured bound in microseconds.
    WalAppendStall = 10,
    /// A delta-log fsync exceeded the configured stall bound. `a` = epoch,
    /// `b` = fsync duration in microseconds, `c` = the configured bound in
    /// microseconds.
    FsyncStall = 11,
    /// The adaptive admission controller started rejecting: its estimated
    /// queueing delay crossed the SLO-derived budget (the controller entered
    /// a breach episode). `a` = shard, `b` = estimated wait in microseconds,
    /// `c` = the budget in microseconds.
    AdmissionBreach = 12,
    /// The service flipped into read-only degraded mode: the delta log
    /// refused an append, so writes are rejected while reads keep serving
    /// the last published epoch. `a` = the epoch that failed to append.
    DegradedEntered = 13,
    /// The background probe repaired the log and the service left degraded
    /// mode. `a` = the last published epoch, `b` = how many probe attempts
    /// it took, `c` = time spent degraded in microseconds.
    DegradedRecovered = 14,
}

impl EventKind {
    /// All kinds, for decoding and iteration.
    pub const ALL: [EventKind; 15] = [
        EventKind::EpochPublished,
        EventKind::CheckpointCommitted,
        EventKind::CheckpointFailed,
        EventKind::CacheRetention,
        EventKind::Steal,
        EventKind::Rejection,
        EventKind::HostileFrame,
        EventKind::RecoveryStep,
        EventKind::SloBreach,
        EventKind::PublishStall,
        EventKind::WalAppendStall,
        EventKind::FsyncStall,
        EventKind::AdmissionBreach,
        EventKind::DegradedEntered,
        EventKind::DegradedRecovered,
    ];

    /// Stable label for exposition.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::EpochPublished => "epoch_published",
            EventKind::CheckpointCommitted => "checkpoint_committed",
            EventKind::CheckpointFailed => "checkpoint_failed",
            EventKind::CacheRetention => "cache_retention",
            EventKind::Steal => "steal",
            EventKind::Rejection => "rejection",
            EventKind::HostileFrame => "hostile_frame",
            EventKind::RecoveryStep => "recovery_step",
            EventKind::SloBreach => "slo_breach",
            EventKind::PublishStall => "publish_stall",
            EventKind::WalAppendStall => "wal_append_stall",
            EventKind::FsyncStall => "fsync_stall",
            EventKind::AdmissionBreach => "admission_breach",
            EventKind::DegradedEntered => "degraded_entered",
            EventKind::DegradedRecovered => "degraded_recovered",
        }
    }

    /// Inverse of `self as u8`; `None` for codes from a newer peer.
    pub fn from_code(code: u8) -> Option<EventKind> {
        EventKind::ALL.get(code as usize).copied()
    }
}

/// One structured flight-recorder event. The payload words `a`/`b`/`c` are
/// interpreted per [`EventKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsEvent {
    /// Microseconds since the recorder started.
    pub at_micros: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Third payload word.
    pub c: u64,
}

/// A bounded snapshot captured when an anomaly trigger fired: the ring's
/// recent events, the triggering event, and — for per-request triggers — the
/// offending request's span chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// Microseconds since recorder start at which the trigger fired.
    pub at_micros: u64,
    /// The event that tripped the trigger.
    pub cause: ObsEvent,
    /// Span chain of the offending request, when the trigger was per-request
    /// (SLO breach).
    pub span: Option<SpanChain>,
    /// The client trace id of the offending request, when the trigger was
    /// per-request and the request carried a wire trace context; `0` when
    /// untraced. Lets a client resolve its own trace id to the server's span
    /// chain.
    pub trace_id: u64,
    /// Ring contents at trigger time, oldest first, at most the ring's
    /// capacity.
    pub events: Vec<ObsEvent>,
}

/// A slot is a per-slot seqlock: `seq` is `2·ticket + 1` while the claiming
/// writer fills the payload words and `2·ticket + 2` once published, so a
/// reader can tell "mid-write" and "lapped" apart from "valid for ticket t"
/// with two loads.
struct Slot {
    seq: AtomicU64,
    at: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    c: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            at: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
            c: AtomicU64::new(0),
        }
    }
}

/// The fixed-size lock-free event ring plus the latest anomaly dump.
#[derive(Debug)]
pub struct FlightRecorder {
    started: Instant,
    slots: Box<[Slot]>,
    head: AtomicU64,
    dumps: AtomicU64,
    last_dump: Mutex<Option<FlightDump>>,
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slot").field("seq", &self.seq.load(Ordering::Relaxed)).finish()
    }
}

impl FlightRecorder {
    /// Creates a recorder whose ring holds at most `capacity` events
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            started: Instant::now(),
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
            dumps: AtomicU64::new(0),
            last_dump: Mutex::new(None),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events recorded since start (including overwritten ones).
    pub fn events_recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events silently evicted by ring-slot overwrites since start: every
    /// recorded event past the ring's capacity displaced an older one. A
    /// nonzero value tells an operator the ring window is shorter than the
    /// event rate — the signal that used to be invisible.
    pub fn events_overwritten(&self) -> u64 {
        self.head.load(Ordering::Relaxed).saturating_sub(self.slots.len() as u64)
    }

    /// Anomaly dumps taken since start.
    pub fn dumps_taken(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Records one event, overwriting the oldest when the ring is full.
    /// Wait-free for writers; concurrent writers never block each other.
    pub fn record(&self, kind: EventKind, a: u64, b: u64, c: u64) -> ObsEvent {
        let at_micros = self.now_micros();
        let event = ObsEvent { at_micros, kind, a, b, c };
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        // Publish protocol: odd seq while writing, even (2·ticket + 2) once
        // done. A writer lapped mid-write by a much faster producer leaves a
        // ticket mismatch behind, which readers treat as "skip".
        slot.seq.store(ticket * 2 + 1, Ordering::Release);
        slot.at.store(at_micros, Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.c.store(c, Ordering::Relaxed);
        slot.seq.store(ticket * 2 + 2, Ordering::Release);
        event
    }

    /// Copies the ring's current contents, oldest first. Slots that are
    /// mid-write or were overwritten between the head read and the slot read
    /// are skipped, so the result length is at most [`capacity`](Self::capacity).
    pub fn snapshot(&self) -> Vec<ObsEvent> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let window = head.min(cap);
        let mut events = Vec::with_capacity(window as usize);
        for ticket in (head - window)..head {
            let slot = &self.slots[(ticket % cap) as usize];
            let seq_before = slot.seq.load(Ordering::Acquire);
            if seq_before != ticket * 2 + 2 {
                continue; // mid-write, or lapped by a newer ticket
            }
            let at = slot.at.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let (a, b, c) = (
                slot.a.load(Ordering::Relaxed),
                slot.b.load(Ordering::Relaxed),
                slot.c.load(Ordering::Relaxed),
            );
            if slot.seq.load(Ordering::Acquire) != seq_before {
                continue; // overwritten while we were copying
            }
            let Some(kind) = EventKind::from_code(kind as u8) else { continue };
            events.push(ObsEvent { at_micros: at, kind, a, b, c });
        }
        events
    }

    /// Records `cause` and captures an anomaly dump: the ring snapshot, the
    /// cause, and (for per-request triggers) the offending span chain. The
    /// latest dump replaces the previous one, so anomaly storms keep memory
    /// bounded and the operator always sees the most recent incident.
    pub fn trigger(&self, kind: EventKind, a: u64, b: u64, c: u64, span: Option<SpanChain>) {
        self.trigger_traced(kind, a, b, c, span, 0);
    }

    /// [`trigger`](Self::trigger) with the offending request's wire trace id
    /// attached to the dump (`0` for untraced requests), so a remote client
    /// can pin the dumped span chain to a trace it originated.
    pub fn trigger_traced(
        &self,
        kind: EventKind,
        a: u64,
        b: u64,
        c: u64,
        span: Option<SpanChain>,
        trace_id: u64,
    ) {
        let cause = self.record(kind, a, b, c);
        let dump = FlightDump {
            at_micros: cause.at_micros,
            cause,
            span,
            trace_id,
            events: self.snapshot(),
        };
        *self.last_dump.lock().unwrap_or_else(|e| e.into_inner()) = Some(dump);
        self.dumps.fetch_add(1, Ordering::Relaxed);
    }

    /// The most recent anomaly dump, if any trigger has fired.
    pub fn last_dump(&self) -> Option<FlightDump> {
        self.last_dump.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Microseconds since the recorder started.
    pub fn now_micros(&self) -> u64 {
        self.started.elapsed().as_micros().min(u64::MAX as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ring_keeps_the_newest_events() {
        let rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            rec.record(EventKind::Steal, i, 0, 0);
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(events.iter().map(|e| e.a).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!(rec.events_recorded(), 10);
        assert_eq!(rec.events_overwritten(), 6, "every event past capacity displaced one");
    }

    #[test]
    fn overwrite_counter_stays_zero_until_the_ring_wraps() {
        let rec = FlightRecorder::new(4);
        for _ in 0..4 {
            rec.record(EventKind::Steal, 0, 0, 0);
        }
        assert_eq!(rec.events_overwritten(), 0);
        rec.record(EventKind::Steal, 0, 0, 0);
        assert_eq!(rec.events_overwritten(), 1);
    }

    #[test]
    fn traced_trigger_carries_the_trace_id_into_the_dump() {
        let rec = FlightRecorder::new(8);
        rec.trigger_traced(EventKind::SloBreach, 900, 100, 0, None, 0xDEAD_BEEF);
        assert_eq!(rec.last_dump().unwrap().trace_id, 0xDEAD_BEEF);
        // The untraced path stamps zero.
        rec.trigger(EventKind::SloBreach, 900, 100, 0, None);
        assert_eq!(rec.last_dump().unwrap().trace_id, 0);
    }

    #[test]
    fn snapshot_of_a_partially_filled_ring() {
        let rec = FlightRecorder::new(64);
        rec.record(EventKind::EpochPublished, 1, 5, 100);
        rec.record(EventKind::Rejection, 0, 32, 0);
        let events = rec.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::EpochPublished);
        assert_eq!(events[1].kind, EventKind::Rejection);
        assert!(events[0].at_micros <= events[1].at_micros);
    }

    #[test]
    fn trigger_captures_cause_and_ring() {
        let rec = FlightRecorder::new(8);
        rec.record(EventKind::EpochPublished, 3, 2, 50);
        assert!(rec.last_dump().is_none());
        rec.trigger(EventKind::PublishStall, 3, 900_000, 0, None);
        let dump = rec.last_dump().expect("dump after trigger");
        assert_eq!(dump.cause.kind, EventKind::PublishStall);
        assert_eq!(dump.cause.a, 3);
        assert!(dump.events.iter().any(|e| e.kind == EventKind::EpochPublished));
        assert!(dump.events.iter().any(|e| e.kind == EventKind::PublishStall));
        assert_eq!(rec.dumps_taken(), 1);
    }

    #[test]
    fn concurrent_storm_stays_bounded_and_valid() {
        let rec = Arc::new(FlightRecorder::new(32));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        rec.record(EventKind::Steal, t, i, 0);
                    }
                })
            })
            .collect();
        for _ in 0..100 {
            let snap = rec.snapshot();
            assert!(snap.len() <= 32);
            assert!(snap.windows(2).all(|w| w[0].at_micros <= w[1].at_micros));
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(rec.events_recorded(), 20_000);
        assert_eq!(rec.snapshot().len(), 32);
    }
}
