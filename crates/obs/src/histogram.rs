//! The lock-free log₂ latency histogram shared by the end-to-end and
//! per-stage metrics, plus its plain-data snapshot form.
//!
//! This is the histogram `ksp-serve` has recorded end-to-end latency into
//! since PR 2, moved here so per-stage aggregation, wire exposition and the
//! text renderer can all speak the same bucket layout.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets: bucket `i` covers `[2^i, 2^(i+1))` microseconds,
/// with the last bucket open-ended. 40 buckets cover ~1 µs to ~9 minutes.
pub const BUCKETS: usize = 40;

/// Upper bound, in microseconds, of bucket `i` (the last bucket is open-ended
/// and reported via the histogram's max instead).
pub fn bucket_upper_micros(i: usize) -> u64 {
    1u64 << (i + 1).min(63)
}

/// A lock-free log₂-bucketed latency histogram over microseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0u64; BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            total_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u64::MAX as u128) as u64;
        self.record_micros(micros);
    }

    /// Records one observation already measured in microseconds.
    pub fn record_micros(&self, micros: u64) {
        let bucket = (64 - micros.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing the `q`-quantile observation
    /// (`q` in `[0, 1]`), or zero when empty. Log-bucketing bounds the error to
    /// a factor of two, which is plenty for p50/p95/p99 reporting.
    pub fn quantile(&self, q: f64) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        let rank = ((count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Duration::from_micros(bucket_upper_micros(i));
            }
        }
        Duration::from_micros(self.max_micros.load(Ordering::Relaxed))
    }

    /// Mean observed latency.
    pub fn mean(&self) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.total_micros.load(Ordering::Relaxed) / count)
    }

    /// Largest observed latency.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_micros.load(Ordering::Relaxed))
    }

    /// Copies the live counters into a plain-data snapshot. Buckets are read
    /// individually (not atomically as a set), so a snapshot taken under
    /// concurrent recording can be off by in-flight observations — fine for
    /// monitoring, which is the only consumer.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            total_micros: self.total_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data form of a [`LatencyHistogram`]: what goes over the wire and
/// into the text exposition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; bucket `i` covers `[2^i, 2^(i+1))` µs.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations, microseconds.
    pub total_micros: u64,
    /// Largest observation, microseconds.
    pub max_micros: u64,
}

impl HistogramSnapshot {
    /// Same quantile estimate as [`LatencyHistogram::quantile`].
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return Duration::from_micros(bucket_upper_micros(i));
            }
        }
        Duration::from_micros(self.max_micros)
    }

    /// Mean observation.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.total_micros / self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_orders_quantiles() {
        let h = LatencyHistogram::default();
        for micros in [10u64, 20, 40, 80, 160, 320, 640, 1280, 2560, 100_000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 10);
        assert!(h.quantile(0.5) <= h.quantile(0.95));
        assert!(h.quantile(0.95) <= h.quantile(0.99));
        assert!(h.quantile(0.99) >= Duration::from_micros(100_000 / 2));
        assert!(h.mean() >= Duration::from_micros(10));
        assert!(h.max() >= Duration::from_micros(100_000));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn snapshot_mirrors_the_live_histogram() {
        let h = LatencyHistogram::default();
        for micros in [3u64, 17, 900, 40_000] {
            h.record(Duration::from_micros(micros));
        }
        let snap = h.snapshot();
        assert_eq!(snap.buckets.len(), BUCKETS);
        assert_eq!(snap.count, 4);
        assert_eq!(snap.total_micros, 3 + 17 + 900 + 40_000);
        assert_eq!(snap.max_micros, 40_000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 4);
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(snap.quantile(q), h.quantile(q));
        }
        assert_eq!(snap.mean(), h.mean());
    }
}
