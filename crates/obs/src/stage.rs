//! The span stage taxonomy: where a request can spend its lifetime.

/// One stage of a request's lifetime inside the query service.
///
/// The stages partition the interval from submission to reply, in this order:
///
/// 1. [`Admission`](Stage::Admission) — validation and shard routing, up to
///    the moment the request is enqueued.
/// 2. [`Queue`](Stage::Queue) — waiting in the home shard's bounded queue
///    until a worker begins processing it. Zero when the request was stolen.
/// 3. [`Steal`](Stage::Steal) — the same wait, attributed here instead of
///    [`Queue`](Stage::Queue) when a *thief* worker drained the request from
///    another shard's queue. Exactly one of Queue/Steal is non-zero per
///    request, so the partition property is preserved while the steal
///    histogram's count doubles as "requests served via work stealing".
/// 4. [`Cache`](Stage::Cache) — result-cache lock and lookup.
/// 5. [`Engine`](Stage::Engine) — the KSP-DG filter/refine run (cache miss
///    only), minus the survival sweep.
/// 6. [`TraceSweep`](Stage::TraceSweep) — the survival sweep that widens the
///    result's dependency trace so it can outlive epoch publishes.
/// 7. [`Reply`](Stage::Reply) — cache insert, metrics accounting and response
///    construction, up to the latency stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Validation + routing, submission to enqueue.
    Admission,
    /// Home-queue wait, enqueue to worker pickup.
    Queue,
    /// Queue wait of a stolen request, attributed to the steal path.
    Steal,
    /// Result-cache lock and lookup.
    Cache,
    /// Engine filter/refine run, excluding the survival sweep.
    Engine,
    /// Survival sweep extending the result's dependency trace.
    TraceSweep,
    /// Cache insert, accounting and response construction.
    Reply,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 7;

    /// All stages in lifetime order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Admission,
        Stage::Queue,
        Stage::Steal,
        Stage::Cache,
        Stage::Engine,
        Stage::TraceSweep,
        Stage::Reply,
    ];

    /// Stable metric-label name of this stage.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Admission => "admission",
            Stage::Queue => "queue",
            Stage::Steal => "steal",
            Stage::Cache => "cache",
            Stage::Engine => "engine",
            Stage::TraceSweep => "trace_sweep",
            Stage::Reply => "reply",
        }
    }

    /// Dense index of this stage in [`Stage::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Stage::index`]; `None` for out-of-range values (e.g. a
    /// stage added by a newer peer and decoded from the wire).
    pub fn from_index(index: usize) -> Option<Stage> {
        Stage::ALL.get(index).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_round_trip_and_names_are_unique() {
        let mut names = std::collections::HashSet::new();
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
            assert_eq!(Stage::from_index(i), Some(*stage));
            assert!(names.insert(stage.name()));
        }
        assert_eq!(Stage::from_index(Stage::COUNT), None);
    }
}
