//! Per-request span chains and their per-stage aggregation.
//!
//! A [`RequestSpan`] rides inside the service's request object and is stamped
//! at each stage boundary with microseconds-since-submission from one
//! monotonic origin. [`RequestSpan::finish`] turns the cumulative stamps into
//! per-stage durations by differencing, so the durations *telescope*: their
//! sum is exactly the final stamp, which the service also records as the
//! request's end-to-end latency. Per-stage histogram totals therefore sum to
//! the end-to-end histogram total to the microsecond.
//!
//! A disabled span is `None` inside: every mark is one branch, no clock
//! reads, no allocation.

use crate::histogram::{HistogramSnapshot, LatencyHistogram};
use crate::stage::Stage;
use std::time::{Duration, Instant};

/// Live stamp state of an enabled span. Stamps are cumulative microseconds
/// since `origin`.
#[derive(Debug, Clone, Copy)]
struct SpanState {
    origin: Instant,
    enqueued: u64,
    dequeued: u64,
    cache_done: u64,
    engine_done: u64,
    sweep_micros: u64,
    stolen: bool,
}

/// The per-request stage clock. Create one per request with
/// [`RequestSpan::begin_at`]; mark stage boundaries as the request moves
/// through the service; [`finish`](RequestSpan::finish) yields the
/// [`SpanChain`].
#[derive(Debug, Clone, Copy)]
pub struct RequestSpan {
    inner: Option<SpanState>,
}

impl RequestSpan {
    /// A span that records nothing; every mark is a single branch.
    pub fn disabled() -> RequestSpan {
        RequestSpan { inner: None }
    }

    /// Starts a span whose stamps are measured from `origin` — pass the same
    /// instant used for the request's end-to-end latency so the stage
    /// durations telescope to it.
    pub fn begin_at(origin: Instant, enabled: bool) -> RequestSpan {
        RequestSpan {
            inner: enabled.then_some(SpanState {
                origin,
                enqueued: 0,
                dequeued: 0,
                cache_done: 0,
                engine_done: 0,
                sweep_micros: 0,
                stolen: false,
            }),
        }
    }

    /// Whether this span is recording.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn stamp(origin: Instant) -> u64 {
        origin.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Marks the end of admission: the request is about to enter its home
    /// queue.
    pub fn mark_enqueued(&mut self) {
        if let Some(s) = &mut self.inner {
            s.enqueued = Self::stamp(s.origin);
        }
    }

    /// Marks the start of processing by a worker; `stolen` says whether the
    /// executing worker drained it from another shard's queue.
    pub fn mark_dequeued(&mut self, stolen: bool) {
        if let Some(s) = &mut self.inner {
            s.dequeued = Self::stamp(s.origin);
            s.stolen = stolen;
        }
    }

    /// Marks the end of the result-cache lookup.
    pub fn mark_cache_done(&mut self) {
        if let Some(s) = &mut self.inner {
            s.cache_done = Self::stamp(s.origin);
        }
    }

    /// Marks the end of the engine run; `sweep` is the portion the engine
    /// spent in the survival sweep (zero on a cache hit).
    pub fn mark_engine_done(&mut self, sweep: Duration) {
        if let Some(s) = &mut self.inner {
            s.engine_done = Self::stamp(s.origin);
            s.sweep_micros = sweep.as_micros().min(u64::MAX as u128) as u64;
        }
    }

    /// Takes the final stamp and converts the chain into per-stage durations.
    /// Returns the chain plus the end-to-end duration (`== chain.total()`),
    /// or `None` for a disabled span.
    pub fn finish(&self) -> Option<(SpanChain, Duration)> {
        let s = self.inner.as_ref()?;
        let end = Self::stamp(s.origin);
        // Clamp each boundary to be monotone, then difference. The sum of
        // differences telescopes to `end` exactly.
        let enqueued = s.enqueued.min(end);
        let dequeued = s.dequeued.clamp(enqueued, end);
        let cache_done = s.cache_done.clamp(dequeued, end);
        let engine_done = s.engine_done.clamp(cache_done, end);
        let mut micros = [0u64; Stage::COUNT];
        micros[Stage::Admission.index()] = enqueued;
        let wait = dequeued - enqueued;
        if s.stolen {
            micros[Stage::Steal.index()] = wait;
        } else {
            micros[Stage::Queue.index()] = wait;
        }
        micros[Stage::Cache.index()] = cache_done - dequeued;
        let engine = engine_done - cache_done;
        let sweep = s.sweep_micros.min(engine);
        micros[Stage::Engine.index()] = engine - sweep;
        micros[Stage::TraceSweep.index()] = sweep;
        micros[Stage::Reply.index()] = end - engine_done;
        Some((SpanChain { micros, stolen: s.stolen }, Duration::from_micros(end)))
    }
}

/// A finished request's per-stage durations, in microseconds, indexed by
/// [`Stage::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanChain {
    /// Duration of each stage, microseconds.
    pub micros: [u64; Stage::COUNT],
    /// Whether the request was served by a thief worker.
    pub stolen: bool,
}

impl SpanChain {
    /// Total duration across all stages — the request's end-to-end latency in
    /// microseconds.
    pub fn total_micros(&self) -> u64 {
        self.micros.iter().sum()
    }

    /// Duration of one stage.
    pub fn stage(&self, stage: Stage) -> Duration {
        Duration::from_micros(self.micros[stage.index()])
    }
}

/// One [`LatencyHistogram`] per stage; the aggregation target of finished
/// span chains.
#[derive(Debug, Default)]
pub struct StageHistograms {
    hists: [LatencyHistogram; Stage::COUNT],
}

impl StageHistograms {
    /// Creates empty per-stage histograms.
    pub fn new() -> Self {
        StageHistograms::default()
    }

    /// Folds one finished chain in. Every stage of the chain is recorded
    /// except the unused member of the Queue/Steal pair, so
    /// `count(queue) + count(steal) == count(admission)` and the steal
    /// histogram's count equals the number of stolen requests.
    pub fn record_chain(&self, chain: &SpanChain) {
        for stage in Stage::ALL {
            match stage {
                Stage::Steal if !chain.stolen => continue,
                Stage::Queue if chain.stolen => continue,
                _ => {}
            }
            self.hists[stage.index()].record_micros(chain.micros[stage.index()]);
        }
    }

    /// The live histogram of one stage.
    pub fn stage(&self, stage: Stage) -> &LatencyHistogram {
        &self.hists[stage.index()]
    }

    /// Snapshots every stage histogram, in [`Stage::ALL`] order.
    pub fn snapshot(&self) -> Vec<(Stage, HistogramSnapshot)> {
        Stage::ALL.iter().map(|&s| (s, self.hists[s.index()].snapshot())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        let mut span = RequestSpan::disabled();
        assert!(!span.is_enabled());
        span.mark_enqueued();
        span.mark_dequeued(false);
        span.mark_cache_done();
        span.mark_engine_done(Duration::from_micros(5));
        assert!(span.finish().is_none());
    }

    #[test]
    fn chain_telescopes_to_the_end_to_end_latency() {
        let origin = Instant::now();
        let mut span = RequestSpan::begin_at(origin, true);
        span.mark_enqueued();
        std::thread::sleep(Duration::from_millis(2));
        span.mark_dequeued(false);
        span.mark_cache_done();
        std::thread::sleep(Duration::from_millis(1));
        span.mark_engine_done(Duration::from_micros(200));
        let (chain, total) = span.finish().expect("enabled span finishes");
        assert_eq!(chain.total_micros(), total.as_micros() as u64);
        assert!(chain.stage(Stage::Queue) >= Duration::from_millis(2));
        assert_eq!(chain.micros[Stage::Steal.index()], 0);
        assert_eq!(chain.stage(Stage::TraceSweep), Duration::from_micros(200));
        assert!(chain.stage(Stage::Engine) >= Duration::from_micros(800));
    }

    #[test]
    fn stolen_wait_lands_in_the_steal_stage() {
        let origin = Instant::now();
        let mut span = RequestSpan::begin_at(origin, true);
        span.mark_enqueued();
        std::thread::sleep(Duration::from_millis(1));
        span.mark_dequeued(true);
        span.mark_cache_done();
        span.mark_engine_done(Duration::ZERO);
        let (chain, _) = span.finish().unwrap();
        assert!(chain.stolen);
        assert_eq!(chain.micros[Stage::Queue.index()], 0);
        assert!(chain.stage(Stage::Steal) >= Duration::from_millis(1));
    }

    #[test]
    fn stage_histograms_partition_queue_and_steal_counts() {
        let hists = StageHistograms::new();
        let stolen = SpanChain { micros: [1, 0, 7, 2, 100, 10, 1], stolen: true };
        let queued = SpanChain { micros: [1, 5, 0, 2, 100, 10, 1], stolen: false };
        hists.record_chain(&stolen);
        hists.record_chain(&queued);
        hists.record_chain(&queued);
        assert_eq!(hists.stage(Stage::Admission).count(), 3);
        assert_eq!(hists.stage(Stage::Queue).count(), 2);
        assert_eq!(hists.stage(Stage::Steal).count(), 1);
        let snap = hists.snapshot();
        assert_eq!(snap.len(), Stage::COUNT);
        let total: u64 = snap.iter().map(|(_, h)| h.total_micros).sum();
        assert_eq!(total, stolen.total_micros() + 2 * queued.total_micros());
    }
}
