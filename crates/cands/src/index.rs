//! The CANDS index: exact boundary-pair shortest paths per subgraph, and the overlay
//! search that answers single-shortest-path queries against it.

use ksp_algo::{dijkstra_all, dijkstra_path};
use ksp_graph::{
    DynamicGraph, GraphError, GraphView, PartitionConfig, Partitioner, Subgraph, SubgraphId,
    UpdateBatch, VertexId, Weight,
};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Statistics of one maintenance call (Figure 41 compares this against DTLP).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CandsMaintenanceStats {
    /// Number of weight updates applied.
    pub updates_applied: usize,
    /// Number of subgraphs whose boundary-pair index had to be recomputed.
    pub subgraphs_recomputed: usize,
    /// Number of boundary-pair shortest paths recomputed.
    pub pairs_recomputed: usize,
    /// Wall-clock time of the maintenance call.
    pub elapsed: Duration,
}

/// The answer to a CANDS single-shortest-path query.
#[derive(Debug, Clone, PartialEq)]
pub struct CandsQueryResult {
    /// The shortest distance from source to target, or `None` if unreachable.
    pub distance: Option<Weight>,
    /// The sequence of boundary vertices (plus the endpoints) the shortest route passes
    /// through, outermost first. Empty when the target is unreachable.
    pub boundary_route: Vec<VertexId>,
    /// Number of overlay vertices settled while answering (a work metric).
    pub settled_vertices: usize,
}

/// The CANDS index over one dynamic graph.
#[derive(Debug, Clone)]
pub struct CandsIndex {
    /// Shared handles from the partitioner; weight maintenance unshares a
    /// subgraph copy-on-write before mutating it.
    subgraphs: Vec<std::sync::Arc<Subgraph>>,
    vertex_subgraphs: HashMap<VertexId, Vec<SubgraphId>>,
    edge_owner: Vec<SubgraphId>,
    boundary: Vec<VertexId>,
    /// Exact within-subgraph shortest distances between boundary pairs, per subgraph.
    pair_distances: Vec<HashMap<(VertexId, VertexId), Weight>>,
    /// Overlay adjacency over boundary vertices: for every boundary vertex, the
    /// boundary vertices reachable within one subgraph and the minimum indexed
    /// distance over the subgraphs that contain both.
    overlay: HashMap<VertexId, Vec<(VertexId, Weight)>>,
    directed: bool,
    build_time: Duration,
}

impl CandsIndex {
    /// Builds the index: partitions the graph and computes the exact shortest path
    /// between every pair of boundary vertices within every subgraph.
    pub fn build(graph: &DynamicGraph, max_subgraph_vertices: usize) -> Result<Self, GraphError> {
        let start = Instant::now();
        let partitioning =
            Partitioner::new(PartitionConfig::with_max_vertices(max_subgraph_vertices))
                .partition(graph)?;
        let boundary = partitioning.boundary_vertices().to_vec();
        let mut vertex_subgraphs = HashMap::new();
        for v in graph.vertices() {
            vertex_subgraphs.insert(v, partitioning.subgraphs_of_vertex(v).to_vec());
        }
        let edge_owner: Vec<SubgraphId> =
            graph.edge_ids().map(|e| partitioning.owner_of_edge(e)).collect();
        let subgraphs = partitioning.into_subgraphs();

        let mut index = CandsIndex {
            subgraphs,
            vertex_subgraphs,
            edge_owner,
            boundary,
            pair_distances: Vec::new(),
            overlay: HashMap::new(),
            directed: graph.is_directed(),
            build_time: Duration::default(),
        };
        index.pair_distances = index
            .subgraphs
            .iter()
            .map(|sg| Self::compute_pair_distances(sg, index.directed))
            .collect();
        index.rebuild_overlay();
        index.build_time = start.elapsed();
        Ok(index)
    }

    /// Wall-clock time of the initial build.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Number of subgraphs.
    pub fn num_subgraphs(&self) -> usize {
        self.subgraphs.len()
    }

    /// Number of indexed boundary pairs across all subgraphs.
    pub fn num_indexed_pairs(&self) -> usize {
        self.pair_distances.iter().map(|m| m.len()).sum()
    }

    /// All boundary vertices.
    pub fn boundary_vertices(&self) -> &[VertexId] {
        &self.boundary
    }

    /// Whether `v` is a boundary vertex.
    pub fn is_boundary(&self, v: VertexId) -> bool {
        self.boundary.binary_search(&v).is_ok()
    }

    /// Estimated memory of the shortest-path index (not counting the subgraphs).
    pub fn index_memory_bytes(&self) -> usize {
        self.pair_distances
            .iter()
            .map(|m| m.len() * (std::mem::size_of::<(VertexId, VertexId)>() + 8))
            .sum::<usize>()
            + self
                .overlay
                .values()
                .map(|v| v.len() * std::mem::size_of::<(VertexId, Weight)>())
                .sum::<usize>()
    }

    fn compute_pair_distances(
        subgraph: &Subgraph,
        directed: bool,
    ) -> HashMap<(VertexId, VertexId), Weight> {
        let mut out = HashMap::new();
        let boundary = subgraph.boundary_vertices();
        for &a in boundary {
            let map = dijkstra_all(subgraph, a);
            for &b in boundary {
                if a == b {
                    continue;
                }
                if !directed && a > b {
                    continue; // store undirected pairs once, canonically (min, max)
                }
                let d = map.distance(b);
                if d.is_finite() {
                    out.insert((a, b), d);
                }
            }
        }
        out
    }

    fn rebuild_overlay(&mut self) {
        let mut overlay: HashMap<VertexId, Vec<(VertexId, Weight)>> = HashMap::new();
        let mut best: HashMap<(VertexId, VertexId), Weight> = HashMap::new();
        for pairs in &self.pair_distances {
            for (&(a, b), &d) in pairs {
                best.entry((a, b)).and_modify(|w| *w = (*w).min(d)).or_insert(d);
            }
        }
        for ((a, b), d) in best {
            overlay.entry(a).or_default().push((b, d));
            if !self.directed {
                overlay.entry(b).or_default().push((a, d));
            }
        }
        self.overlay = overlay;
    }

    /// Applies a batch of weight updates. Every subgraph containing an updated edge
    /// recomputes all of its boundary-pair shortest paths — the expensive maintenance
    /// step that Figure 41 contrasts with DTLP's cheap bound refresh.
    pub fn apply_batch(
        &mut self,
        batch: &UpdateBatch,
    ) -> Result<CandsMaintenanceStats, GraphError> {
        let start = Instant::now();
        let mut dirty: Vec<bool> = vec![false; self.subgraphs.len()];
        for u in batch.iter() {
            let owner = *self.edge_owner.get(u.edge.index()).ok_or(GraphError::EdgeOutOfRange {
                edge: u.edge,
                num_edges: self.edge_owner.len(),
            })?;
            std::sync::Arc::make_mut(&mut self.subgraphs[owner.index()]).apply_update(u)?;
            dirty[owner.index()] = true;
        }
        let mut stats =
            CandsMaintenanceStats { updates_applied: batch.len(), ..Default::default() };
        for (i, is_dirty) in dirty.iter().enumerate() {
            if !is_dirty {
                continue;
            }
            self.pair_distances[i] =
                Self::compute_pair_distances(&self.subgraphs[i], self.directed);
            stats.subgraphs_recomputed += 1;
            stats.pairs_recomputed += self.pair_distances[i].len();
        }
        if stats.subgraphs_recomputed > 0 {
            self.rebuild_overlay();
        }
        stats.elapsed = start.elapsed();
        Ok(stats)
    }

    /// Answers a single-shortest-path query from `source` to `target`.
    pub fn shortest_path(&self, source: VertexId, target: VertexId) -> CandsQueryResult {
        if source == target {
            return CandsQueryResult {
                distance: Some(Weight::ZERO),
                boundary_route: vec![source],
                settled_vertices: 1,
            };
        }
        // Overlay view: indexed boundary edges plus query-local attachments.
        let mut extra: HashMap<VertexId, Vec<(VertexId, Weight)>> = HashMap::new();
        for &sg in self.subgraphs_of_vertex(source) {
            let sgref = &self.subgraphs[sg.index()];
            let map = dijkstra_all(sgref, source);
            for &b in sgref.boundary_vertices() {
                let d = map.distance(b);
                if d.is_finite() && b != source {
                    extra.entry(source).or_default().push((b, d));
                }
            }
            // Direct connection if the target shares this subgraph.
            if sgref.contains_vertex(target) {
                let d = map.distance(target);
                if d.is_finite() {
                    extra.entry(source).or_default().push((target, d));
                }
            }
        }
        for &sg in self.subgraphs_of_vertex(target) {
            let sgref = &self.subgraphs[sg.index()];
            if self.directed {
                // Reverse search within the subgraph: distance from each boundary
                // vertex to the target.
                for &b in sgref.boundary_vertices() {
                    if b == target {
                        continue;
                    }
                    if let Some(p) = dijkstra_path(sgref, b, target) {
                        extra.entry(b).or_default().push((target, p.distance()));
                    }
                }
            } else {
                let map = dijkstra_all(sgref, target);
                for &b in sgref.boundary_vertices() {
                    let d = map.distance(b);
                    if d.is_finite() && b != target {
                        extra.entry(b).or_default().push((target, d));
                    }
                }
            }
        }

        let view = CandsOverlayView { index: self, extra: &extra };
        match dijkstra_path(&view, source, target) {
            Some(p) => CandsQueryResult {
                distance: Some(p.distance()),
                settled_vertices: p.num_vertices(),
                boundary_route: p.vertices().to_vec(),
            },
            None => {
                CandsQueryResult { distance: None, boundary_route: Vec::new(), settled_vertices: 0 }
            }
        }
    }

    fn subgraphs_of_vertex(&self, v: VertexId) -> &[SubgraphId] {
        self.vertex_subgraphs.get(&v).map(|s| s.as_slice()).unwrap_or(&[])
    }
}

/// Overlay graph view used by the CANDS query: indexed boundary edges plus query-local
/// source/target attachments.
struct CandsOverlayView<'a> {
    index: &'a CandsIndex,
    extra: &'a HashMap<VertexId, Vec<(VertexId, Weight)>>,
}

impl GraphView for CandsOverlayView<'_> {
    fn num_vertices(&self) -> usize {
        self.index
            .boundary
            .last()
            .map(|v| v.index() + 1)
            .unwrap_or(0)
            .max(self.extra.keys().map(|v| v.index() + 1).max().unwrap_or(0))
    }

    fn contains_vertex(&self, v: VertexId) -> bool {
        self.index.overlay.contains_key(&v)
            || self.extra.contains_key(&v)
            || self.index.is_boundary(v)
    }

    fn for_each_neighbor(&self, v: VertexId, mut f: impl FnMut(VertexId, Weight)) {
        if let Some(list) = self.index.overlay.get(&v) {
            for &(to, w) in list {
                f(to, w);
            }
        }
        if let Some(list) = self.extra.get(&v) {
            for &(to, w) in list {
                f(to, w);
            }
        }
    }

    fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        let mut best: Option<Weight> = None;
        self.for_each_neighbor(u, |to, w| {
            if to == v {
                best = Some(best.map_or(w, |b| b.min(w)));
            }
        });
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_graph::EdgeId;
    use ksp_workload::{
        QueryWorkload, QueryWorkloadConfig, RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig,
        TrafficModel,
    };

    fn network(n: usize, seed: u64) -> DynamicGraph {
        RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(n)).generate(seed).unwrap().graph
    }

    #[test]
    fn distances_match_dijkstra_ground_truth() {
        let g = network(250, 7);
        let index = CandsIndex::build(&g, 20).unwrap();
        let workload = QueryWorkload::generate(&g, QueryWorkloadConfig::new(25, 1), 3);
        for q in workload.iter() {
            let result = index.shortest_path(q.source, q.target);
            let expected = dijkstra_path(&g, q.source, q.target).map(|p| p.distance());
            match (result.distance, expected) {
                (Some(a), Some(b)) => {
                    assert!(
                        a.approx_eq(b),
                        "{} -> {}: CANDS {a} vs Dijkstra {b}",
                        q.source,
                        q.target
                    )
                }
                (None, None) => {}
                other => {
                    panic!("reachability mismatch for {} -> {}: {other:?}", q.source, q.target)
                }
            }
        }
    }

    #[test]
    fn distances_stay_correct_after_updates() {
        let mut g = network(200, 9);
        let mut index = CandsIndex::build(&g, 18).unwrap();
        let mut traffic = TrafficModel::new(&g, TrafficConfig::new(0.5, 0.5), 4);
        for _ in 0..2 {
            let batch = traffic.next_snapshot();
            g.apply_batch(&batch).unwrap();
            let stats = index.apply_batch(&batch).unwrap();
            assert!(stats.subgraphs_recomputed > 0);
            assert!(stats.pairs_recomputed > 0);
        }
        let workload = QueryWorkload::generate(&g, QueryWorkloadConfig::new(15, 1), 11);
        for q in workload.iter() {
            let result = index.shortest_path(q.source, q.target);
            let expected = dijkstra_path(&g, q.source, q.target).map(|p| p.distance());
            match (result.distance, expected) {
                (Some(a), Some(b)) => assert!(a.approx_eq(b)),
                (None, None) => {}
                other => panic!("reachability mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn trivial_and_unreachable_queries() {
        let g = network(150, 5);
        let index = CandsIndex::build(&g, 15).unwrap();
        let r = index.shortest_path(VertexId(3), VertexId(3));
        assert_eq!(r.distance, Some(Weight::ZERO));
        assert_eq!(r.boundary_route, vec![VertexId(3)]);
    }

    #[test]
    fn maintenance_recomputes_only_affected_subgraphs() {
        let g = network(300, 13);
        let mut index = CandsIndex::build(&g, 25).unwrap();
        // A single-edge update touches exactly one subgraph.
        let batch =
            UpdateBatch::new(vec![ksp_graph::WeightUpdate::new(EdgeId(0), Weight::new(99.0))]);
        let stats = index.apply_batch(&batch).unwrap();
        assert_eq!(stats.updates_applied, 1);
        assert_eq!(stats.subgraphs_recomputed, 1);
    }

    #[test]
    fn index_statistics_are_consistent() {
        let g = network(300, 17);
        let index = CandsIndex::build(&g, 25).unwrap();
        assert!(index.num_subgraphs() > 1);
        assert!(index.num_indexed_pairs() > 0);
        assert!(!index.boundary_vertices().is_empty());
        assert!(index.index_memory_bytes() > 0);
        for &b in index.boundary_vertices().iter().take(20) {
            assert!(index.is_boundary(b));
        }
    }

    #[test]
    fn unknown_edge_update_is_rejected() {
        let g = network(120, 19);
        let mut index = CandsIndex::build(&g, 15).unwrap();
        let batch = UpdateBatch::new(vec![ksp_graph::WeightUpdate::new(
            EdgeId(1_000_000),
            Weight::new(1.0),
        )]);
        assert!(index.apply_batch(&batch).is_err());
    }
}
