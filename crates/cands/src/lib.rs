//! CANDS baseline: continuous single-shortest-path navigation over a dynamic,
//! partitioned graph (Yang et al., VLDB 2014), reimplemented for the comparison in
//! Figures 40–41 of the KSP-DG paper.
//!
//! CANDS partitions the graph like KSP-DG does, but instead of weight-insensitive
//! bounding paths it indexes the **exact shortest path between every pair of boundary
//! vertices within each subgraph**. Queries are fast — the indexed distances let a
//! single Dijkstra over the small boundary (overlay) graph answer a shortest-path
//! query — but maintenance is expensive: when edge weights change, the affected
//! subgraphs must recompute all of their boundary-pair shortest paths, which is exactly
//! the trade-off the paper's comparison highlights.
//!
//! The implementation answers single-shortest-path (k = 1) queries only, as in the
//! original system.

#![warn(missing_docs)]

pub mod index;

pub use index::{CandsIndex, CandsMaintenanceStats, CandsQueryResult};
