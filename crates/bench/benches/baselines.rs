//! Criterion bench: KSP-DG vs FindKSP vs Yen vs CANDS on the same query workload
//! (the micro-benchmark behind Figures 35–41).

use criterion::{criterion_group, criterion_main, Criterion};
use ksp_algo::{find_ksp, yen_ksp};
use ksp_cands::CandsIndex;
use ksp_core::dtlp::{DtlpConfig, DtlpIndex};
use ksp_core::kspdg::KspDgEngine;
use ksp_workload::{QueryWorkload, QueryWorkloadConfig, RoadNetworkConfig, RoadNetworkGenerator};

fn bench_baselines(c: &mut Criterion) {
    let net = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(600))
        .generate(0xBA5E)
        .expect("network generation");
    let graph = net.graph;
    let index = DtlpIndex::build(&graph, DtlpConfig::new(40, 3)).expect("build");
    let cands = CandsIndex::build(&graph, 40).expect("CANDS build");
    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(8, 2), 0xBA);

    let mut group = c.benchmark_group("baselines_k2");
    group.sample_size(10);
    group.bench_function("ksp_dg", |b| {
        let engine = KspDgEngine::new(&index);
        b.iter(|| {
            for q in workload.iter() {
                std::hint::black_box(engine.query(q.source, q.target, q.k));
            }
        });
    });
    group.bench_function("findksp", |b| {
        b.iter(|| {
            for q in workload.iter() {
                std::hint::black_box(find_ksp(&graph, q.source, q.target, q.k));
            }
        });
    });
    group.bench_function("yen", |b| {
        b.iter(|| {
            for q in workload.iter() {
                std::hint::black_box(yen_ksp(&graph, q.source, q.target, q.k));
            }
        });
    });
    group.finish();

    let mut group = c.benchmark_group("baselines_sssp");
    group.sample_size(10);
    group.bench_function("ksp_dg_k1", |b| {
        let engine = KspDgEngine::new(&index);
        b.iter(|| {
            for q in workload.iter() {
                std::hint::black_box(engine.query(q.source, q.target, 1));
            }
        });
    });
    group.bench_function("cands", |b| {
        b.iter(|| {
            for q in workload.iter() {
                std::hint::black_box(cands.shortest_path(q.source, q.target));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
