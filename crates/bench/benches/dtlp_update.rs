//! Criterion bench: DTLP maintenance under traffic snapshots vs `α`, `τ` and `ξ`
//! (the micro-benchmark behind Figures 19–23), plus update throughput (Figure 21).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ksp_core::dtlp::{DtlpConfig, DtlpIndex};
use ksp_workload::{RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig, TrafficModel};

fn bench_update(c: &mut Criterion) {
    let net = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(700))
        .generate(0xBE9D)
        .expect("network generation");
    let base = DtlpIndex::build(&net.graph, DtlpConfig::new(40, 3)).expect("build");

    let mut group = c.benchmark_group("dtlp_update_vs_alpha");
    group.sample_size(10);
    for alpha in [10usize, 30, 50] {
        let mut traffic =
            TrafficModel::new(&net.graph, TrafficConfig::new(alpha as f64 / 100.0, 0.5), 7);
        let batch = traffic.next_snapshot();
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &batch, |b, batch| {
            b.iter_batched(
                || base.clone(),
                |mut index| index.apply_batch(batch).expect("maintenance"),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();

    let mut group = c.benchmark_group("dtlp_update_vs_xi");
    group.sample_size(10);
    for xi in [1usize, 4, 8] {
        let index = DtlpIndex::build(&net.graph, DtlpConfig::new(60, xi)).expect("build");
        let mut traffic = TrafficModel::new(&net.graph, TrafficConfig::new(0.5, 0.5), 11);
        let batch = traffic.next_snapshot();
        group.bench_with_input(BenchmarkId::from_parameter(xi), &batch, |b, batch| {
            b.iter_batched(
                || index.clone(),
                |mut index| index.apply_batch(batch).expect("maintenance"),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update);
criterion_main!(benches);
