//! Criterion bench: cold-start paths of the query service.
//!
//! The number the storage subsystem exists for: `Store::recover` (newest
//! checkpoint + delta-log replay) vs a full `DtlpIndex::build` on the same
//! benchmark graph — plus the component costs around it (checkpoint encode,
//! checkpoint write, one durable log append).

use criterion::{criterion_group, criterion_main, Criterion};
use ksp_core::dtlp::{DtlpConfig, DtlpIndex};
use ksp_store::{Store, StoreConfig, SyncPolicy};
use ksp_workload::{RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig, TrafficModel};
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ksp-ckpt-bench-{tag}-{}", std::process::id()))
}

fn bench_checkpoint_restart(c: &mut Criterion) {
    let net = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(600))
        .generate(0xC01D)
        .expect("network generation");
    let mut graph = net.graph;
    let dtlp = DtlpConfig::new(40, 2);
    let mut index = DtlpIndex::build(&graph, dtlp).expect("index build");

    // Prepare a store with a checkpoint at epoch 0 and a 4-epoch log suffix,
    // so recovery exercises both the decode and the replay path.
    let dir = scratch_dir("restart");
    let _ = std::fs::remove_dir_all(&dir);
    let store_config =
        StoreConfig { checkpoint_interval: 0, sync: SyncPolicy::Never, ..StoreConfig::default() };
    let mut store = Store::create(&dir, store_config, 0, &graph, &index).expect("store create");
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 0xBEEF);
    for _ in 0..4 {
        let batch = traffic.next_snapshot();
        let epoch = graph.apply_batch(&batch).expect("graph update");
        index.apply_batch(&batch).expect("index maintenance");
        store.log_batch(epoch, &batch).expect("log append");
    }
    drop(store);

    let mut group = c.benchmark_group("cold_start");
    group.sample_size(10);
    group.bench_function("full_index_build", |b| {
        b.iter(|| std::hint::black_box(DtlpIndex::build(&graph, dtlp).expect("index build")));
    });
    group.bench_function("store_recover", |b| {
        b.iter(|| {
            let (_store, recovered) = Store::recover(&dir, store_config).expect("recover");
            assert_eq!(recovered.epoch, 4);
            std::hint::black_box(recovered);
        });
    });
    group.finish();

    let mut group = c.benchmark_group("store_ops");
    group.sample_size(10);
    group.bench_function("encode_checkpoint", |b| {
        b.iter(|| std::hint::black_box(Store::encode_checkpoint(4, &graph, &index)));
    });
    group.bench_function("checkpoint_commit", |b| {
        // Includes the atomic write + log rotation, on a scratch store.
        let dir = scratch_dir("commit");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = Store::create(&dir, store_config, graph.version(), &graph, &index)
            .expect("store create");
        b.iter(|| store.checkpoint(graph.version(), &graph, &index).expect("checkpoint"));
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    });
    group.bench_function("durable_log_append", |b| {
        let dir = scratch_dir("append");
        let _ = std::fs::remove_dir_all(&dir);
        let fsync_config = StoreConfig {
            checkpoint_interval: 0,
            sync: SyncPolicy::Always,
            segment_max_records: u64::MAX,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, fsync_config, graph.version(), &graph, &index)
            .expect("store create");
        let mut live = graph.clone();
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 0xFEED);
        b.iter(|| {
            let batch = traffic.next_snapshot();
            let epoch = live.apply_batch(&batch).expect("graph update");
            store.log_batch(epoch, &batch).expect("log append");
        });
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    });
    group.finish();

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_checkpoint_restart);
criterion_main!(benches);
