//! Criterion bench: DTLP index construction cost vs subgraph size `z` and `ξ`
//! (the micro-benchmark behind Figures 15–18).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ksp_core::dtlp::{DtlpConfig, DtlpIndex};
use ksp_workload::{RoadNetworkConfig, RoadNetworkGenerator};

fn bench_build(c: &mut Criterion) {
    let net = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(700))
        .generate(0xBE9C)
        .expect("network generation");

    let mut group = c.benchmark_group("dtlp_build_vs_z");
    group.sample_size(10);
    for z in [25usize, 50, 100, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(z), &z, |b, &z| {
            b.iter(|| DtlpIndex::build(&net.graph, DtlpConfig::new(z, 2)).expect("build"));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("dtlp_build_vs_xi");
    group.sample_size(10);
    for xi in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(xi), &xi, |b, &xi| {
            b.iter(|| DtlpIndex::build(&net.graph, DtlpConfig::new(60, xi)).expect("build"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
