//! Criterion bench: epoch publication cost — copy-on-write vs clone-the-world.
//!
//! The number the COW refactor exists for: staging the next epoch's
//! `(graph, index)` pair for a *small* batch on a *large* graph. The COW path
//! (`DtlpIndex::clone` + `apply_batch`, as `QueryService::apply_batch` runs
//! it) deep-copies only the subgraph indexes the batch dirties; the baseline
//! (`DtlpIndex::deep_clone`, the pre-refactor behaviour) copies the whole
//! index every epoch. Publish cost should scale with the batch, not the
//! index: the small-batch COW arm must beat the full-clone arm by a wide
//! margin (the acceptance bar is 5x; in practice it is far larger), and the
//! large-batch COW arm shows the cost growing with the delta.

use criterion::{criterion_group, criterion_main, Criterion};
use ksp_core::dtlp::{DtlpConfig, DtlpIndex};
use ksp_graph::{DynamicGraph, SubgraphId, UpdateBatch, Weight, WeightUpdate};
use ksp_workload::{RoadNetworkConfig, RoadNetworkGenerator};

/// A batch updating `edges_per_subgraph` edges in each of the first
/// `num_subgraphs` subgraphs, so the dirty set size is known exactly.
fn batch_dirtying(
    graph: &DynamicGraph,
    index: &DtlpIndex,
    num_subgraphs: usize,
    edges_per_subgraph: usize,
) -> UpdateBatch {
    let mut updates = Vec::new();
    for target in 0..num_subgraphs {
        let target = SubgraphId(target as u32);
        let mut taken = 0;
        for e in graph.edge_ids() {
            if index.owner_of_edge(e) == target {
                let w = graph.initial_weight(e) as f64 * (1.5 + 0.1 * taken as f64);
                updates.push(WeightUpdate::new(e, Weight::new(w)));
                taken += 1;
                if taken == edges_per_subgraph {
                    break;
                }
            }
        }
    }
    UpdateBatch::new(updates)
}

fn bench_epoch_publish(c: &mut Criterion) {
    let net = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(1500))
        .generate(0xE9_0C)
        .expect("network generation");
    let graph = net.graph;
    let dtlp = DtlpConfig::new(40, 2);
    let index = DtlpIndex::build(&graph, dtlp).expect("index build");
    let total_subgraphs = index.num_subgraphs();

    let small = batch_dirtying(&graph, &index, 1, 4);
    let large = batch_dirtying(&graph, &index, total_subgraphs.min(24), 4);
    eprintln!(
        "epoch_publish: {} subgraphs, small batch dirties 1, large batch dirties {}",
        total_subgraphs,
        total_subgraphs.min(24)
    );

    let mut group = c.benchmark_group("epoch_publish");
    group.sample_size(20);
    // The serving path: COW fork of graph + index, then apply the batch.
    group.bench_function("cow_small_batch", |b| {
        b.iter(|| {
            let next_graph = graph.with_batch(&small).expect("graph fork");
            let mut next_index = index.clone();
            next_index.apply_batch(&small).expect("index maintenance");
            std::hint::black_box((next_graph, next_index));
        });
    });
    group.bench_function("cow_large_batch", |b| {
        b.iter(|| {
            let next_graph = graph.with_batch(&large).expect("graph fork");
            let mut next_index = index.clone();
            next_index.apply_batch(&large).expect("index maintenance");
            std::hint::black_box((next_graph, next_index));
        });
    });
    // The pre-refactor baseline: every epoch pays a deep copy of the index.
    group.bench_function("full_clone_small_batch", |b| {
        b.iter(|| {
            let next_graph = graph.with_batch(&small).expect("graph fork");
            let mut next_index = index.deep_clone();
            next_index.apply_batch(&small).expect("index maintenance");
            std::hint::black_box((next_graph, next_index));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_epoch_publish);
criterion_main!(benches);
