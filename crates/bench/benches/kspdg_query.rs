//! Criterion bench: KSP-DG query latency vs `k` and vs `z`
//! (the micro-benchmark behind Figures 28–31 and 33–34).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ksp_core::dtlp::{DtlpConfig, DtlpIndex};
use ksp_core::kspdg::KspDgEngine;
use ksp_workload::{
    QueryWorkload, QueryWorkloadConfig, RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig,
    TrafficModel,
};

fn bench_query(c: &mut Criterion) {
    let net = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(700))
        .generate(0xBE9E)
        .expect("network generation");
    let mut graph = net.graph;
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.35, 0.3), 3);
    let batch = traffic.next_snapshot();
    graph.apply_batch(&batch).expect("graph update");
    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(16, 2), 0xBE);

    let mut group = c.benchmark_group("kspdg_query_vs_k");
    group.sample_size(10);
    let mut index = DtlpIndex::build(&graph, DtlpConfig::new(40, 3)).expect("build");
    index.apply_batch(&batch).expect("maintenance");
    for k in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let engine = KspDgEngine::new(&index);
            b.iter(|| {
                for q in workload.iter() {
                    std::hint::black_box(engine.query(q.source, q.target, k));
                }
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("kspdg_query_vs_z");
    group.sample_size(10);
    for z in [30usize, 60, 120] {
        let mut index = DtlpIndex::build(&graph, DtlpConfig::new(z, 4)).expect("build");
        index.apply_batch(&batch).expect("maintenance");
        group.bench_with_input(BenchmarkId::from_parameter(z), &z, |b, _| {
            let engine = KspDgEngine::new(&index);
            b.iter(|| {
                for q in workload.iter() {
                    std::hint::black_box(engine.query(q.source, q.target, 2));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
