//! Criterion bench: the serving hot path under mixed query/update traffic —
//! dirty-set cache retention vs the wholesale-clear baseline.
//!
//! The number the trace machinery exists for: with updates arriving as small
//! batches (one dirtied subgraph each), a wholesale-clearing cache collapses
//! to a ~0% hit rate — every publish throws every entry away — while the
//! dirty-set-retaining cache keeps serving every query whose trace the batch
//! missed. Each bench iteration publishes one small epoch and then replays a
//! fixed query workload through the service; the retained arm should be
//! markedly faster (most queries are hits) and its reported hit rate and p95
//! far better. The summary lines printed at the end report both, in the
//! `epoch_publish` style.

use criterion::{criterion_group, criterion_main, Criterion};
use ksp_core::dtlp::DtlpConfig;
use ksp_graph::{DynamicGraph, SubgraphId, UpdateBatch, VertexId, Weight, WeightUpdate};
use ksp_serve::{QueryService, ServiceConfig};
use ksp_workload::{KspQuery, QueryWorkload, RoadNetworkConfig, RoadNetworkGenerator, Xoshiro256};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A navigation-style workload: origins and destinations a few grid units
/// apart, like the short-to-medium trips that dominate real request streams.
/// Local queries have local subgraph traces, which is what dirty-set
/// retention converts into post-publish hits.
fn local_workload(coordinates: &[(f64, f64)], count: usize, seed: u64) -> QueryWorkload {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let n = coordinates.len() as u64;
    let mut queries = Vec::with_capacity(count);
    while queries.len() < count {
        let s = rng.next_bounded(n) as usize;
        let (sx, sy) = coordinates[s];
        let t = rng.next_bounded(n) as usize;
        let (tx, ty) = coordinates[t];
        let dist2 = (sx - tx) * (sx - tx) + (sy - ty) * (sy - ty);
        if s != t && (2.0..=36.0).contains(&dist2) {
            queries.push(KspQuery::new(VertexId(s as u32), VertexId(t as u32), 2));
        }
    }
    QueryWorkload { queries }
}

/// Batches that each dirty exactly one subgraph, cycling through distinct
/// subgraphs so successive publishes hit different parts of the index — the
/// paper's "maintenance proportional to what changed" regime.
fn small_batches(graph: &DynamicGraph, service: &QueryService, count: usize) -> Vec<UpdateBatch> {
    let index = service.snapshot().index().clone();
    let num_subgraphs = index.num_subgraphs();
    (0..count)
        .map(|i| {
            let target = SubgraphId((i % num_subgraphs) as u32);
            let updates: Vec<WeightUpdate> = graph
                .edge_ids()
                .filter(|&e| index.owner_of_edge(e) == target)
                .take(4)
                .enumerate()
                .map(|(j, e)| {
                    let factor = 0.6 + 0.2 * ((i + j) % 7) as f64;
                    WeightUpdate::new(e, Weight::new(graph.initial_weight(e) as f64 * factor))
                })
                .collect();
            UpdateBatch::new(updates)
        })
        .filter(|b| !b.is_empty())
        .collect()
}

fn bench_cache_survival(c: &mut Criterion) {
    let net = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(900))
        .generate(0xCAC4E)
        .expect("network generation");
    let workload = local_workload(&net.coordinates, 48, 0xFEED);
    let graph = net.graph;

    let mut group = c.benchmark_group("cache_survival");
    group.sample_size(10);

    let mut summaries: Vec<String> = Vec::new();
    for (name, survival) in [("dirty_set_retention", true), ("wholesale_clear", false)] {
        let mut config = ServiceConfig::new(2, DtlpConfig::new(40, 2));
        config.cache_survival = survival;
        let service = QueryService::start(graph.clone(), config).expect("service start");
        let batches = small_batches(&graph, &service, 64);
        assert!(!batches.is_empty());
        // Warm the cache once so the first measured iteration starts from the
        // same state as every later one: a full cache hit by a publish.
        for q in workload.iter() {
            service.query(q.source, q.target, q.k).expect("warm query");
        }
        let round = AtomicUsize::new(0);
        group.bench_function(name, |b| {
            b.iter(|| {
                // One small epoch publish, then several passes over the query
                // workload: the serving steady state of churn + repeat
                // traffic (each query repeats ~PASSES times per epoch).
                const PASSES: usize = 12;
                let i = round.fetch_add(1, Ordering::Relaxed);
                service.apply_batch(&batches[i % batches.len()]).expect("publish");
                for _ in 0..PASSES {
                    for q in workload.iter() {
                        std::hint::black_box(
                            service.query(q.source, q.target, q.k).expect("query"),
                        );
                    }
                }
            });
        });
        let m = service.metrics();
        summaries.push(format!(
            "cache_survival/{name}: hit_rate {:.3}, p50 {:.3} ms, p95 {:.3} ms, \
             recomputes/epoch {:.1}, retained {}, evicted {}, epochs {}",
            m.cache_hit_rate(),
            m.p50.as_secs_f64() * 1e3,
            m.p95.as_secs_f64() * 1e3,
            m.cache_misses as f64 / m.epochs_published.max(1) as f64,
            m.cache_retained,
            m.cache_evicted,
            m.epochs_published,
        ));
    }
    group.finish();
    for line in &summaries {
        eprintln!("{line}");
    }
}

criterion_group!(benches, bench_cache_survival);
criterion_main!(benches);
