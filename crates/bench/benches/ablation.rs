//! Criterion bench: ablation of the storage backend (EP-Index vs MFP-tree) and of the
//! cross-iteration partial-path cache.

use criterion::{criterion_group, criterion_main, Criterion};
use ksp_core::dtlp::{DtlpConfig, DtlpIndex};
use ksp_core::kspdg::{KspDgConfig, KspDgEngine};
use ksp_workload::{
    QueryWorkload, QueryWorkloadConfig, RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig,
    TrafficModel,
};

fn bench_ablation(c: &mut Criterion) {
    let net = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(600))
        .generate(0xAB1A)
        .expect("network generation");
    let graph = net.graph;
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.5, 0.5), 3);
    let batch = traffic.next_snapshot();

    let mut group = c.benchmark_group("backend_maintenance");
    group.sample_size(10);
    for (name, cfg) in [
        ("ep_index", DtlpConfig::new(40, 3)),
        ("mfp_tree", DtlpConfig::new(40, 3).with_mfp_backend()),
    ] {
        let index = DtlpIndex::build(&graph, cfg).expect("build");
        group.bench_function(name, |b| {
            b.iter_batched(
                || index.clone(),
                |mut index| index.apply_batch(&batch).expect("maintenance"),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();

    let mut group = c.benchmark_group("partial_path_cache");
    group.sample_size(10);
    let index = DtlpIndex::build(&graph, DtlpConfig::new(40, 2)).expect("build");
    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(8, 6), 0xAB);
    for (name, cache) in [("enabled", true), ("disabled", false)] {
        group.bench_function(name, |b| {
            let engine = KspDgEngine::with_config(
                &index,
                KspDgConfig { cache_partials: cache, ..Default::default() },
            );
            b.iter(|| {
                for q in workload.iter() {
                    std::hint::black_box(engine.query(q.source, q.target, q.k));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
