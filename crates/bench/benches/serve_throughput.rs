//! Criterion bench: the serving subsystem's hot paths — cache-hit vs engine
//! queries through the service, epoch publish cost, and a short closed-loop
//! burst with concurrent traffic epochs.

use criterion::{criterion_group, criterion_main, Criterion};
use ksp_core::dtlp::DtlpConfig;
use ksp_serve::{run_closed_loop, LoadDriverConfig, QueryService, ServiceConfig};
use ksp_workload::{
    QueryWorkload, QueryWorkloadConfig, RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig,
    TrafficModel,
};
use std::time::Duration;

fn bench_serve(c: &mut Criterion) {
    let net = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(600))
        .generate(0x5EE0)
        .expect("network generation");
    let graph = net.graph;
    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(32, 2), 0x5E);

    let mut group = c.benchmark_group("serve_query_path");
    group.sample_size(10);
    let service = QueryService::start(graph.clone(), ServiceConfig::new(2, DtlpConfig::new(40, 2)))
        .expect("service start");
    group.bench_function("cold_miss_per_epoch", |b| {
        // Publishing before each sample clears the cache, so every query in the
        // sample runs the engine exactly once per (query, epoch).
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.3, 0.3), 1);
        b.iter(|| {
            service.apply_batch(&traffic.next_snapshot()).expect("publish");
            for q in workload.iter() {
                std::hint::black_box(service.query(q.source, q.target, q.k).expect("query"));
            }
        });
    });
    group.bench_function("cache_hit", |b| {
        // Warm once, then every iteration is answered from the result cache.
        for q in workload.iter() {
            service.query(q.source, q.target, q.k).expect("warm-up query");
        }
        b.iter(|| {
            for q in workload.iter() {
                std::hint::black_box(service.query(q.source, q.target, q.k).expect("query"));
            }
        });
    });
    group.finish();

    let mut group = c.benchmark_group("serve_epoch_publish");
    group.sample_size(10);
    group.bench_function("apply_batch_and_publish", |b| {
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 7);
        b.iter(|| service.apply_batch(&traffic.next_snapshot()).expect("publish"));
    });
    group.finish();
    drop(service);

    let mut group = c.benchmark_group("serve_closed_loop");
    group.sample_size(10);
    for shards in [1usize, 4] {
        group.bench_function(format!("shards_{shards}"), |b| {
            let service = QueryService::start(
                graph.clone(),
                ServiceConfig::new(shards, DtlpConfig::new(40, 2)),
            )
            .expect("service start");
            let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 11);
            // Keep total work constant across shard counts so the rows compare.
            let clients = shards * 2;
            let requests_per_client = 64 / clients;
            b.iter(|| {
                let report = run_closed_loop(
                    &service,
                    &workload,
                    Some(&mut traffic),
                    LoadDriverConfig::new(clients, requests_per_client)
                        .with_updates_every(Duration::from_millis(10)),
                );
                std::hint::black_box(report);
            });
        });
    }
    group.finish();

    // The observability overhead arms: the same closed loop with obs fully
    // off (the baseline a latency-sensitive deployment would run), at the
    // default config (spans + flight ring, no SLO triggers), and with an
    // unmeetable SLO so every request also takes the breach-dump path. The
    // acceptance bar is <3% qps regression for `disabled` vs `default`
    // obs-off cost, and <10% with everything firing.
    let mut group = c.benchmark_group("serve_obs_overhead");
    group.sample_size(10);
    type ConfigureArm = fn(&mut ServiceConfig);
    let arms: [(&str, ConfigureArm); 3] = [
        ("disabled", |config| config.observability = ksp_obs::ObsConfig::disabled()),
        ("default", |_| {}),
        ("slo_storm", |config| config.observability.slo_p99 = Duration::from_nanos(1)),
    ];
    for (name, configure) in arms {
        group.bench_function(name, |b| {
            let mut config = ServiceConfig::new(4, DtlpConfig::new(40, 2));
            configure(&mut config);
            let service = QueryService::start(graph.clone(), config).expect("service start");
            let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 13);
            b.iter(|| {
                let report = run_closed_loop(
                    &service,
                    &workload,
                    Some(&mut traffic),
                    LoadDriverConfig::new(8, 8).with_updates_every(Duration::from_millis(10)),
                );
                std::hint::black_box(report);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
