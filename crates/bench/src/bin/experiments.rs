//! Command-line entry point for regenerating every table and figure of the paper.
//!
//! ```text
//! experiments list                      # show the catalogue
//! experiments all [--scale small]      # run everything
//! experiments fig39 [--scale medium]   # run one experiment
//! experiments table1 fig40 --csv       # run several, emit CSV instead of tables
//! experiments --verify-store <dir>     # operator check: recompute store CRCs
//! ```

use ksp_bench::experiments::{catalogue, run};
use ksp_bench::Scale;

fn print_usage() {
    eprintln!(
        "usage: experiments <list|all|ID...> [--scale tiny|small|medium] [--csv]\n       experiments --verify-store <dir>"
    );
    eprintln!("known experiment ids:");
    for (id, description) in catalogue() {
        eprintln!("  {id:<10} {description}");
    }
}

/// Operator integrity check: recompute every CRC in a store directory and
/// report torn or corrupt files. Exits non-zero when the store cannot recover.
fn verify_store(dir: &str) -> ! {
    match ksp_store::Store::verify(std::path::Path::new(dir)) {
        Ok(report) => {
            print!("{}", report.render());
            std::process::exit(if report.recoverable { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("verify failed: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    let mut scale = Scale::from_env(Scale::Small);
    let mut csv = false;
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter.next().unwrap_or_default();
                match Scale::parse(&value) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale '{value}' (expected tiny, small or medium)");
                        std::process::exit(2);
                    }
                }
            }
            "--csv" => csv = true,
            "--verify-store" => {
                let Some(dir) = iter.next() else {
                    eprintln!("--verify-store needs a store directory");
                    std::process::exit(2);
                };
                verify_store(&dir);
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => ids.push(other.to_string()),
        }
    }

    if ids.iter().any(|i| i == "list") {
        for (id, description) in catalogue() {
            println!("{id:<10} {description}");
        }
        return;
    }
    if ids.iter().any(|i| i == "all") {
        ids = catalogue().into_iter().map(|(id, _)| id.to_string()).collect();
    }
    if ids.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    println!("# KSP-DG experiment harness (scale: {scale})");
    let started = std::time::Instant::now();
    for id in &ids {
        match run(id, scale) {
            Some(tables) => {
                for table in tables {
                    if csv {
                        println!("{}", table.to_csv());
                    } else {
                        table.print();
                    }
                }
            }
            None => {
                eprintln!("unknown experiment id '{id}' (use 'list' to see the catalogue)");
                std::process::exit(2);
            }
        }
    }
    println!("# completed {} experiment(s) in {:.1}s", ids.len(), started.elapsed().as_secs_f64());
}
