//! Chaos experiment: what deterministic fault injection costs and proves.
//!
//! Three tables. First, a seeded crash/recover campaign: every cycle arms
//! one live WAL-append fault (write error, `ENOSPC` or a short write, chosen
//! by the plan's own generator), rides out the degraded window, "crashes"
//! the service and recovers — ending byte-identical to a fault-free
//! in-memory control fed the same batches. Second, one observable degraded
//! episode on an fsync-on-commit store: a persistent injected fsync failure
//! flips the `ksp_degraded` gauge to 1 while reads keep serving; healing the
//! plan lets the background probe lift it without a restart. Third, the
//! injection accounting — `ksp_fault_injected_total` per fault point plus
//! the plan fingerprint two same-seed runs must reproduce. The CI smoke run
//! greps this output for the `ksp_degraded` and `ksp_fault_injected_total`
//! families.

use crate::report::Table;
use crate::Scale;
use ksp_core::dtlp::DtlpConfig;
use ksp_fault::{FaultAction, FaultPlan, FaultPoint, Schedule};
use ksp_graph::UpdateBatch;
use ksp_serve::{PublishError, QueryService, ServiceConfig};
use ksp_store::{FaultyIo, StorageIo, StoreCodec, StoreConfig, SyncPolicy};
use ksp_workload::{DatasetPreset, TrafficConfig, TrafficModel};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ksp-chaos-exp-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Applies `batch`, retrying through the read-only degraded window a faulted
/// append opens (the background probe repairs the log within milliseconds).
fn apply_riding_out_degradation(service: &QueryService, batch: &UpdateBatch) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match service.apply_batch(batch) {
            Ok(epoch) => return epoch,
            Err(PublishError::Degraded(_)) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("chaos experiment append failed: {e}"),
        }
    }
}

/// The value of the first sample named `family` in a Prometheus exposition.
fn sample(text: &str, family: &str) -> String {
    text.lines()
        .find_map(|line| line.strip_prefix(family).and_then(|rest| rest.strip_prefix(' ')))
        .unwrap_or("absent")
        .to_string()
}

/// Deterministic fault injection: crash/recover cycles, a degraded episode,
/// and the injection accounting.
pub fn chaos(scale: Scale) -> Vec<Table> {
    let spec = DatasetPreset::NewYork.spec(scale.dataset_scale());
    let net = spec.generate().expect("dataset generation");
    let graph = net.graph;
    let sconfig = ServiceConfig::new(2, DtlpConfig::new(spec.default_z, 2));
    const CYCLES: usize = 5;

    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.5, 0.5), 0xC4A05);
    let batches: Vec<UpdateBatch> = (0..CYCLES).map(|_| traffic.next_snapshot()).collect();

    // Fault-free control: the state every recovery must reproduce.
    let control = QueryService::start(graph.clone(), sconfig).expect("control start");
    for batch in &batches {
        control.apply_batch(batch).expect("control publish");
    }

    // --- Table 1: the crash/recover campaign -----------------------------
    let plan = FaultPlan::new(0xC405);
    let io: Arc<dyn StorageIo> = Arc::new(FaultyIo::new(plan.clone()));
    let store_dir = scratch_dir("cycles");
    let st = StoreConfig { checkpoint_interval: 0, sync: SyncPolicy::Never, ..Default::default() };
    let mut cycles = Table::new(
        format!(
            "chaos: seeded fault/crash/recover cycles ({}, {} vertices, seed 0xC405)",
            spec.preset.short_name(),
            graph.num_vertices()
        ),
        &["cycle", "armed_fault", "recovered_epoch", "published_epoch", "injected_total"],
    );
    let mut final_state: Option<(u64, bool)> = None;
    for (cycle, batch) in batches.iter().enumerate() {
        let service = if cycle == 0 {
            QueryService::start_with_store_io(graph.clone(), sconfig, &store_dir, st, io.clone())
                .expect("chaos start")
        } else {
            QueryService::open_with_io(&store_dir, sconfig, st, io.clone()).expect("recover").0
        };
        let recovered_epoch = service.snapshot().epoch();
        let action = match plan.draw() % 3 {
            0 => FaultAction::Fail,
            1 => FaultAction::Enospc,
            _ => FaultAction::ShortWrite { keep: (plan.draw() % 8) as usize },
        };
        plan.arm(
            FaultPoint::WalWrite,
            Schedule::Nth(plan.ops_at(FaultPoint::WalWrite) + 1),
            action,
        );
        let published = apply_riding_out_degradation(&service, batch);
        cycles.row(vec![
            cycle.to_string(),
            action.label().to_string(),
            recovered_epoch.to_string(),
            published.to_string(),
            plan.injected_total().to_string(),
        ]);
        if cycle + 1 == CYCLES {
            let (a, b) = (service.snapshot(), control.snapshot());
            final_state = Some((
                published,
                a.graph().to_bytes() == b.graph().to_bytes()
                    && a.index().to_bytes() == b.index().to_bytes(),
            ));
        }
        drop(service); // the crash
    }
    let (final_epoch, identical) = final_state.expect("cycles ran");
    cycles.row(vec![
        "final".to_string(),
        format!("byte_identical_to_control={identical}"),
        final_epoch.to_string(),
        final_epoch.to_string(),
        plan.injected_total().to_string(),
    ]);

    // --- Table 2: one observable degraded episode ------------------------
    // fsync on every append so the injected fsync failure sits on the commit
    // path; the probe then fails against the same armed plan until healed.
    let episode_dir = scratch_dir("episode");
    let episode_plan = FaultPlan::new(0xD16);
    let episode_io: Arc<dyn StorageIo> = Arc::new(FaultyIo::new(episode_plan.clone()));
    let st_sync =
        StoreConfig { checkpoint_interval: 0, sync: SyncPolicy::Always, ..Default::default() };
    let service = QueryService::start_with_store_io(
        graph.clone(),
        sconfig,
        &episode_dir,
        st_sync,
        episode_io,
    )
    .expect("episode start");
    let mut episode = Table::new(
        "chaos: degraded episode (persistent injected fsync failure, then heal)",
        &["phase", "ksp_degraded", "entered_total", "recovered_total", "write_outcome"],
    );
    let mut episode_row = |phase: &str, outcome: &str| {
        let text = service.render_exposition();
        episode.row(vec![
            phase.to_string(),
            sample(&text, "ksp_degraded"),
            sample(&text, "ksp_degraded_entered_total"),
            sample(&text, "ksp_degraded_recovered_total"),
            outcome.to_string(),
        ]);
    };
    let healthy_epoch = service.apply_batch(&traffic.next_snapshot()).expect("healthy publish");
    episode_row("healthy", &format!("published epoch {healthy_epoch}"));

    episode_plan.arm(
        FaultPoint::WalFsync,
        Schedule::From(episode_plan.ops_at(FaultPoint::WalFsync) + 1),
        FaultAction::Fail,
    );
    let stuck = traffic.next_snapshot();
    let refused = match service.apply_batch(&stuck) {
        Err(PublishError::Degraded(_)) => "typed Degraded (read-only)",
        Ok(_) => "unexpectedly accepted",
        Err(_) => "wrong error type",
    };
    episode_row("degraded", refused);

    episode_plan.disarm(FaultPoint::WalFsync);
    let deadline = Instant::now() + Duration::from_secs(30);
    while service.is_degraded() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let landed = service.apply_batch(&stuck).expect("post-heal publish");
    episode_row("recovered", &format!("published epoch {landed}"));
    drop(service);

    // --- Table 3: injection accounting -----------------------------------
    let mut counters = Table::new(
        "chaos: fault injection counters (deterministic: same seed, same log)",
        &["series", "value"],
    );
    for (label, plan) in [("cycles", &plan), ("episode", &episode_plan)] {
        for point in FaultPoint::ALL {
            let injected = plan.injected_at(point);
            if injected > 0 {
                counters.row(vec![
                    format!("ksp_fault_injected_total{{run=\"{label}\",point=\"{point}\"}}"),
                    injected.to_string(),
                ]);
            }
        }
        counters.row(vec![
            format!("ksp_fault_injected_total{{run=\"{label}\"}}"),
            plan.injected_total().to_string(),
        ]);
        counters.row(vec![
            format!("ksp_fault_plan_fingerprint{{run=\"{label}\"}}"),
            format!("{:#018x}", plan.fingerprint()),
        ]);
    }

    let _ = std::fs::remove_dir_all(&store_dir);
    let _ = std::fs::remove_dir_all(&episode_dir);
    vec![cycles, episode, counters]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_recovers_degrades_and_accounts() {
        let tables = chaos(Scale::Tiny);
        assert_eq!(tables.len(), 3);
        let cycles = tables[0].render();
        assert!(cycles.contains("byte_identical_to_control=true"), "{cycles}");
        let episode = tables[1].render();
        assert!(episode.contains("typed Degraded (read-only)"), "{episode}");
        assert!(episode.contains("recovered"), "{episode}");
        let counters = tables[2].render();
        assert!(counters.contains("ksp_fault_injected_total"), "{counters}");
        assert!(counters.contains("ksp_fault_plan_fingerprint"), "{counters}");
    }
}
