//! One experiment per table/figure of the paper's evaluation (Section 6).
//!
//! Each function builds its inputs deterministically from the dataset presets, runs
//! the relevant operations, and returns a [`crate::report::Table`] with the same
//! rows/series the paper reports. The `experiments` binary prints them; integration
//! tests run the tiny-scale versions as smoke tests.

pub mod ablation;
pub mod baselines;
pub mod chaos;
pub mod dtlp;
pub mod kspdg;
pub mod obs;
pub mod persistence;
pub mod repl;
pub mod scaling;
pub mod serve;

use crate::report::Table;
use crate::Scale;

/// The full catalogue of experiments, keyed by the identifier used on the command line
/// and in `DESIGN.md` / `EXPERIMENTS.md`.
pub fn catalogue() -> Vec<(&'static str, &'static str)> {
    vec![
        ("table1", "Table 1: dataset statistics and partitioning"),
        ("table3", "Table 3: skeleton-graph size vs z"),
        ("fig15_18", "Figures 15-18: DTLP construction cost vs z (all datasets)"),
        ("fig19", "Figure 19: DTLP maintenance cost, directed vs undirected"),
        ("fig20", "Figure 20: build and maintenance time vs graph size"),
        ("fig21", "Figure 21: update throughput and latency vs graph size"),
        ("fig22", "Figure 22: maintenance time vs xi"),
        ("fig23", "Figure 23: maintenance time vs alpha"),
        ("fig24", "Figure 24: iterations vs xi"),
        ("fig25", "Figure 25: iterations vs tau"),
        ("fig26", "Figure 26: iterations vs k"),
        ("fig27", "Figure 27: iterations vs alpha"),
        ("fig28_31", "Figures 28-31: query processing time vs z and k (all datasets)"),
        ("fig32", "Figure 32: processing time vs number of queries"),
        ("fig33", "Figure 33: processing time vs xi"),
        ("fig34", "Figure 34: processing time vs tau"),
        ("fig35_38", "Figures 35-38: KSP-DG vs FindKSP vs Yen, scaling with Nq"),
        ("fig39", "Figure 39: KSP-DG vs FindKSP vs Yen, scaling with k"),
        ("fig40", "Figure 40: KSP-DG vs CANDS, query processing (k=1)"),
        ("fig41", "Figure 41: KSP-DG vs CANDS, index maintenance"),
        ("fig42", "Figure 42: DTLP building time vs number of servers"),
        ("fig43", "Figure 43: query processing time vs number of servers"),
        ("fig44", "Figure 44: processing time vs servers for several k"),
        ("fig45", "Figure 45: scalability comparison vs servers"),
        ("fig46", "Figure 46: relative speedups vs servers"),
        ("loadbal", "Section 6.6: per-server CPU/memory load balance"),
        ("ablation", "Ablation: vfrags, xi, MFP-tree backend, partial-path cache"),
        ("serve", "Serving: closed-loop throughput/latency vs shards with live epochs"),
        ("serve_tcp", "Serving: in-proc vs TCP transport, protocol wire-byte cost"),
        ("persistence", "Storage: cold-start-from-checkpoint vs full rebuild, store verify"),
        ("obs", "Observability: per-stage latency decomposition, interval counters, scrape"),
        ("repl", "Replication: log shipping, snapshot fallback, warm failover vs cold recovery"),
        ("chaos", "Robustness: seeded fault injection, degraded mode, crash/recover byte identity"),
    ]
}

/// Runs one experiment by id. Returns the tables it produced.
pub fn run(id: &str, scale: Scale) -> Option<Vec<Table>> {
    let tables = match id {
        "table1" => dtlp::table1(scale),
        "table3" => dtlp::table3(scale),
        "fig15_18" => dtlp::fig15_18(scale),
        "fig19" => dtlp::fig19(scale),
        "fig20" => dtlp::fig20(scale),
        "fig21" => dtlp::fig21(scale),
        "fig22" => dtlp::fig22(scale),
        "fig23" => dtlp::fig23(scale),
        "fig24" => kspdg::fig24(scale),
        "fig25" => kspdg::fig25(scale),
        "fig26" => kspdg::fig26(scale),
        "fig27" => kspdg::fig27(scale),
        "fig28_31" => kspdg::fig28_31(scale),
        "fig32" => kspdg::fig32(scale),
        "fig33" => kspdg::fig33(scale),
        "fig34" => kspdg::fig34(scale),
        "fig35_38" => baselines::fig35_38(scale),
        "fig39" => baselines::fig39(scale),
        "fig40" => baselines::fig40(scale),
        "fig41" => baselines::fig41(scale),
        "fig42" => scaling::fig42(scale),
        "fig43" => scaling::fig43(scale),
        "fig44" => scaling::fig44(scale),
        "fig45" => scaling::fig45(scale),
        "fig46" => scaling::fig46(scale),
        "loadbal" => scaling::load_balance(scale),
        "ablation" => ablation::run(scale),
        "serve" => serve::serve_throughput(scale),
        "serve_tcp" => serve::serve_tcp(scale),
        "persistence" => persistence::persistence(scale),
        "obs" => obs::observability(scale),
        "repl" => repl::repl(scale),
        "chaos" => chaos::chaos(scale),
        _ => return None,
    };
    Some(tables)
}

/// Datasets included at a given scale. CUSA is excluded from the tiny scale to keep the
/// smoke tests fast; every other experiment keeps the full four-dataset sweep.
pub fn datasets_for(scale: Scale) -> Vec<ksp_workload::DatasetPreset> {
    use ksp_workload::DatasetPreset::*;
    match scale {
        Scale::Tiny => vec![NewYork, Colorado],
        _ => vec![NewYork, Colorado, Florida, CentralUsa],
    }
}
