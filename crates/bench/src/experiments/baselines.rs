//! Comparison with the baseline algorithms (Figures 35–41).

use crate::experiments::datasets_for;
use crate::report::{ms, Table};
use crate::Scale;
use ksp_algo::{find_ksp, yen_ksp};
use ksp_cands::CandsIndex;
use ksp_cluster::cluster::{Cluster, ClusterConfig, QuerySpec};
use ksp_core::dtlp::{DtlpConfig, DtlpIndex};
use ksp_workload::{
    DatasetPreset, QueryWorkload, QueryWorkloadConfig, TrafficConfig, TrafficModel,
};
use std::time::{Duration, Instant};

const DEFAULT_SERVERS: usize = 10;

fn query_specs(workload: &QueryWorkload) -> Vec<QuerySpec> {
    workload.iter().map(|q| QuerySpec { source: q.source, target: q.target, k: q.k }).collect()
}

/// Runs the centralized baselines (Yen and FindKSP) over a workload and returns the
/// elapsed wall-clock time of each.
fn run_centralized(
    graph: &ksp_graph::DynamicGraph,
    workload: &QueryWorkload,
) -> (Duration, Duration) {
    let t0 = Instant::now();
    for q in workload.iter() {
        let _ = find_ksp(graph, q.source, q.target, q.k);
    }
    let findksp = t0.elapsed();
    let t1 = Instant::now();
    for q in workload.iter() {
        let _ = yen_ksp(graph, q.source, q.target, q.k);
    }
    let yen = t1.elapsed();
    (findksp, yen)
}

/// Figures 35–38: KSP-DG vs FindKSP vs Yen, total processing time as the number of
/// concurrent queries grows, per dataset.
pub fn fig35_38(scale: Scale) -> Vec<Table> {
    let xi = match scale {
        Scale::Tiny => 2,
        _ => 10,
    };
    let mut table = Table::new(
        "Figures 35-38: KSP-DG vs FindKSP vs Yen, processing time vs Nq (k=2)",
        &["dataset", "Nq", "KSP-DG (ms)", "FindKSP (ms)", "Yen (ms)"],
    );
    for preset in datasets_for(scale) {
        let spec = preset.spec(scale.dataset_scale());
        let net = spec.generate().expect("dataset generation");
        let (cluster, _) = Cluster::build(
            &net.graph,
            ClusterConfig::new(DEFAULT_SERVERS, DtlpConfig::new(spec.default_z, xi)),
        )
        .expect("cluster build");
        let max_nq = *scale.nq_sweep().last().unwrap();
        let full = QueryWorkload::generate(&net.graph, QueryWorkloadConfig::new(max_nq, 2), 0x35);
        for nq in scale.nq_sweep() {
            let workload = full.prefix(nq);
            let report = cluster.process_queries(&query_specs(&workload));
            let (findksp, yen) = run_centralized(&net.graph, &workload);
            table.row(vec![
                preset.short_name().to_string(),
                nq.to_string(),
                ms(report.wall_clock),
                ms(findksp),
                ms(yen),
            ]);
        }
    }
    vec![table]
}

/// Figure 39: the three algorithms as k grows (FLA in the paper; the largest dataset at
/// this scale here).
pub fn fig39(scale: Scale) -> Vec<Table> {
    let ks: Vec<usize> = match scale {
        Scale::Tiny => vec![2, 4, 6],
        _ => vec![2, 4, 8, 12, 16, 20],
    };
    let nq = match scale {
        Scale::Tiny => 15,
        _ => 100,
    };
    let xi = match scale {
        Scale::Tiny => 2,
        _ => 10,
    };
    let preset = match scale {
        Scale::Tiny => DatasetPreset::Colorado,
        _ => DatasetPreset::Florida,
    };
    let spec = preset.spec(scale.dataset_scale());
    let net = spec.generate().expect("dataset generation");
    let (cluster, _) = Cluster::build(
        &net.graph,
        ClusterConfig::new(DEFAULT_SERVERS, DtlpConfig::new(spec.default_z, xi)),
    )
    .expect("cluster build");
    let workload = QueryWorkload::generate(&net.graph, QueryWorkloadConfig::new(nq, 2), 0x39);
    let mut table = Table::new(
        format!("Figure 39: processing time vs k ({}, Nq={nq})", preset.short_name()),
        &["k", "KSP-DG (ms)", "FindKSP (ms)", "Yen (ms)"],
    );
    for &k in &ks {
        let wk = workload.with_k(k);
        let report = cluster.process_queries(&query_specs(&wk));
        let (findksp, yen) = run_centralized(&net.graph, &wk);
        table.row(vec![k.to_string(), ms(report.wall_clock), ms(findksp), ms(yen)]);
    }
    vec![table]
}

/// Figure 40: KSP-DG vs CANDS on single-shortest-path (k = 1) query batches.
pub fn fig40(scale: Scale) -> Vec<Table> {
    let nq = match scale {
        Scale::Tiny => 40,
        _ => 500,
    };
    let xi = match scale {
        Scale::Tiny => 2,
        _ => 10,
    };
    let mut table = Table::new(
        format!("Figure 40: KSP-DG vs CANDS, {nq} single-shortest-path queries"),
        &["dataset", "KSP-DG (ms)", "CANDS (ms)"],
    );
    for preset in datasets_for(scale) {
        if preset == DatasetPreset::CentralUsa {
            continue; // the paper's Figures 40-41 cover NY, COL and FLA
        }
        let spec = preset.spec(scale.dataset_scale());
        let net = spec.generate().expect("dataset generation");
        let (cluster, _) = Cluster::build(
            &net.graph,
            ClusterConfig::new(DEFAULT_SERVERS, DtlpConfig::new(spec.default_z, xi)),
        )
        .expect("cluster build");
        let cands = CandsIndex::build(&net.graph, spec.default_z).expect("CANDS build");
        let workload = QueryWorkload::generate(&net.graph, QueryWorkloadConfig::new(nq, 1), 0x40);

        let report = cluster.process_queries(&query_specs(&workload));
        let t0 = Instant::now();
        for q in workload.iter() {
            let _ = cands.shortest_path(q.source, q.target);
        }
        let cands_time = t0.elapsed();
        table.row(vec![preset.short_name().to_string(), ms(report.wall_clock), ms(cands_time)]);
    }
    vec![table]
}

/// Figure 41: index maintenance cost of KSP-DG (DTLP) vs CANDS under the same update
/// stream (α = 50 %, τ = 50 %).
pub fn fig41(scale: Scale) -> Vec<Table> {
    let xi = match scale {
        Scale::Tiny => 2,
        _ => 10,
    };
    let mut table = Table::new(
        "Figure 41: index maintenance time, DTLP vs CANDS (alpha=50%, tau=50%)",
        &["dataset", "updates", "DTLP (ms)", "CANDS (ms)"],
    );
    for preset in datasets_for(scale) {
        if preset == DatasetPreset::CentralUsa {
            continue;
        }
        let spec = preset.spec(scale.dataset_scale());
        let net = spec.generate().expect("dataset generation");
        let mut dtlp =
            DtlpIndex::build(&net.graph, DtlpConfig::new(spec.default_z, xi)).expect("build");
        let mut cands = CandsIndex::build(&net.graph, spec.default_z).expect("CANDS build");
        let mut traffic = TrafficModel::new(&net.graph, TrafficConfig::new(0.5, 0.5), 0x41);
        let batch = traffic.next_snapshot();

        let t0 = Instant::now();
        dtlp.apply_batch(&batch).expect("DTLP maintenance");
        let dtlp_time = t0.elapsed();
        let t1 = Instant::now();
        cands.apply_batch(&batch).expect("CANDS maintenance");
        let cands_time = t1.elapsed();
        table.row(vec![
            preset.short_name().to_string(),
            batch.len().to_string(),
            ms(dtlp_time),
            ms(cands_time),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig41_reports_both_systems() {
        let tables = fig41(Scale::Tiny);
        assert_eq!(tables.len(), 1);
        assert!(tables[0].num_rows() >= 1);
        assert!(tables[0].render().contains("CANDS"));
    }
}
