//! Scaling-out experiments (Figures 42–46) and the load-balance report of Section 6.6.

use crate::report::{f2, ms, Table};
use crate::Scale;
use ksp_algo::{find_ksp, yen_ksp};
use ksp_cluster::cluster::{Cluster, ClusterConfig, QuerySpec};
use ksp_core::dtlp::DtlpConfig;
use ksp_workload::{DatasetPreset, QueryWorkload, QueryWorkloadConfig};
use std::time::{Duration, Instant};

fn query_specs(workload: &QueryWorkload) -> Vec<QuerySpec> {
    workload.iter().map(|q| QuerySpec { source: q.source, target: q.target, k: q.k }).collect()
}

fn scaling_datasets(scale: Scale) -> Vec<DatasetPreset> {
    match scale {
        Scale::Tiny => vec![DatasetPreset::NewYork],
        _ => vec![DatasetPreset::NewYork, DatasetPreset::Colorado, DatasetPreset::Florida],
    }
}

fn xi_for(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 2,
        _ => 5,
    }
}

/// Figure 42: DTLP build time as the number of servers grows.
pub fn fig42(scale: Scale) -> Vec<Table> {
    let mut table = Table::new(
        "Figure 42: DTLP building time vs number of servers",
        &["dataset", "servers", "wall clock (ms)", "simulated makespan (ms)"],
    );
    for preset in scaling_datasets(scale) {
        let spec = preset.spec(scale.dataset_scale());
        let net = spec.generate().expect("dataset generation");
        for servers in scale.server_sweep() {
            let (_, report) = Cluster::build(
                &net.graph,
                ClusterConfig::new(servers, DtlpConfig::new(spec.default_z, xi_for(scale))),
            )
            .expect("cluster build");
            table.row(vec![
                preset.short_name().to_string(),
                servers.to_string(),
                ms(report.wall_clock),
                ms(report.load_balance.simulated_makespan()),
            ]);
        }
    }
    vec![table]
}

/// Figure 43: query-batch processing time as the number of servers grows.
pub fn fig43(scale: Scale) -> Vec<Table> {
    let nq = scale.default_num_queries();
    let mut table = Table::new(
        format!("Figure 43: processing time of {nq} queries vs number of servers (k=2)"),
        &["dataset", "servers", "wall clock (ms)", "simulated makespan (ms)"],
    );
    for preset in scaling_datasets(scale) {
        let spec = preset.spec(scale.dataset_scale());
        let net = spec.generate().expect("dataset generation");
        let workload = QueryWorkload::generate(&net.graph, QueryWorkloadConfig::new(nq, 2), 0x43);
        for servers in scale.server_sweep() {
            let (cluster, _) = Cluster::build(
                &net.graph,
                ClusterConfig::new(servers, DtlpConfig::new(spec.default_z, xi_for(scale))),
            )
            .expect("cluster build");
            let report = cluster.process_queries(&query_specs(&workload));
            table.row(vec![
                preset.short_name().to_string(),
                servers.to_string(),
                ms(report.wall_clock),
                ms(report.simulated_makespan()),
            ]);
        }
    }
    vec![table]
}

/// Figure 44: processing time vs servers for several values of k (NY).
pub fn fig44(scale: Scale) -> Vec<Table> {
    let ks: Vec<usize> = match scale {
        Scale::Tiny => vec![2, 4],
        _ => vec![2, 4, 6, 8, 10],
    };
    let nq = scale.default_num_queries();
    let preset = DatasetPreset::NewYork;
    let spec = preset.spec(scale.dataset_scale());
    let net = spec.generate().expect("dataset generation");
    let workload = QueryWorkload::generate(&net.graph, QueryWorkloadConfig::new(nq, 2), 0x44);
    let mut table = Table::new(
        format!("Figure 44: processing time vs servers for several k (NY, Nq={nq})"),
        &["servers", "k", "simulated makespan (ms)"],
    );
    for servers in scale.server_sweep() {
        let (cluster, _) = Cluster::build(
            &net.graph,
            ClusterConfig::new(servers, DtlpConfig::new(spec.default_z, xi_for(scale))),
        )
        .expect("cluster build");
        for &k in &ks {
            let report = cluster.process_queries(&query_specs(&workload.with_k(k)));
            table.row(vec![servers.to_string(), k.to_string(), ms(report.simulated_makespan())]);
        }
    }
    vec![table]
}

/// Figure 45: scalability comparison of KSP-DG, FindKSP and Yen as servers grow.
///
/// FindKSP and Yen are centralised; as in the paper they are "distributed" by running
/// on every server individually with the queries spread evenly, so their simulated
/// time is the centralised time divided by the number of servers.
pub fn fig45(scale: Scale) -> Vec<Table> {
    let nq = scale.default_num_queries();
    let preset = DatasetPreset::NewYork;
    let spec = preset.spec(scale.dataset_scale());
    let net = spec.generate().expect("dataset generation");
    let workload = QueryWorkload::generate(&net.graph, QueryWorkloadConfig::new(nq, 2), 0x45);

    // Centralised single-server times, reused for the divided estimate.
    let t0 = Instant::now();
    for q in workload.iter() {
        let _ = find_ksp(&net.graph, q.source, q.target, q.k);
    }
    let findksp_total = t0.elapsed();
    let t1 = Instant::now();
    for q in workload.iter() {
        let _ = yen_ksp(&net.graph, q.source, q.target, q.k);
    }
    let yen_total = t1.elapsed();

    let mut table = Table::new(
        format!("Figure 45: scalability comparison (NY, Nq={nq}, k=2)"),
        &["servers", "KSP-DG (ms)", "FindKSP (ms)", "Yen (ms)"],
    );
    for servers in scale.server_sweep() {
        let (cluster, _) = Cluster::build(
            &net.graph,
            ClusterConfig::new(servers, DtlpConfig::new(spec.default_z, xi_for(scale))),
        )
        .expect("cluster build");
        let report = cluster.process_queries(&query_specs(&workload));
        let divide = |d: Duration| Duration::from_secs_f64(d.as_secs_f64() / servers as f64);
        table.row(vec![
            servers.to_string(),
            ms(report.simulated_makespan()),
            ms(divide(findksp_total)),
            ms(divide(yen_total)),
        ]);
    }
    vec![table]
}

/// Figure 46: relative speedups (time on 2 servers divided by time on Ns servers).
pub fn fig46(scale: Scale) -> Vec<Table> {
    let nq = scale.default_num_queries();
    let preset = DatasetPreset::NewYork;
    let spec = preset.spec(scale.dataset_scale());
    let net = spec.generate().expect("dataset generation");
    let workload = QueryWorkload::generate(&net.graph, QueryWorkloadConfig::new(nq, 2), 0x46);

    let mut makespans = Vec::new();
    for servers in scale.server_sweep() {
        let (cluster, _) = Cluster::build(
            &net.graph,
            ClusterConfig::new(servers, DtlpConfig::new(spec.default_z, xi_for(scale))),
        )
        .expect("cluster build");
        let report = cluster.process_queries(&query_specs(&workload));
        makespans.push((servers, report.simulated_makespan()));
    }
    let baseline = makespans[0].1;
    let base_servers = makespans[0].0;
    let mut table = Table::new(
        format!("Figure 46: relative speedup of KSP-DG vs {base_servers} servers (NY, Nq={nq})"),
        &["servers", "simulated makespan (ms)", "relative speedup"],
    );
    for (servers, makespan) in makespans {
        let speedup = baseline.as_secs_f64() / makespan.as_secs_f64().max(1e-9);
        table.row(vec![servers.to_string(), ms(makespan), f2(speedup)]);
    }
    vec![table]
}

/// Section 6.6: per-server busy-time and memory spread across cluster sizes.
pub fn load_balance(scale: Scale) -> Vec<Table> {
    let nq = scale.default_num_queries();
    let preset = match scale {
        Scale::Tiny => DatasetPreset::Colorado,
        _ => DatasetPreset::CentralUsa,
    };
    let spec = preset.spec(scale.dataset_scale());
    let net = spec.generate().expect("dataset generation");
    let workload = QueryWorkload::generate(&net.graph, QueryWorkloadConfig::new(nq, 2), 0x66);
    let mut table = Table::new(
        format!("Section 6.6: load balance across servers ({})", preset.short_name()),
        &["servers", "busy spread (%)", "memory spread (%)"],
    );
    for servers in scale.server_sweep() {
        let (cluster, build) = Cluster::build(
            &net.graph,
            ClusterConfig::new(servers, DtlpConfig::new(spec.default_z, xi_for(scale))),
        )
        .expect("cluster build");
        let report = cluster.process_queries(&query_specs(&workload));
        let busy = report.load_balance.busy_spread * 100.0;
        let memory = build.load_balance.memory_spread * 100.0;
        table.row(vec![servers.to_string(), f2(busy), f2(memory)]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig46_speedups_are_positive() {
        let tables = fig46(Scale::Tiny);
        assert_eq!(tables.len(), 1);
        assert!(tables[0].num_rows() >= 3);
    }
}
