//! Observability experiment: drives a closed loop over a loopback TCP
//! endpoint, then answers the operator questions `ksp-obs` exists for —
//! *where inside the service does a query spend its time*, *what changed in
//! the last measurement interval*, and *what does a scraper see*.
//!
//! Three tables come out of one run:
//!
//! 1. the per-stage latency decomposition fetched over the wire with
//!    `ObsSnapshot` (the stage histograms telescope: their totals sum to the
//!    end-to-end total, so the `share` column is an exact attribution);
//! 2. interval counters computed with `MetricsReport::delta_since` against a
//!    mid-run baseline, next to the cumulative values a scraper would rate();
//! 3. a summary of the Prometheus text exposition scraped through
//!    `KspClient::scrape_text`, one row per metric family, plus the flight
//!    recorder's event tally.

use crate::report::{f2, Table};
use crate::Scale;
use ksp_core::dtlp::DtlpConfig;
use ksp_obs::{EventKind, HistogramSnapshot, PublishStage, Stage};
use ksp_proto::KspClient;
use ksp_serve::{run_closed_loop_over, LoadDriverConfig, QueryService, ServiceConfig, TcpServer};
use ksp_workload::{
    DatasetPreset, QueryWorkload, QueryWorkloadConfig, TrafficConfig, TrafficModel,
};
use std::sync::Arc;
use std::time::Duration;

/// Per-stage latency decomposition, interval counters and exposition scrape
/// of one closed-loop run over TCP.
pub fn observability(scale: Scale) -> Vec<Table> {
    let spec = DatasetPreset::NewYork.spec(scale.dataset_scale());
    let net = spec.generate().expect("dataset generation");
    let graph = net.graph;
    let workload = QueryWorkload::generate(
        &graph,
        QueryWorkloadConfig::new(scale.default_num_queries(), 2),
        0x0B5,
    );
    let shards = 4;
    let clients = 8;
    let requests_per_client = (workload.len() * 2 / clients).max(1);

    let mut config = ServiceConfig::new(shards, DtlpConfig::new(spec.default_z, 2));
    // A deliberately unmeetable SLO so the run exercises the anomaly path:
    // the first breach dumps the offending span chain into the flight
    // recorder, and the scrape below carries it back over the wire.
    config.observability.slo_p99 = Duration::from_nanos(1);
    let service = Arc::new(QueryService::start(graph.clone(), config).expect("service start"));
    let server = TcpServer::bind(service.clone(), "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();

    // First half of the traffic, then a metrics baseline, then the second
    // half: `delta_since` should attribute only the second half.
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 0x0B5);
    let driver_config = LoadDriverConfig::new(clients, requests_per_client / 2)
        .with_updates_every(Duration::from_millis(10));
    run_closed_loop_over(
        || KspClient::connect(addr).expect("connect").0,
        &workload,
        Some(&mut traffic),
        driver_config,
    );
    let baseline = service.metrics();
    run_closed_loop_over(
        || KspClient::connect(addr).expect("connect").0,
        &workload,
        Some(&mut traffic),
        driver_config,
    );
    let report = service.metrics();
    let delta = report.delta_since(&baseline);

    let mut client = KspClient::connect(addr).expect("connect").0;
    let snap = client.obs_snapshot().expect("obs snapshot");
    let exposition = client.scrape_text().expect("scrape");
    drop(server);

    // Table 1: where a query's time goes, stage by stage. The telescoping
    // span stamps guarantee the stage totals sum to the end-to-end total.
    let mut stages_table = Table::new(
        format!(
            "obs: per-stage latency decomposition over TCP ({}, {} vertices, {} shards)",
            spec.preset.short_name(),
            graph.num_vertices(),
            shards
        ),
        &["stage", "count", "mean_us", "p50_us", "p99_us", "max_us", "total_ms", "share_pct"],
    );
    let stage_total_micros: u64 =
        Stage::ALL.iter().filter_map(|&s| snap.stage(s)).map(|h| h.total_micros).sum();
    let stage_row = |name: &str, h: &HistogramSnapshot| {
        vec![
            name.to_string(),
            h.count.to_string(),
            h.mean().as_micros().to_string(),
            h.quantile(0.5).as_micros().to_string(),
            h.quantile(0.99).as_micros().to_string(),
            h.max_micros.to_string(),
            f2(h.total_micros as f64 / 1e3),
            f2(100.0 * h.total_micros as f64 / stage_total_micros.max(1) as f64),
        ]
    };
    for stage in Stage::ALL {
        if let Some(h) = snap.stage(stage) {
            stages_table.row(stage_row(stage.name(), h));
        }
    }
    stages_table.row(stage_row("end_to_end", &snap.end_to_end));

    // Table 2: where an epoch publish spends its time, stage by stage down
    // the write path. The same telescoping discipline as the read side: the
    // stage totals sum exactly to the end-to-end publish total. This service
    // is not persistent, so the log and checkpoint stages are near-zero —
    // the table shows the shape of the decomposition, the persistence
    // experiment shows the durable costs.
    let publish_total_micros: u64 = PublishStage::ALL
        .iter()
        .filter_map(|&s| snap.publish_stage(s))
        .map(|h| h.total_micros)
        .sum();
    let mut publish_table = Table::new(
        format!(
            "obs: write-path publish decomposition over TCP ({} epochs published)",
            snap.publish_end_to_end.count
        ),
        &["stage", "count", "mean_us", "p50_us", "p99_us", "max_us", "total_ms", "share_pct"],
    );
    let publish_row = |name: &str, h: &HistogramSnapshot| {
        vec![
            name.to_string(),
            h.count.to_string(),
            h.mean().as_micros().to_string(),
            h.quantile(0.5).as_micros().to_string(),
            h.quantile(0.99).as_micros().to_string(),
            h.max_micros.to_string(),
            f2(h.total_micros as f64 / 1e3),
            f2(100.0 * h.total_micros as f64 / publish_total_micros.max(1) as f64),
        ]
    };
    for stage in PublishStage::ALL {
        if let Some(h) = snap.publish_stage(stage) {
            publish_table.row(publish_row(stage.name(), h));
        }
    }
    publish_table.row(publish_row("end_to_end", &snap.publish_end_to_end));

    // Table 3: what a scraper derives by differencing two cumulative
    // samples, computed here with `MetricsReport::delta_since`.
    let mut delta_table = Table::new(
        "obs: cumulative counters vs second-half interval (delta_since)",
        &["counter", "cumulative", "interval"],
    );
    for (name, cumulative, interval) in [
        ("completed", report.completed, delta.completed),
        ("rejected", report.rejected, delta.rejected),
        ("cache_hits", report.cache_hits, delta.cache_hits),
        ("cache_misses", report.cache_misses, delta.cache_misses),
        ("epochs_published", report.epochs_published, delta.epochs_published),
        ("cache_retained", report.cache_retained, delta.cache_retained),
        ("cache_evicted", report.cache_evicted, delta.cache_evicted),
        ("steals", report.steals, delta.steals),
    ] {
        delta_table.row(vec![name.to_string(), cumulative.to_string(), interval.to_string()]);
    }

    // Table 4: the scrape as a scraper sees it — one row per metric family
    // with its sample count — plus the flight recorder's tally per event
    // kind and the anomaly dump the SLO breaches produced.
    let mut scrape_table = Table::new(
        format!("obs: text exposition scrape ({} bytes) and flight recorder", exposition.len()),
        &["series", "kind", "samples"],
    );
    let mut families: Vec<(String, String, usize)> = Vec::new();
    for line in exposition.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or_default().to_string();
            let kind = parts.next().unwrap_or_default().to_string();
            families.push((name, kind, 0));
        } else if let Some(last) = families.last_mut() {
            last.2 += 1;
        }
    }
    for (name, kind, samples) in families {
        scrape_table.row(vec![name, kind, samples.to_string()]);
    }
    let events = service.observability().flight().snapshot();
    for kind in EventKind::ALL {
        let tally = events.iter().filter(|e| e.kind == kind).count();
        if tally > 0 {
            scrape_table.row(vec![
                format!("flight:{}", kind.name()),
                "event".to_string(),
                tally.to_string(),
            ]);
        }
    }
    if let Some(dump) = &snap.dump {
        scrape_table.row(vec![
            format!("flight_dump:{}", dump.cause.kind.name()),
            "dump".to_string(),
            dump.events.len().to_string(),
        ]);
    }

    vec![stages_table, publish_table, delta_table, scrape_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observability_reports_all_stages_and_counters() {
        let tables = observability(Scale::Tiny);
        assert_eq!(tables.len(), 4);
        // Seven stages plus the end-to-end row, on both the read and the
        // write path.
        assert_eq!(tables[0].num_rows(), Stage::COUNT + 1);
        assert_eq!(tables[1].num_rows(), PublishStage::COUNT + 1);
        // Eight counters in the delta table.
        assert_eq!(tables[2].num_rows(), 8);
        // The scrape summary names the histogram families of both paths.
        let rendered = tables[3].render();
        assert!(rendered.contains("ksp_stage_duration_seconds"));
        assert!(rendered.contains("ksp_request_duration_seconds"));
        assert!(rendered.contains("ksp_publish_stage_duration_seconds"));
        assert!(rendered.contains("ksp_requests_completed_total"));
    }
}
