//! Replication experiment: what log-shipping replication buys at failover
//! time.
//!
//! One leader publishes traffic epochs while a follower bootstraps over a
//! loopback TCP socket (snapshot fallback for the fresh join, WAL records
//! from then on) and replays them through the same COW publish path. The
//! experiment then kills the leader and measures the two takeover paths side
//! by side: **warm failover** — promoting the caught-up follower, a
//! stop-and-flip with no state work — versus **cold recovery** — reopening
//! the leader's directory, which decodes the newest checkpoint image and
//! replays the log tail. The third table dumps every `ksp_repl_*` metric
//! family from both sides of the wire, so a scraper (and the CI smoke run)
//! sees the replication surface exactly as an operator would.

use crate::report::{f2, Table};
use crate::Scale;
use ksp_core::dtlp::DtlpConfig;
use ksp_graph::VertexId;
use ksp_proto::KspClient;
use ksp_repl::{Replica, ReplicaConfig, ReplicationSource};
use ksp_serve::{QueryService, ServiceConfig, TcpServer};
use ksp_store::{StoreCodec, StoreConfig, SyncPolicy};
use ksp_workload::{DatasetPreset, TrafficConfig, TrafficModel};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ksp-repl-exp-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn byte_identical(a: &QueryService, b: &QueryService) -> bool {
    let (sa, sb) = (a.snapshot(), b.snapshot());
    sa.epoch() == sb.epoch()
        && sa.graph().to_bytes() == sb.graph().to_bytes()
        && sa.index().to_bytes() == sb.index().to_bytes()
}

/// Collects every `ksp_repl_*` sample line from a Prometheus text exposition.
fn repl_families(text: &str) -> Vec<(String, String)> {
    text.lines()
        .filter(|line| line.starts_with("ksp_repl_"))
        .filter_map(|line| {
            let (series, value) = line.rsplit_once(' ')?;
            Some((series.to_string(), value.to_string()))
        })
        .collect()
}

/// Log shipping, snapshot fallback and warm failover vs cold recovery.
pub fn repl(scale: Scale) -> Vec<Table> {
    let spec = DatasetPreset::NewYork.spec(scale.dataset_scale());
    let net = spec.generate().expect("dataset generation");
    let graph = net.graph;
    let leader_dir = scratch_dir("leader");
    let replica_root = scratch_dir("replica");
    let epochs_per_phase = 4u64;

    let sconfig = ServiceConfig::new(2, DtlpConfig::new(spec.default_z, 2));
    // Manual checkpoints keep the shipped-record accounting deterministic;
    // fsync off because durability of the scratch dir is not the measurement.
    let store =
        StoreConfig { checkpoint_interval: 0, sync: SyncPolicy::Never, ..Default::default() };
    let leader = Arc::new(
        QueryService::start_with_store(graph.clone(), sconfig, &leader_dir, store)
            .expect("leader start"),
    );
    let source = ReplicationSource::attach(&leader).expect("attach replication source");
    let server = TcpServer::bind(leader.clone(), "127.0.0.1:0").expect("bind loopback");
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.5, 0.5), 0x4E7);

    let mut shipping = Table::new(
        format!(
            "repl: log shipping over TCP ({}, {} vertices, {} epochs)",
            spec.preset.short_name(),
            graph.num_vertices(),
            epochs_per_phase * 2
        ),
        &[
            "phase",
            "leader_epoch",
            "applied_epoch",
            "records_shipped",
            "ship_kib",
            "img_fallbacks",
            "img_kib",
            "byte_identical",
        ],
    );
    let mut shipping_row = |phase: &str,
                            leader: &QueryService,
                            follower: &QueryService,
                            src: &ReplicationSource,
                            applied: u64| {
        shipping.row(vec![
            phase.to_string(),
            leader.current_epoch().to_string(),
            applied.to_string(),
            src.records_shipped().to_string(),
            f2(src.bytes_shipped() as f64 / 1024.0),
            src.snapshot_fallbacks().to_string(),
            f2(src.snapshot_bytes_shipped() as f64 / 1024.0),
            byte_identical(leader, follower).to_string(),
        ]);
    };

    // Phase 1: the follower joins after the leader has already published —
    // epoch 0 lives in the initial checkpoint, so the fresh join re-seeds
    // from the snapshot fallback, then catches up over the log.
    for _ in 0..epochs_per_phase {
        leader.apply_batch(&traffic.next_snapshot()).expect("leader publish");
    }
    let rconfig = ReplicaConfig::new("f1", sconfig, store);
    let mut replica =
        Replica::bootstrap(server.local_addr(), &replica_root, rconfig).expect("bootstrap");
    let applied = replica.sync_to_caught_up(64).expect("catch up");
    shipping_row("bootstrap", &leader, &replica.service(), &source, applied);

    // Phase 2: steady state ships WAL records only, never images.
    for _ in 0..epochs_per_phase {
        leader.apply_batch(&traffic.next_snapshot()).expect("leader publish");
    }
    let applied = replica.sync_to_caught_up(64).expect("catch up");
    shipping_row("steady", &leader, &replica.service(), &source, applied);

    // Scrape the leader's replication families while it is still alive; the
    // follower's own exposition is collected after promotion below.
    let (mut client, _hello) = KspClient::connect(server.local_addr()).expect("connect");
    let leader_exposition = client.scrape_text().expect("scrape");
    drop(client);

    // Kill the leader. The source holds the leader's store open — drop it
    // too, or cold recovery below could not reacquire the directory lock.
    let mut server = server;
    server.shutdown();
    drop(server);
    drop(source);
    drop(leader);

    // Takeover path A: cold recovery — newest checkpoint image + log replay.
    let cold_started = Instant::now();
    let (cold, _report) = QueryService::open(&leader_dir, sconfig, store).expect("cold recovery");
    let cold_duration = cold_started.elapsed();

    // Takeover path B: warm failover — stop the already-caught-up follower's
    // sync loop and flip the promoted flag. No images, no replay.
    replica.run().expect("follower loop");
    std::thread::sleep(Duration::from_millis(30)); // let it notice the dead leader
    let promotion = replica.promote();

    let last = VertexId(graph.num_vertices() as u32 - 1);
    let cold_answer = cold.query(VertexId(0), last, 2).expect("cold query");
    let warm_answer = replica.query(VertexId(0), last, 2).expect("promoted query");
    let answers_match = cold_answer.paths.len() == warm_answer.paths.len()
        && cold_answer.paths.iter().zip(warm_answer.paths.iter()).all(|(a, b)| {
            a.vertices() == b.vertices()
                && a.distance().value().to_bits() == b.distance().value().to_bits()
        });

    let mut failover = Table::new(
        "repl: warm failover (promote) vs cold recovery (checkpoint + log replay)",
        &["path", "time_us", "epoch", "speedup", "answers_match", "byte_identical"],
    );
    let speedup = cold_duration.as_secs_f64() / promotion.duration.as_secs_f64().max(1e-9);
    let identical = byte_identical(&cold, &replica.service());
    failover.row(vec![
        "cold_recover".to_string(),
        cold_duration.as_micros().to_string(),
        cold.current_epoch().to_string(),
        "1.00".to_string(),
        answers_match.to_string(),
        identical.to_string(),
    ]);
    failover.row(vec![
        "promote".to_string(),
        promotion.duration.as_micros().to_string(),
        promotion.epoch.to_string(),
        f2(speedup),
        answers_match.to_string(),
        identical.to_string(),
    ]);

    let mut families = Table::new(
        "repl: ksp_repl_* metric families (leader scrape + follower exposition)",
        &["side", "series", "value"],
    );
    for (series, value) in repl_families(&leader_exposition) {
        families.row(vec!["leader".to_string(), series, value]);
    }
    for (series, value) in repl_families(&replica.service().render_exposition()) {
        families.row(vec!["follower".to_string(), series, value]);
    }

    let _ = std::fs::remove_dir_all(&leader_dir);
    let _ = std::fs::remove_dir_all(&replica_root);
    vec![shipping, failover, families]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repl_ships_catches_up_and_promotes() {
        let tables = repl(Scale::Tiny);
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].num_rows(), 2);
        let shipping = tables[0].render();
        assert!(shipping.contains("bootstrap") && shipping.contains("steady"));
        assert!(!shipping.contains("false"), "every phase must end byte-identical");
        assert_eq!(tables[1].num_rows(), 2);
        let failover = tables[1].render();
        assert!(failover.contains("promote") && failover.contains("cold_recover"));
        assert!(!failover.contains("false"), "promoted answers must match cold recovery");
        // Both sides of the wire expose their replication families.
        let families = tables[2].render();
        for series in [
            "ksp_repl_ship_records_total",
            "ksp_repl_ship_bytes_total",
            "ksp_repl_snapshot_fallbacks_total",
            "ksp_repl_lag_epochs{follower=\"f1\"}",
            "ksp_repl_applied_epoch",
            "ksp_repl_records_applied_total",
        ] {
            assert!(families.contains(series), "missing {series}");
        }
    }
}
