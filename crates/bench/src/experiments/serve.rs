//! Serving-layer experiments: closed-loop throughput and tail latency of
//! `ksp_serve::QueryService` as the shard count grows, with traffic epochs
//! publishing concurrently — and the same closed loop run over the typed
//! wire protocol, pricing the TCP transport against the in-process path.
//!
//! This is the serving-side companion of the batch scaling figures: instead of
//! a batch makespan it reports what an online operator watches — queries per
//! second, p50/p95/p99 latency, cache hit rate and admission rejections.

use crate::report::{f2, Table};
use crate::Scale;
use ksp_core::dtlp::DtlpConfig;
use ksp_proto::{KspClient, TransportStats};
use ksp_serve::{
    route_shard, run_closed_loop, run_closed_loop_over, InProcTransport, LoadDriverConfig,
    QueryService, ServiceConfig, TcpServer, WireLoadReport,
};
use ksp_workload::{
    DatasetPreset, QueryWorkload, QueryWorkloadConfig, TrafficConfig, TrafficModel,
};
use std::sync::Arc;
use std::time::Duration;

/// Closed-loop serving throughput vs number of shards.
pub fn serve_throughput(scale: Scale) -> Vec<Table> {
    let spec = DatasetPreset::NewYork.spec(scale.dataset_scale());
    let net = spec.generate().expect("dataset generation");
    let graph = net.graph;
    let workload = QueryWorkload::generate(
        &graph,
        QueryWorkloadConfig::new(scale.default_num_queries(), 2),
        0x5E11,
    );

    let mut table = Table::new(
        format!(
            "serve: closed-loop throughput vs shards ({}, {} vertices, Nq = {})",
            spec.preset.short_name(),
            graph.num_vertices(),
            workload.len()
        ),
        &[
            "shards",
            "clients",
            "completed",
            "rejected",
            "qps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "hit_rate",
            "epochs",
            "q_high_water",
        ],
    );

    for &shards in &[1usize, 2, 4, 8] {
        let service = QueryService::start(
            graph.clone(),
            ServiceConfig::new(shards, DtlpConfig::new(spec.default_z, 2)),
        )
        .expect("service start");
        let clients = shards * 2;
        let requests_per_client = (workload.len() * 2 / clients).max(1);
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 0xE9);
        let report = run_closed_loop(
            &service,
            &workload,
            Some(&mut traffic),
            LoadDriverConfig::new(clients, requests_per_client)
                .with_updates_every(Duration::from_millis(10)),
        );
        table.row(vec![
            shards.to_string(),
            clients.to_string(),
            report.completed.to_string(),
            report.rejected.to_string(),
            f2(report.throughput_qps()),
            f2(report.metrics.p50.as_secs_f64() * 1e3),
            f2(report.metrics.p95.as_secs_f64() * 1e3),
            f2(report.metrics.p99.as_secs_f64() * 1e3),
            f2(report.metrics.cache_hit_rate()),
            report.epochs_published.to_string(),
            // Deepest backlog any shard saw: the admission-control signal.
            service.queue_gauges().iter().map(|g| g.high_water).max().unwrap_or(0).to_string(),
        ]);
    }
    vec![table, serve_skewed(scale)]
}

/// The same closed loop over a *skewed* workload: every query hash-routes to
/// shard 0, the worst case for pure affinity routing. The two rows compare
/// the static-routing baseline (`work_stealing = false` — one shard does all
/// the work, the busy spread pins near 1) against the work-stealing
/// scheduler, which should show nonzero steals, a smaller busy spread and a
/// better tail.
fn serve_skewed(scale: Scale) -> Table {
    let spec = DatasetPreset::NewYork.spec(scale.dataset_scale());
    let net = spec.generate().expect("dataset generation");
    let graph = net.graph;
    let shards = 4usize;
    let clients = 8usize;

    // Draw a large uniform pool, keep only the queries shard 0 owns: a
    // deterministic, maximally skewed request stream of *distinct* queries
    // (distinct so the hot shard keeps computing instead of serving hits).
    let pool = QueryWorkload::generate(
        &graph,
        QueryWorkloadConfig::new(scale.default_num_queries() * 8, 2),
        0xD00D,
    );
    let queries: Vec<_> = pool
        .queries
        .into_iter()
        .filter(|q| route_shard(q.source, q.target, q.k, shards) == 0)
        .collect();
    let workload = QueryWorkload { queries };
    let requests_per_client = (workload.len() * 2 / clients).max(1);

    let mut table = Table::new(
        format!(
            "serve: skewed workload (all queries route to shard 0 of {shards}; {} distinct, {} clients)",
            workload.len(),
            clients
        ),
        &["stealing", "completed", "rejected", "qps", "p95_ms", "p99_ms", "busy_spread", "steals"],
    );
    for stealing in [false, true] {
        let mut config = ServiceConfig::new(shards, DtlpConfig::new(spec.default_z, 2));
        config.work_stealing = stealing;
        // A small cache keeps the hot shard compute-bound under churn, which
        // is the regime stealing exists for.
        config.cache_capacity = 32;
        let service = QueryService::start(graph.clone(), config).expect("service start");
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 0xA1);
        let report = run_closed_loop(
            &service,
            &workload,
            Some(&mut traffic),
            LoadDriverConfig::new(clients, requests_per_client)
                .with_updates_every(Duration::from_millis(10)),
        );
        table.row(vec![
            if stealing { "on" } else { "off" }.to_string(),
            report.completed.to_string(),
            report.rejected.to_string(),
            f2(report.throughput_qps()),
            f2(report.metrics.p95.as_secs_f64() * 1e3),
            f2(report.metrics.p99.as_secs_f64() * 1e3),
            f2(report.metrics.load_balance.busy_spread),
            report.metrics.steals.to_string(),
        ]);
    }
    table
}

/// The same closed loop driven through `ksp-proto` transports: once over the
/// zero-copy in-process transport, once over real loopback TCP connections.
///
/// Comparing the two rows prices the protocol itself: the throughput/latency
/// delta is the serialisation + socket cost, and the wire columns report the
/// physical bytes the TCP run moved (the in-process row moves none — that is
/// its point).
pub fn serve_tcp(scale: Scale) -> Vec<Table> {
    let spec = DatasetPreset::NewYork.spec(scale.dataset_scale());
    let net = spec.generate().expect("dataset generation");
    let graph = net.graph;
    let workload = QueryWorkload::generate(
        &graph,
        QueryWorkloadConfig::new(scale.default_num_queries(), 2),
        0x7C9,
    );
    let shards = 4;
    let clients = 8;
    let requests_per_client = (workload.len() * 2 / clients).max(1);

    let mut table = Table::new(
        format!(
            "serve_tcp: closed loop over in-proc vs TCP transport ({}, {} vertices, {} shards, {} clients)",
            spec.preset.short_name(),
            graph.num_vertices(),
            shards,
            clients
        ),
        &[
            "transport",
            "completed",
            "rejected",
            "qps",
            "p50_ms",
            "p99_ms",
            "seen_p50_ms",
            "seen_p95_ms",
            "seen_p99_ms",
            "hit_rate",
            "epochs",
            "wire_kb",
            "bytes_per_req",
        ],
    );

    let run =
        |transport: &str, service: &Arc<QueryService>| -> (WireLoadReport, Option<TcpServer>) {
            let config = LoadDriverConfig::new(clients, requests_per_client)
                .with_updates_every(Duration::from_millis(10));
            let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 0xB7);
            match transport {
                "in-proc" => {
                    let report = run_closed_loop_over(
                        || KspClient::new(InProcTransport::new(service.clone())),
                        &workload,
                        Some(&mut traffic),
                        config,
                    );
                    (report, None)
                }
                _ => {
                    let server =
                        TcpServer::bind(service.clone(), "127.0.0.1:0").expect("bind loopback");
                    let addr = server.local_addr();
                    let report = run_closed_loop_over(
                        || KspClient::connect(addr).expect("connect").0,
                        &workload,
                        Some(&mut traffic),
                        config,
                    );
                    (report, Some(server))
                }
            }
        };

    for transport in ["in-proc", "tcp"] {
        // A fresh service per transport so cache warmth and epochs are
        // comparable across rows.
        let service = Arc::new(
            QueryService::start(
                graph.clone(),
                ServiceConfig::new(shards, DtlpConfig::new(spec.default_z, 2)),
            )
            .expect("service start"),
        );
        let (report, server) = run(transport, &service);
        let wire: TransportStats = report.wire;
        table.row(vec![
            transport.to_string(),
            report.completed.to_string(),
            report.rejected.to_string(),
            f2(report.throughput_qps()),
            f2(report.metrics.p50_micros as f64 / 1e3),
            f2(report.metrics.p99_micros as f64 / 1e3),
            // Client-perceived percentiles sit next to the server-side ones:
            // the gap is the transport's own cost (serialization, framing,
            // the socket), zero-ish for in-proc and real for TCP.
            f2(report.perceived_p50().as_secs_f64() * 1e3),
            f2(report.perceived_p95().as_secs_f64() * 1e3),
            f2(report.perceived_p99().as_secs_f64() * 1e3),
            f2(report.metrics.cache_hit_rate()),
            report.epochs_published.to_string(),
            f2((wire.bytes_sent + wire.bytes_received) as f64 / 1024.0),
            f2(wire.bytes_per_request()),
        ]);
        drop(server);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_throughput_reports_all_shard_counts() {
        let tables = serve_throughput(Scale::Tiny);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].num_rows(), 4);
        // The skewed table compares stealing off vs on.
        assert_eq!(tables[1].num_rows(), 2);
    }

    #[test]
    fn serve_tcp_reports_both_transports() {
        let tables = serve_tcp(Scale::Tiny);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].num_rows(), 2);
    }
}
