//! Serving-layer experiments: closed-loop throughput and tail latency of
//! `ksp_serve::QueryService` as the shard count grows, with traffic epochs
//! publishing concurrently — and the same closed loop run over the typed
//! wire protocol, pricing the TCP transport against the in-process path.
//!
//! This is the serving-side companion of the batch scaling figures: instead of
//! a batch makespan it reports what an online operator watches — queries per
//! second, p50/p95/p99 latency, cache hit rate and admission rejections.

use crate::report::{f2, Table};
use crate::Scale;
use ksp_core::dtlp::DtlpConfig;
use ksp_proto::{KspClient, TransportStats};
use ksp_serve::{
    route_shard, run_closed_loop, run_closed_loop_over, InProcTransport, LoadDriverConfig,
    QueryService, ServiceConfig, TcpServer, WireLoadReport,
};
use ksp_workload::{
    DatasetPreset, QueryWorkload, QueryWorkloadConfig, TrafficConfig, TrafficModel,
};
use std::sync::Arc;
use std::time::Duration;

/// Closed-loop serving throughput vs number of shards.
pub fn serve_throughput(scale: Scale) -> Vec<Table> {
    let spec = DatasetPreset::NewYork.spec(scale.dataset_scale());
    let net = spec.generate().expect("dataset generation");
    let graph = net.graph;
    let workload = QueryWorkload::generate(
        &graph,
        QueryWorkloadConfig::new(scale.default_num_queries(), 2),
        0x5E11,
    );

    let mut table = Table::new(
        format!(
            "serve: closed-loop throughput vs shards ({}, {} vertices, Nq = {})",
            spec.preset.short_name(),
            graph.num_vertices(),
            workload.len()
        ),
        &[
            "shards",
            "clients",
            "completed",
            "rejected",
            "qps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "hit_rate",
            "epochs",
            "q_high_water",
        ],
    );

    for &shards in &[1usize, 2, 4, 8] {
        let service = QueryService::start(
            graph.clone(),
            ServiceConfig::new(shards, DtlpConfig::new(spec.default_z, 2)),
        )
        .expect("service start");
        let clients = shards * 2;
        let requests_per_client = (workload.len() * 2 / clients).max(1);
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 0xE9);
        let report = run_closed_loop(
            &service,
            &workload,
            Some(&mut traffic),
            LoadDriverConfig::new(clients, requests_per_client)
                .with_updates_every(Duration::from_millis(10)),
        );
        table.row(vec![
            shards.to_string(),
            clients.to_string(),
            report.completed.to_string(),
            report.rejected.to_string(),
            f2(report.throughput_qps()),
            f2(report.metrics.p50.as_secs_f64() * 1e3),
            f2(report.metrics.p95.as_secs_f64() * 1e3),
            f2(report.metrics.p99.as_secs_f64() * 1e3),
            f2(report.metrics.cache_hit_rate()),
            report.epochs_published.to_string(),
            // Deepest backlog any shard saw: the admission-control signal.
            service.queue_gauges().iter().map(|g| g.high_water).max().unwrap_or(0).to_string(),
        ]);
    }
    vec![table, serve_skewed(scale)]
}

/// The same closed loop over a *skewed* workload: every query hash-routes to
/// shard 0, the worst case for pure affinity routing. The two rows compare
/// the static-routing baseline (`work_stealing = false` — one shard does all
/// the work, the busy spread pins near 1) against the work-stealing
/// scheduler, which should show nonzero steals, a smaller busy spread and a
/// better tail.
fn serve_skewed(scale: Scale) -> Table {
    let spec = DatasetPreset::NewYork.spec(scale.dataset_scale());
    let net = spec.generate().expect("dataset generation");
    let graph = net.graph;
    let shards = 4usize;
    let clients = 8usize;

    // Draw a large uniform pool, keep only the queries shard 0 owns: a
    // deterministic, maximally skewed request stream of *distinct* queries
    // (distinct so the hot shard keeps computing instead of serving hits).
    let pool = QueryWorkload::generate(
        &graph,
        QueryWorkloadConfig::new(scale.default_num_queries() * 8, 2),
        0xD00D,
    );
    let queries: Vec<_> = pool
        .queries
        .into_iter()
        .filter(|q| route_shard(q.source, q.target, q.k, shards) == 0)
        .collect();
    let workload = QueryWorkload { queries };
    let requests_per_client = (workload.len() * 2 / clients).max(1);

    let mut table = Table::new(
        format!(
            "serve: skewed workload (all queries route to shard 0 of {shards}; {} distinct, {} clients)",
            workload.len(),
            clients
        ),
        &["stealing", "completed", "rejected", "qps", "p95_ms", "p99_ms", "busy_spread", "steals"],
    );
    for stealing in [false, true] {
        let mut config = ServiceConfig::new(shards, DtlpConfig::new(spec.default_z, 2));
        config.work_stealing = stealing;
        // A small cache keeps the hot shard compute-bound under churn, which
        // is the regime stealing exists for.
        config.cache_capacity = 32;
        let service = QueryService::start(graph.clone(), config).expect("service start");
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 0xA1);
        let report = run_closed_loop(
            &service,
            &workload,
            Some(&mut traffic),
            LoadDriverConfig::new(clients, requests_per_client)
                .with_updates_every(Duration::from_millis(10)),
        );
        table.row(vec![
            if stealing { "on" } else { "off" }.to_string(),
            report.completed.to_string(),
            report.rejected.to_string(),
            f2(report.throughput_qps()),
            f2(report.metrics.p95.as_secs_f64() * 1e3),
            f2(report.metrics.p99.as_secs_f64() * 1e3),
            f2(report.metrics.load_balance.busy_spread),
            report.metrics.steals.to_string(),
        ]);
    }
    table
}

/// The same closed loop driven through `ksp-proto` transports: once over the
/// zero-copy in-process transport, once over real loopback TCP connections
/// served thread-per-connection, and once over the same loopback served by
/// the epoll event loop.
///
/// Comparing the rows prices the protocol and the serving architecture: the
/// in-proc → tcp delta is serialisation + socket cost, and the tcp →
/// tcp-evloop rows contrast a thread per connection against a fixed thread
/// count (the `srv_threads` column) at the same wire cost per request.
pub fn serve_tcp(scale: Scale) -> Vec<Table> {
    let spec = DatasetPreset::NewYork.spec(scale.dataset_scale());
    let net = spec.generate().expect("dataset generation");
    let graph = net.graph;
    let workload = QueryWorkload::generate(
        &graph,
        QueryWorkloadConfig::new(scale.default_num_queries(), 2),
        0x7C9,
    );
    let shards = 4;
    let clients = 8;
    let requests_per_client = (workload.len() * 2 / clients).max(1);

    let mut table = Table::new(
        format!(
            "serve_tcp: closed loop over in-proc vs TCP vs event-loop transport ({}, {} vertices, {} shards, {} clients)",
            spec.preset.short_name(),
            graph.num_vertices(),
            shards,
            clients
        ),
        &[
            "transport",
            "srv_threads",
            "completed",
            "rejected",
            "qps",
            "p50_ms",
            "p99_ms",
            "seen_p50_ms",
            "seen_p95_ms",
            "seen_p99_ms",
            "hit_rate",
            "epochs",
            "wire_kb",
            "bytes_per_req",
        ],
    );

    let run = |transport: &str, service: &Arc<QueryService>| -> (WireLoadReport, usize) {
        let config = LoadDriverConfig::new(clients, requests_per_client)
            .with_updates_every(Duration::from_millis(10));
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 0xB7);
        match transport {
            "in-proc" => {
                let report = run_closed_loop_over(
                    || KspClient::new(InProcTransport::new(service.clone())),
                    &workload,
                    Some(&mut traffic),
                    config,
                );
                (report, 0)
            }
            "tcp" => {
                let server =
                    TcpServer::bind(service.clone(), "127.0.0.1:0").expect("bind loopback");
                let addr = server.local_addr();
                let report = run_closed_loop_over(
                    || KspClient::connect(addr).expect("connect").0,
                    &workload,
                    Some(&mut traffic),
                    config,
                );
                // Peak serving threads: the acceptor plus one worker per
                // connection the run opened — this is the column the event
                // loop exists to flatten.
                let threads = server.thread_count();
                (report, threads)
            }
            _ => {
                #[cfg(target_os = "linux")]
                {
                    let server = ksp_serve::EventLoopServer::bind(service.clone(), "127.0.0.1:0")
                        .expect("bind event loop");
                    let addr = server.local_addr();
                    let report = run_closed_loop_over(
                        || KspClient::connect(addr).expect("connect").0,
                        &workload,
                        Some(&mut traffic),
                        config,
                    );
                    let threads = server.thread_count();
                    (report, threads)
                }
                #[cfg(not(target_os = "linux"))]
                unreachable!("the event-loop transport is Linux-only")
            }
        }
    };

    let transports: &[&str] = if cfg!(target_os = "linux") {
        &["in-proc", "tcp", "tcp-evloop"]
    } else {
        &["in-proc", "tcp"]
    };
    for &transport in transports {
        // A fresh service per transport so cache warmth and epochs are
        // comparable across rows.
        let service = Arc::new(
            QueryService::start(
                graph.clone(),
                ServiceConfig::new(shards, DtlpConfig::new(spec.default_z, 2)),
            )
            .expect("service start"),
        );
        let (report, srv_threads) = run(transport, &service);
        let wire: TransportStats = report.wire;
        table.row(vec![
            transport.to_string(),
            srv_threads.to_string(),
            report.completed.to_string(),
            report.rejected.to_string(),
            f2(report.throughput_qps()),
            f2(report.metrics.p50_micros as f64 / 1e3),
            f2(report.metrics.p99_micros as f64 / 1e3),
            // Client-perceived percentiles sit next to the server-side ones:
            // the gap is the transport's own cost (serialization, framing,
            // the socket), zero-ish for in-proc and real for TCP.
            f2(report.perceived_p50().as_secs_f64() * 1e3),
            f2(report.perceived_p95().as_secs_f64() * 1e3),
            f2(report.perceived_p99().as_secs_f64() * 1e3),
            f2(report.metrics.cache_hit_rate()),
            report.epochs_published.to_string(),
            f2((wire.bytes_sent + wire.bytes_received) as f64 / 1024.0),
            f2(wire.bytes_per_request()),
        ]);
    }

    let mut tables = vec![table];
    #[cfg(target_os = "linux")]
    tables.push(serve_overload(&graph, spec.default_z));
    tables
}

/// Open-loop overload against the event loop at ~2× measured capacity:
/// SLO-driven adaptive admission vs the static queue cap, across a widening
/// connection fleet.
///
/// The story the four rows tell: under sustained 2× overload the static cap
/// accepts (almost) everything and lets the accepted-request p99 blow through
/// the SLO; the adaptive controller sheds the excess with typed,
/// `retry_after_ms`-hinted rejections (the `hinted` column) and holds the
/// accepted p99 near the budget.
#[cfg(target_os = "linux")]
fn serve_overload(graph: &ksp_graph::DynamicGraph, z: usize) -> Table {
    use ksp_serve::{run_open_loop_over, EventLoopServer, OpenLoopConfig};

    let shards = 2usize;
    let base_config = |adaptive: bool, slo: Duration| {
        let mut config = ServiceConfig::new(shards, DtlpConfig::new(z, 2));
        config.observability.slo_p99 = slo;
        config.admission.adaptive = adaptive;
        // A small cache keeps the run compute-bound: overload must mean
        // engine-run queueing, not a warmed cache absorbing the flood.
        config.cache_capacity = 32;
        config
    };

    // A wide pool of *distinct* queries, so (unlike the closed-loop table
    // above) repeats are rare and every request costs a real engine run —
    // the regime where capacity is well-defined and 2× of it must queue.
    // Modest k keeps the per-query cost distribution narrow: an SLO budget
    // is a *queueing* budget, and a mean-based queueing prediction can only
    // defend it when one request's own run does not swing past the whole
    // budget on its own.
    let overload_workload =
        QueryWorkload::generate(graph, QueryWorkloadConfig::new(2048, 4), 0xFEED);

    // Calibrate: a short closed loop over the event loop measures what the
    // service actually sustains here, so "2× overload" means 2× *this
    // machine's* capacity, not a magic number.
    let calibration_service = Arc::new(
        QueryService::start(graph.clone(), base_config(false, Duration::ZERO))
            .expect("service start"),
    );
    let calibration_server =
        EventLoopServer::bind(calibration_service.clone(), "127.0.0.1:0").expect("bind event loop");
    let calibration_addr = calibration_server.local_addr();
    let calibration = run_closed_loop_over(
        || KspClient::connect(calibration_addr).expect("connect").0,
        &overload_workload,
        None,
        LoadDriverConfig::new(4, 32),
    );
    drop(calibration_server);
    let base_qps = calibration.throughput_qps().max(50.0);
    // Two numbers, the way a real deployment sets them: the *admission
    // budget* (the internal queueing-delay target the adaptive controller
    // predicts against) is the calibration tail — itself rounded up to a
    // power-of-two bucket edge, so roughly 2× the true uncontended p99 —
    // and the *external SLO* the verdict is judged against is 3× the
    // budget. The gap is deliberate headroom: an accepted request's latency
    // is its queueing delay (what admission bounds, using mean service
    // times) plus its own run (which the controller cannot shrink and whose
    // p99 the budget must leave room for). A budget equal to the SLO would
    // admit a full SLO's worth of queueing and then breach on the service
    // tail riding on top.
    let budget = calibration.perceived_p99().max(Duration::from_millis(2));
    let slo = budget * 3;
    let offered_qps = base_qps * 2.0;

    let mut table = Table::new(
        format!(
            "serve_overload: open loop at ~2x capacity over the event loop ({} sustained qps, admission budget = {:.2} ms, slo_p99 = {:.2} ms)",
            f2(base_qps),
            budget.as_secs_f64() * 1e3,
            slo.as_secs_f64() * 1e3
        ),
        &[
            "admission",
            "conns",
            "offered_qps",
            "achieved_qps",
            "completed",
            "rejected",
            "hinted",
            "acc_p50_ms",
            "acc_p99_ms",
            "srv_p99_ms",
            "slo_ms",
            "within_slo",
        ],
    );

    // Fleet width bounds server queue depth (each blocking connection has at
    // most one request in flight), so the narrow fleet shows both policies
    // coping and the wide one shows the static cap letting a deep queue form
    // — deep enough that waiting out the backlog breaches the SLO — while
    // the adaptive controller sheds it at admission.
    for &conns in &[4usize, 64] {
        for adaptive in [true, false] {
            let service = Arc::new(
                QueryService::start(graph.clone(), base_config(adaptive, budget))
                    .expect("service start"),
            );
            let server =
                EventLoopServer::bind(service.clone(), "127.0.0.1:0").expect("bind event loop");
            let addr = server.local_addr();
            // Warm the controller before measuring, at the *same concurrency
            // as the flood*: the closed loop seeds the per-class service-time
            // EWMAs under realistic CPU contention, so the flood hits a
            // controller that already knows what an engine run costs here —
            // otherwise the opening wave is admitted against a stale
            // low-contention estimate, queues deeply, and that startup
            // cohort, not steady-state behaviour, sets the accepted p99.
            let _ = run_closed_loop_over(
                || KspClient::connect(addr).expect("connect").0,
                &overload_workload,
                None,
                LoadDriverConfig::new(conns, 6),
            );
            let interval = Duration::from_secs_f64(conns as f64 / offered_qps);
            let config = OpenLoopConfig::new(conns, 48, interval);
            let report = run_open_loop_over(
                || KspClient::connect(addr).expect("connect").0,
                &overload_workload,
                config,
            );
            // The SLO verdict is held against the *server-reported* accepted
            // p99 (queueing + service, the quantity admission predicts and
            // the service's own breach detection measures); the perceived
            // columns additionally carry wire transit and client-side
            // scheduling, which no server-side controller can shed.
            let srv_p99 = report.server_p99();
            table.row(vec![
                if adaptive { "adaptive" } else { "static-cap" }.to_string(),
                conns.to_string(),
                f2(config.offered_qps()),
                f2(report.achieved_qps()),
                report.completed.to_string(),
                report.rejected.to_string(),
                report.rejected_with_hint.to_string(),
                f2(report.accepted_p50().as_secs_f64() * 1e3),
                f2(report.accepted_p99().as_secs_f64() * 1e3),
                f2(srv_p99.as_secs_f64() * 1e3),
                f2(slo.as_secs_f64() * 1e3),
                if srv_p99 <= slo { "yes" } else { "no" }.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_throughput_reports_all_shard_counts() {
        let tables = serve_throughput(Scale::Tiny);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].num_rows(), 4);
        // The skewed table compares stealing off vs on.
        assert_eq!(tables[1].num_rows(), 2);
    }

    #[test]
    fn serve_tcp_reports_every_transport_and_the_overload_arm() {
        let tables = serve_tcp(Scale::Tiny);
        if cfg!(target_os = "linux") {
            // in-proc, thread-per-connection TCP, and the event loop — plus
            // the open-loop overload table (adaptive vs static × two fleets).
            assert_eq!(tables.len(), 2);
            assert_eq!(tables[0].num_rows(), 3);
            assert_eq!(tables[1].num_rows(), 4);
        } else {
            assert_eq!(tables.len(), 1);
            assert_eq!(tables[0].num_rows(), 2);
        }
    }
}
