//! Serving-layer experiment: closed-loop throughput and tail latency of
//! `ksp_serve::QueryService` as the shard count grows, with traffic epochs
//! publishing concurrently.
//!
//! This is the serving-side companion of the batch scaling figures: instead of
//! a batch makespan it reports what an online operator watches — queries per
//! second, p50/p95/p99 latency, cache hit rate and admission rejections.

use crate::report::{f2, Table};
use crate::Scale;
use ksp_core::dtlp::DtlpConfig;
use ksp_serve::{run_closed_loop, LoadDriverConfig, QueryService, ServiceConfig};
use ksp_workload::{
    DatasetPreset, QueryWorkload, QueryWorkloadConfig, TrafficConfig, TrafficModel,
};
use std::time::Duration;

/// Closed-loop serving throughput vs number of shards.
pub fn serve_throughput(scale: Scale) -> Vec<Table> {
    let spec = DatasetPreset::NewYork.spec(scale.dataset_scale());
    let net = spec.generate().expect("dataset generation");
    let graph = net.graph;
    let workload = QueryWorkload::generate(
        &graph,
        QueryWorkloadConfig::new(scale.default_num_queries(), 2),
        0x5E11,
    );

    let mut table = Table::new(
        format!(
            "serve: closed-loop throughput vs shards ({}, {} vertices, Nq = {})",
            spec.preset.short_name(),
            graph.num_vertices(),
            workload.len()
        ),
        &[
            "shards",
            "clients",
            "completed",
            "rejected",
            "qps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "hit_rate",
            "epochs",
            "q_high_water",
        ],
    );

    for &shards in &[1usize, 2, 4, 8] {
        let service = QueryService::start(
            graph.clone(),
            ServiceConfig::new(shards, DtlpConfig::new(spec.default_z, 2)),
        )
        .expect("service start");
        let clients = shards * 2;
        let requests_per_client = (workload.len() * 2 / clients).max(1);
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 0xE9);
        let report = run_closed_loop(
            &service,
            &workload,
            Some(&mut traffic),
            LoadDriverConfig::new(clients, requests_per_client)
                .with_updates_every(Duration::from_millis(10)),
        );
        table.row(vec![
            shards.to_string(),
            clients.to_string(),
            report.completed.to_string(),
            report.rejected.to_string(),
            f2(report.throughput_qps()),
            f2(report.metrics.p50.as_secs_f64() * 1e3),
            f2(report.metrics.p95.as_secs_f64() * 1e3),
            f2(report.metrics.p99.as_secs_f64() * 1e3),
            f2(report.metrics.cache_hit_rate()),
            report.epochs_published.to_string(),
            // Deepest backlog any shard saw: the admission-control signal.
            service.queue_gauges().iter().map(|g| g.high_water).max().unwrap_or(0).to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_throughput_reports_all_shard_counts() {
        let tables = serve_throughput(Scale::Tiny);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].num_rows(), 4);
    }
}
