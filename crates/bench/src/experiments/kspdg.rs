//! Experiments on KSP-DG query processing (Figures 24–34).

use crate::experiments::datasets_for;
use crate::report::{f2, ms, Table};
use crate::Scale;
use ksp_cluster::cluster::{Cluster, ClusterConfig, QuerySpec};
use ksp_core::dtlp::{DtlpConfig, DtlpIndex};
use ksp_core::kspdg::KspDgEngine;
use ksp_workload::{
    DatasetPreset, QueryWorkload, QueryWorkloadConfig, TrafficConfig, TrafficModel,
};
use std::time::Instant;

/// Default number of servers in the simulated cluster (the paper uses 10).
const DEFAULT_SERVERS: usize = 10;

fn iteration_k(scale: Scale) -> usize {
    // The paper measures iteration counts at k = 50 where the effect is visible; the
    // tiny scale uses a smaller k to stay fast.
    match scale {
        Scale::Tiny => 8,
        _ => 20,
    }
}

fn query_specs(workload: &QueryWorkload) -> Vec<QuerySpec> {
    workload.iter().map(|q| QuerySpec { source: q.source, target: q.target, k: q.k }).collect()
}

/// Shared helper: average number of iterations over a query workload after applying a
/// traffic snapshot with the given α and τ, for an index built with the given ξ.
fn mean_iterations(
    preset: DatasetPreset,
    scale: Scale,
    xi: usize,
    alpha: f64,
    tau: f64,
    k: usize,
) -> f64 {
    let spec = preset.spec(scale.dataset_scale());
    let net = spec.generate().expect("dataset generation");
    let mut graph = net.graph;
    let mut index =
        DtlpIndex::build(&graph, DtlpConfig::new(spec.default_z, xi)).expect("index build");
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(alpha, tau), 0xAB);
    let batch = traffic.next_snapshot();
    graph.apply_batch(&batch).expect("graph update");
    index.apply_batch(&batch).expect("index update");

    let nq = match scale {
        Scale::Tiny => 10,
        _ => 40,
    };
    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(nq, k), 0xCD);
    let engine = KspDgEngine::new(&index);
    let total: usize =
        workload.iter().map(|q| engine.query(q.source, q.target, q.k).stats.iterations).sum();
    total as f64 / workload.len() as f64
}

/// Figure 24: number of iterations vs ξ.
pub fn fig24(scale: Scale) -> Vec<Table> {
    let xis: Vec<usize> = match scale {
        Scale::Tiny => vec![1, 2, 4],
        _ => vec![1, 5, 10, 15],
    };
    let k = iteration_k(scale);
    let mut table = Table::new(
        format!("Figure 24: iterations vs xi (k={k}, alpha=30%, tau=50%)"),
        &["dataset", "xi", "mean iterations"],
    );
    for preset in datasets_for(scale) {
        for &xi in &xis {
            let iters = mean_iterations(preset, scale, xi, 0.3, 0.5, k);
            table.row(vec![preset.short_name().to_string(), xi.to_string(), f2(iters)]);
        }
    }
    vec![table]
}

/// Figure 25: number of iterations vs τ.
pub fn fig25(scale: Scale) -> Vec<Table> {
    let taus = [0.1, 0.3, 0.5, 0.7, 0.9];
    let k = iteration_k(scale);
    let mut table = Table::new(
        format!("Figure 25: iterations vs tau (k={k}, alpha=30%, xi=1)"),
        &["dataset", "tau", "mean iterations"],
    );
    for preset in datasets_for(scale) {
        for &tau in &taus {
            let iters = mean_iterations(preset, scale, 1, 0.3, tau, k);
            table.row(vec![
                preset.short_name().to_string(),
                format!("{}%", (tau * 100.0) as u32),
                f2(iters),
            ]);
        }
    }
    vec![table]
}

/// Figure 26: number of iterations vs k.
pub fn fig26(scale: Scale) -> Vec<Table> {
    let ks: Vec<usize> = match scale {
        Scale::Tiny => vec![2, 4, 8],
        _ => vec![10, 20, 30, 40, 50],
    };
    let mut table = Table::new(
        "Figure 26: iterations vs k (alpha=30%, tau=50%, xi=1)",
        &["dataset", "k", "mean iterations"],
    );
    for preset in datasets_for(scale) {
        for &k in &ks {
            let iters = mean_iterations(preset, scale, 1, 0.3, 0.5, k);
            table.row(vec![preset.short_name().to_string(), k.to_string(), f2(iters)]);
        }
    }
    vec![table]
}

/// Figure 27: number of iterations vs α.
pub fn fig27(scale: Scale) -> Vec<Table> {
    let alphas = [0.2, 0.3, 0.4, 0.5];
    let k = iteration_k(scale);
    let mut table = Table::new(
        format!("Figure 27: iterations vs alpha (k={k}, tau=90%, xi=1)"),
        &["dataset", "alpha", "mean iterations"],
    );
    for preset in datasets_for(scale) {
        for &alpha in &alphas {
            let iters = mean_iterations(preset, scale, 1, alpha, 0.9, k);
            table.row(vec![
                preset.short_name().to_string(),
                format!("{}%", (alpha * 100.0) as u32),
                f2(iters),
            ]);
        }
    }
    vec![table]
}

/// Figures 28–31: batch query processing time vs z and k, per dataset.
pub fn fig28_31(scale: Scale) -> Vec<Table> {
    let ks: Vec<usize> = match scale {
        Scale::Tiny => vec![2, 4],
        _ => vec![2, 4, 6, 8, 10],
    };
    let nq = scale.default_num_queries();
    let xi = match scale {
        Scale::Tiny => 2,
        _ => 10,
    };
    let mut table = Table::new(
        format!("Figures 28-31: processing time (ms) of {nq} queries vs z and k (xi={xi})"),
        &[
            "dataset",
            "z",
            "k",
            "wall clock (ms)",
            "simulated 10-server makespan (ms)",
            "mean iterations",
        ],
    );
    for preset in datasets_for(scale) {
        let spec = preset.spec(scale.dataset_scale());
        let net = spec.generate().expect("dataset generation");
        let workload = QueryWorkload::generate(&net.graph, QueryWorkloadConfig::new(nq, 2), 0x31);
        for z in spec.z_sweep() {
            let (cluster, _) = Cluster::build(
                &net.graph,
                ClusterConfig::new(DEFAULT_SERVERS, DtlpConfig::new(z, xi)),
            )
            .expect("cluster build");
            for &k in &ks {
                let specs = query_specs(&workload.with_k(k));
                let report = cluster.process_queries(&specs);
                table.row(vec![
                    preset.short_name().to_string(),
                    z.to_string(),
                    k.to_string(),
                    ms(report.wall_clock),
                    ms(report.simulated_makespan()),
                    f2(report.mean_iterations()),
                ]);
            }
        }
    }
    vec![table]
}

/// Figure 32: processing time vs number of concurrent queries.
pub fn fig32(scale: Scale) -> Vec<Table> {
    let mut table = Table::new(
        "Figure 32: processing time vs number of queries (k=2, xi=10 scaled)",
        &["dataset", "Nq", "wall clock (ms)", "simulated 10-server makespan (ms)"],
    );
    let xi = match scale {
        Scale::Tiny => 2,
        _ => 10,
    };
    for preset in datasets_for(scale) {
        let spec = preset.spec(scale.dataset_scale());
        let net = spec.generate().expect("dataset generation");
        let (cluster, _) = Cluster::build(
            &net.graph,
            ClusterConfig::new(DEFAULT_SERVERS, DtlpConfig::new(spec.default_z, xi)),
        )
        .expect("cluster build");
        let max_nq = *scale.nq_sweep().last().unwrap();
        let workload =
            QueryWorkload::generate(&net.graph, QueryWorkloadConfig::new(max_nq, 2), 0x32);
        for nq in scale.nq_sweep() {
            let specs = query_specs(&workload.prefix(nq));
            let report = cluster.process_queries(&specs);
            table.row(vec![
                preset.short_name().to_string(),
                nq.to_string(),
                ms(report.wall_clock),
                ms(report.simulated_makespan()),
            ]);
        }
    }
    vec![table]
}

/// Figure 33: processing time vs ξ (NY dataset, several k).
pub fn fig33(scale: Scale) -> Vec<Table> {
    let xis: Vec<usize> = match scale {
        Scale::Tiny => vec![1, 2, 4],
        _ => vec![1, 5, 10, 15],
    };
    let ks: Vec<usize> = match scale {
        Scale::Tiny => vec![5, 10],
        _ => vec![10, 20, 30, 40, 50],
    };
    let preset = DatasetPreset::NewYork;
    let spec = preset.spec(scale.dataset_scale());
    let net = spec.generate().expect("dataset generation");
    let mut graph = net.graph;
    let nq = match scale {
        Scale::Tiny => 20,
        _ => 100,
    };
    let mut table = Table::new(
        format!("Figure 33: processing time vs xi (NY, Nq={nq}, alpha=30%, tau=90%)"),
        &["xi", "k", "wall clock (ms)"],
    );
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.3, 0.9), 0x33);
    let batch = traffic.next_snapshot();
    graph.apply_batch(&batch).expect("graph update");
    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(nq, 2), 0x33);
    for &xi in &xis {
        let mut index =
            DtlpIndex::build(&graph, DtlpConfig::new(spec.default_z, xi)).expect("index build");
        index.apply_batch(&batch).expect("index update");
        let engine = KspDgEngine::new(&index);
        for &k in &ks {
            let t0 = Instant::now();
            for q in workload.iter() {
                let _ = engine.query(q.source, q.target, k);
            }
            table.row(vec![xi.to_string(), k.to_string(), ms(t0.elapsed())]);
        }
    }
    vec![table]
}

/// Figure 34: processing time vs τ (NY dataset, several k).
pub fn fig34(scale: Scale) -> Vec<Table> {
    let taus = [0.1, 0.3, 0.5, 0.7, 0.9];
    let ks: Vec<usize> = match scale {
        Scale::Tiny => vec![5, 10],
        _ => vec![10, 20, 30, 40, 50],
    };
    let preset = DatasetPreset::NewYork;
    let spec = preset.spec(scale.dataset_scale());
    let net = spec.generate().expect("dataset generation");
    let nq = match scale {
        Scale::Tiny => 20,
        _ => 100,
    };
    let xi = match scale {
        Scale::Tiny => 2,
        _ => 10,
    };
    let mut table = Table::new(
        format!("Figure 34: processing time vs tau (NY, Nq={nq}, alpha=30%, xi={xi})"),
        &["tau", "k", "wall clock (ms)"],
    );
    for &tau in &taus {
        let mut graph = net.graph.clone();
        let mut index =
            DtlpIndex::build(&graph, DtlpConfig::new(spec.default_z, xi)).expect("index build");
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.3, tau), 0x34);
        let batch = traffic.next_snapshot();
        graph.apply_batch(&batch).expect("graph update");
        index.apply_batch(&batch).expect("index update");
        let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(nq, 2), 0x34);
        let engine = KspDgEngine::new(&index);
        for &k in &ks {
            let t0 = Instant::now();
            for q in workload.iter() {
                let _ = engine.query(q.source, q.target, k);
            }
            table.row(vec![format!("{}%", (tau * 100.0) as u32), k.to_string(), ms(t0.elapsed())]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig26_iterations_grow_or_stay_flat_with_k() {
        let tables = fig26(Scale::Tiny);
        assert!(tables[0].num_rows() >= 3);
    }
}
