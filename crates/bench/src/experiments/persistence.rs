//! Persistence experiment: what the storage subsystem buys a cold-starting
//! service.
//!
//! For each dataset the experiment builds the DTLP index, initialises a store,
//! publishes a run of logged traffic epochs with periodic checkpoints, then
//! measures the two cold-start paths side by side: a full `DtlpIndex::build`
//! versus `Store::recover` (newest checkpoint + log replay). It also reports
//! the on-disk footprint and runs `Store::verify` so the operator-facing
//! integrity check is exercised end to end.

use crate::report::{f2, Table};
use crate::Scale;
use ksp_core::dtlp::{DtlpConfig, DtlpIndex};
use ksp_store::{Store, StoreConfig, SyncPolicy};
use ksp_workload::{TrafficConfig, TrafficModel};
use std::path::PathBuf;
use std::time::Instant;

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ksp-persistence-exp-{tag}-{}", std::process::id()))
}

fn dir_size_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries.filter_map(|e| e.ok()).filter_map(|e| e.metadata().ok()).map(|m| m.len()).sum()
        })
        .unwrap_or(0)
}

/// Cold-start-from-checkpoint vs full rebuild, plus store footprint and the
/// integrity report.
pub fn persistence(scale: Scale) -> Vec<Table> {
    let mut table = Table::new(
        "persistence: cold start from checkpoint+log vs full index rebuild",
        &[
            "dataset",
            "vertices",
            "edges",
            "epochs",
            "build_ms",
            "recover_ms",
            "speedup",
            "replayed",
            "partials",
            "ckpt_epoch",
            "full_img_kib",
            "part_img_kib",
            "disk_kib",
            "verify",
        ],
    );
    for preset in super::datasets_for(scale) {
        let spec = preset.spec(scale.dataset_scale());
        let net = spec.generate().expect("dataset generation");
        let mut graph = net.graph;
        let dtlp = DtlpConfig::new(spec.default_z, 2);

        let build_started = Instant::now();
        let mut index = DtlpIndex::build(&graph, dtlp).expect("index build");
        let build_time = build_started.elapsed();

        let dir = scratch_dir(preset.short_name());
        let _ = std::fs::remove_dir_all(&dir);
        let store_config = StoreConfig {
            checkpoint_interval: 4,
            sync: SyncPolicy::Always,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, store_config, 0, &graph, &index).expect("store create");

        // Publish a run of logged epochs with periodic image commits under
        // the rebase policy, exactly as the service's background checkpointer
        // does: incremental images while the chain is short, a full rebase
        // when it is not. The run leaves a log suffix to replay, so recovery
        // exercises the checkpoint, the image chain and the log path.
        let num_epochs = 6u64;
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 0xD15C);
        let mut dirty = Vec::new();
        let (mut full_image_bytes, mut partial_image_bytes) = (0u64, 0u64);
        for _ in 0..num_epochs {
            let batch = traffic.next_snapshot();
            let epoch = graph.apply_batch(&batch).expect("graph update");
            let stats = index.apply_batch(&batch).expect("index maintenance");
            dirty.extend(stats.dirty_subgraphs);
            store.log_batch(epoch, &batch).expect("log append");
            if store_config.is_checkpoint_epoch(epoch) {
                let encoded = if store.next_image_must_be_full() {
                    Store::encode_checkpoint(epoch, &graph, &index)
                } else {
                    Store::encode_partial_checkpoint(
                        epoch,
                        store.last_image_epoch(),
                        &graph,
                        &index,
                        &dirty,
                    )
                };
                match encoded.kind {
                    ksp_store::ImageKind::Full => full_image_bytes += encoded.len() as u64,
                    ksp_store::ImageKind::Partial { .. } => {
                        partial_image_bytes += encoded.len() as u64
                    }
                }
                store.commit_checkpoint(&encoded).expect("image commit");
                dirty.clear();
            }
        }
        drop(store);

        let recover_started = Instant::now();
        let (_store, recovered) = Store::recover(&dir, store_config).expect("recover");
        let recover_time = recover_started.elapsed();
        assert_eq!(recovered.epoch, num_epochs);

        let verify = Store::verify(&dir).expect("verify");
        table.row(vec![
            preset.short_name().to_string(),
            recovered.graph.num_vertices().to_string(),
            recovered.graph.num_edges().to_string(),
            num_epochs.to_string(),
            f2(build_time.as_secs_f64() * 1e3),
            f2(recover_time.as_secs_f64() * 1e3),
            f2(build_time.as_secs_f64() / recover_time.as_secs_f64().max(1e-9)),
            recovered.report.batches_replayed.to_string(),
            recovered.report.partial_images_applied.to_string(),
            recovered.report.checkpoint_epoch.to_string(),
            (full_image_bytes / 1024).to_string(),
            (partial_image_bytes / 1024).to_string(),
            (dir_size_bytes(&dir) / 1024).to_string(),
            if verify.recoverable { "ok".to_string() } else { "DAMAGED".to_string() },
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persistence_reports_every_dataset() {
        let tables = persistence(Scale::Tiny);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].num_rows(), super::super::datasets_for(Scale::Tiny).len());
    }
}
