//! Ablation study over the design choices called out in `DESIGN.md`:
//! vfrag-based bounds vs edge-count bounds (approximated by ξ = 1 with a single
//! bounding path), the number of bounding paths ξ, the EP-Index vs MFP-tree backend,
//! and the cross-iteration partial-path cache.

use crate::report::{f2, mib, ms, Table};
use crate::Scale;
use ksp_core::dtlp::{DtlpConfig, DtlpIndex};
use ksp_core::kspdg::{KspDgConfig, KspDgEngine};
use ksp_workload::{
    DatasetPreset, QueryWorkload, QueryWorkloadConfig, TrafficConfig, TrafficModel,
};
use std::time::Instant;

/// Runs the full ablation and returns one table per studied choice.
pub fn run(scale: Scale) -> Vec<Table> {
    let preset = DatasetPreset::NewYork;
    let spec = preset.spec(scale.dataset_scale());
    let net = spec.generate().expect("dataset generation");
    let mut graph = net.graph;
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.4, 0.6), 0xAB1);
    let batch = traffic.next_snapshot();
    graph.apply_batch(&batch).expect("graph update");
    let nq = match scale {
        Scale::Tiny => 15,
        _ => 60,
    };
    let k = match scale {
        Scale::Tiny => 4,
        _ => 10,
    };
    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(nq, k), 0xAB2);

    // --- ξ sweep: bound tightness vs query iterations and maintenance cost. ---
    let mut xi_table = Table::new(
        format!("Ablation: number of bounding paths xi (NY, k={k}, Nq={nq})"),
        &["xi", "mean iterations", "query time (ms)", "maintenance time (ms)", "index (MiB)"],
    );
    for xi in [1usize, 2, 4, 8] {
        let mut index =
            DtlpIndex::build(&graph, DtlpConfig::new(spec.default_z, xi)).expect("build");
        let t_m = Instant::now();
        index.apply_batch(&batch).expect("maintenance");
        let maintenance = t_m.elapsed();
        let engine = KspDgEngine::new(&index);
        let t_q = Instant::now();
        let total_iters: usize =
            workload.iter().map(|q| engine.query(q.source, q.target, q.k).stats.iterations).sum();
        let query_time = t_q.elapsed();
        xi_table.row(vec![
            xi.to_string(),
            f2(total_iters as f64 / workload.len() as f64),
            ms(query_time),
            ms(maintenance),
            mib(index.level1_memory_bytes()),
        ]);
    }

    // --- EP-Index vs MFP-tree backend: memory and maintenance. ---
    let mut backend_table = Table::new(
        "Ablation: EP-Index vs MFP-tree storage backend (NY)",
        &["backend", "index memory (MiB)", "build time (ms)", "maintenance time (ms)"],
    );
    for (name, cfg) in [
        ("EP-Index", DtlpConfig::new(spec.default_z, 4)),
        ("MFP-tree", DtlpConfig::new(spec.default_z, 4).with_mfp_backend()),
    ] {
        let t_b = Instant::now();
        let mut index = DtlpIndex::build(&graph, cfg).expect("build");
        let build = t_b.elapsed();
        let t_m = Instant::now();
        index.apply_batch(&batch).expect("maintenance");
        backend_table.row(vec![
            name.to_string(),
            mib(index.level1_memory_bytes()),
            ms(build),
            ms(t_m.elapsed()),
        ]);
    }

    // --- Partial-path cache on/off. ---
    let mut cache_table = Table::new(
        format!("Ablation: cross-iteration partial-path cache (NY, k={k}, Nq={nq})"),
        &["cache", "query time (ms)", "partial computations"],
    );
    let index = {
        let mut idx = DtlpIndex::build(&graph, DtlpConfig::new(spec.default_z, 2)).expect("build");
        idx.apply_batch(&batch).expect("maintenance");
        idx
    };
    for (name, cache) in [("enabled", true), ("disabled", false)] {
        let engine = KspDgEngine::with_config(
            &index,
            KspDgConfig { cache_partials: cache, ..Default::default() },
        );
        let t0 = Instant::now();
        let partials: usize = workload
            .iter()
            .map(|q| engine.query(q.source, q.target, q.k).stats.partial_computations)
            .sum();
        cache_table.row(vec![name.to_string(), ms(t0.elapsed()), partials.to_string()]);
    }

    vec![xi_table, backend_table, cache_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_produces_three_tables() {
        let tables = run(Scale::Tiny);
        assert_eq!(tables.len(), 3);
        assert!(tables.iter().all(|t| t.num_rows() >= 2));
    }
}
