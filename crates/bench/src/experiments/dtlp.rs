//! Experiments on DTLP construction and maintenance (Table 1, Table 3, Figures 15–23).

use crate::experiments::datasets_for;
use crate::report::{f2, mib, ms, Table};
use crate::Scale;
use ksp_core::dtlp::{DtlpConfig, DtlpIndex};
use ksp_workload::{
    DatasetPreset, RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig, TrafficModel,
};
use std::time::Instant;

fn default_xi(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 2,
        _ => 5,
    }
}

/// Table 1: dataset statistics, number of subgraphs (and with > 5 boundary vertices),
/// and skeleton size at the default z.
pub fn table1(scale: Scale) -> Vec<Table> {
    let mut table = Table::new(
        "Table 1: road network datasets (scaled) and partitioning statistics",
        &[
            "dataset",
            "vertices",
            "edges",
            "z",
            "#subgraphs",
            "#subgraphs(nb>5)",
            "skeleton vertices",
        ],
    );
    for preset in datasets_for(scale) {
        let spec = preset.spec(scale.dataset_scale());
        let net = spec.generate().expect("dataset generation");
        let index =
            DtlpIndex::build(&net.graph, DtlpConfig::new(spec.default_z, 1)).expect("index build");
        let stats = index.build_stats();
        table.row(vec![
            preset.short_name().to_string(),
            net.graph.num_vertices().to_string(),
            net.graph.num_edges().to_string(),
            spec.default_z.to_string(),
            stats.num_subgraphs.to_string(),
            stats.num_subgraphs_boundary_over_5.to_string(),
            stats.num_boundary_vertices.to_string(),
        ]);
    }
    vec![table]
}

/// Table 3: number of skeleton vertices as z varies.
pub fn table3(scale: Scale) -> Vec<Table> {
    let mut table = Table::new(
        "Table 3: skeleton graph size with varying z",
        &["dataset", "z", "skeleton vertices", "skeleton edges", "#subgraphs"],
    );
    for preset in datasets_for(scale) {
        let spec = preset.spec(scale.dataset_scale());
        let net = spec.generate().expect("dataset generation");
        for z in spec.z_sweep() {
            let index = DtlpIndex::build(&net.graph, DtlpConfig::new(z, 1)).expect("index build");
            table.row(vec![
                preset.short_name().to_string(),
                z.to_string(),
                index.build_stats().num_boundary_vertices.to_string(),
                index.skeleton().num_skeleton_edges().to_string(),
                index.num_subgraphs().to_string(),
            ]);
        }
    }
    vec![table]
}

/// Figures 15–18: DTLP construction time and memory vs z, for every dataset, plus the
/// directed-vs-undirected comparison the paper runs on CUSA.
pub fn fig15_18(scale: Scale) -> Vec<Table> {
    let xi = default_xi(scale);
    let mut table = Table::new(
        format!("Figures 15-18: DTLP construction cost vs z (xi = {xi})"),
        &["dataset", "z", "build time (ms)", "EP-Index (MiB)", "skeleton (MiB)", "#bounding paths"],
    );
    for preset in datasets_for(scale) {
        let spec = preset.spec(scale.dataset_scale());
        let net = spec.generate().expect("dataset generation");
        for z in spec.z_sweep() {
            let t0 = Instant::now();
            let index = DtlpIndex::build(&net.graph, DtlpConfig::new(z, xi)).expect("index build");
            let elapsed = t0.elapsed();
            table.row(vec![
                preset.short_name().to_string(),
                z.to_string(),
                ms(elapsed),
                mib(index.level1_memory_bytes()),
                mib(index.skeleton_memory_bytes()),
                index.build_stats().num_bounding_paths.to_string(),
            ]);
        }
    }

    // Directed vs undirected (Figure 18 inset): the largest dataset at its default z.
    let mut directed_table = Table::new(
        "Figure 18 (inset): directed vs undirected construction",
        &["dataset", "variant", "z", "build time (ms)"],
    );
    let preset = *datasets_for(scale).last().expect("at least one dataset");
    let spec = preset.spec(scale.dataset_scale());
    let undirected = spec.generate().expect("dataset generation");
    let directed = spec.generate_directed().expect("dataset generation");
    for (variant, graph) in [("undirected", &undirected.graph), ("directed", &directed.graph)] {
        let t0 = Instant::now();
        let _ = DtlpIndex::build(graph, DtlpConfig::new(spec.default_z, xi)).expect("index build");
        directed_table.row(vec![
            preset.short_name().to_string(),
            variant.to_string(),
            spec.default_z.to_string(),
            ms(t0.elapsed()),
        ]);
    }
    vec![table, directed_table]
}

/// Figure 19: maintenance cost vs z, directed vs undirected.
pub fn fig19(scale: Scale) -> Vec<Table> {
    let xi = default_xi(scale);
    let mut table = Table::new(
        "Figure 19: DTLP maintenance time vs z, directed vs undirected (alpha=50%, tau=50%)",
        &["dataset", "variant", "z", "maintenance time (ms)", "paths touched"],
    );
    let preset = *datasets_for(scale).last().expect("at least one dataset");
    let spec = preset.spec(scale.dataset_scale());
    for directed in [false, true] {
        let net =
            if directed { spec.generate_directed() } else { spec.generate() }.expect("dataset");
        for z in spec.z_sweep() {
            let mut index =
                DtlpIndex::build(&net.graph, DtlpConfig::new(z, xi)).expect("index build");
            let mut traffic = TrafficModel::new(&net.graph, TrafficConfig::new(0.5, 0.5), 101);
            let batch = traffic.next_snapshot();
            let t0 = Instant::now();
            let stats = index.apply_batch(&batch).expect("maintenance");
            table.row(vec![
                preset.short_name().to_string(),
                if directed { "directed" } else { "undirected" }.to_string(),
                z.to_string(),
                ms(t0.elapsed()),
                stats.paths_touched.to_string(),
            ]);
        }
    }
    vec![table]
}

/// Figure 20: build and maintenance time vs graph size Ng.
pub fn fig20(scale: Scale) -> Vec<Table> {
    let sizes: Vec<usize> = match scale {
        Scale::Tiny => vec![200, 400, 600, 800],
        Scale::Small => vec![1000, 2000, 3000, 4000, 5000],
        Scale::Medium => vec![4000, 8000, 12000, 16000, 20000],
    };
    let mut table = Table::new(
        "Figure 20: DTLP build and maintenance time vs graph size (xi=10 scaled, alpha=50%)",
        &["Ng (vertices)", "build time (ms)", "maintenance time (ms)"],
    );
    let xi = default_xi(scale) * 2;
    for n in sizes {
        let net = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(n))
            .generate(0x000F_1620)
            .expect("network generation");
        let z = (n / 20).clamp(10, 400);
        let t0 = Instant::now();
        let mut index = DtlpIndex::build(&net.graph, DtlpConfig::new(z, xi)).expect("index build");
        let build = t0.elapsed();
        let mut traffic = TrafficModel::new(&net.graph, TrafficConfig::new(0.5, 0.5), 7);
        let batch = traffic.next_snapshot();
        let t1 = Instant::now();
        index.apply_batch(&batch).expect("maintenance");
        table.row(vec![net.graph.num_vertices().to_string(), ms(build), ms(t1.elapsed())]);
    }
    vec![table]
}

/// Figure 21: update throughput (edges/s) and per-update latency vs graph size.
pub fn fig21(scale: Scale) -> Vec<Table> {
    let sizes: Vec<usize> = match scale {
        Scale::Tiny => vec![200, 400, 600],
        Scale::Small => vec![1000, 2000, 3000, 4000, 5000],
        Scale::Medium => vec![4000, 8000, 12000, 16000, 20000],
    };
    let rounds = match scale {
        Scale::Tiny => 5,
        _ => 20,
    };
    let mut table = Table::new(
        "Figure 21: update throughput and per-update latency vs graph size",
        &["Ng (vertices)", "updates applied", "throughput (edges/s)", "per-update latency (us)"],
    );
    let xi = default_xi(scale) * 2;
    for n in sizes {
        let net = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(n))
            .generate(0x000F_1621)
            .expect("network generation");
        let z = (n / 20).clamp(10, 400);
        let mut index = DtlpIndex::build(&net.graph, DtlpConfig::new(z, xi)).expect("index build");
        let mut traffic = TrafficModel::new(&net.graph, TrafficConfig::new(0.5, 0.5), 11);
        let mut total_updates = 0usize;
        let t0 = Instant::now();
        for _ in 0..rounds {
            let batch = traffic.next_snapshot();
            total_updates += batch.len();
            index.apply_batch(&batch).expect("maintenance");
        }
        let elapsed = t0.elapsed();
        let throughput = total_updates as f64 / elapsed.as_secs_f64();
        let latency_us = elapsed.as_secs_f64() * 1e6 / total_updates.max(1) as f64;
        table.row(vec![
            net.graph.num_vertices().to_string(),
            total_updates.to_string(),
            f2(throughput),
            f2(latency_us),
        ]);
    }
    vec![table]
}

/// Figure 22: maintenance time vs ξ.
pub fn fig22(scale: Scale) -> Vec<Table> {
    let xis: Vec<usize> = match scale {
        Scale::Tiny => vec![1, 2, 4, 6],
        _ => vec![5, 10, 15, 20, 25, 30],
    };
    let mut table = Table::new(
        "Figure 22: DTLP maintenance time vs xi (alpha=50%, tau=50%)",
        &["dataset", "xi", "maintenance time (ms)", "paths touched"],
    );
    for preset in datasets_for(scale) {
        if preset == DatasetPreset::CentralUsa {
            continue; // the paper's Figure 22 shows NY, COL and FLA only
        }
        let spec = preset.spec(scale.dataset_scale());
        let net = spec.generate().expect("dataset generation");
        for &xi in &xis {
            let mut index =
                DtlpIndex::build(&net.graph, DtlpConfig::new(spec.default_z, xi)).expect("build");
            let mut traffic = TrafficModel::new(&net.graph, TrafficConfig::new(0.5, 0.5), 23);
            let batch = traffic.next_snapshot();
            let t0 = Instant::now();
            let stats = index.apply_batch(&batch).expect("maintenance");
            table.row(vec![
                preset.short_name().to_string(),
                xi.to_string(),
                ms(t0.elapsed()),
                stats.paths_touched.to_string(),
            ]);
        }
    }
    vec![table]
}

/// Figure 23: maintenance time vs α.
pub fn fig23(scale: Scale) -> Vec<Table> {
    let alphas = [0.1, 0.2, 0.3, 0.4, 0.5];
    let xi = default_xi(scale) * 2;
    let mut table = Table::new(
        "Figure 23: DTLP maintenance time vs alpha (xi=10 scaled, tau=50%)",
        &["dataset", "alpha", "updates", "maintenance time (ms)"],
    );
    for preset in datasets_for(scale) {
        if preset == DatasetPreset::CentralUsa {
            continue; // matches the paper's figure
        }
        let spec = preset.spec(scale.dataset_scale());
        let net = spec.generate().expect("dataset generation");
        let base_index =
            DtlpIndex::build(&net.graph, DtlpConfig::new(spec.default_z, xi)).expect("build");
        for &alpha in &alphas {
            let mut index = base_index.clone();
            let mut traffic = TrafficModel::new(&net.graph, TrafficConfig::new(alpha, 0.5), 29);
            let batch = traffic.next_snapshot();
            let t0 = Instant::now();
            index.apply_batch(&batch).expect("maintenance");
            table.row(vec![
                preset.short_name().to_string(),
                format!("{}%", (alpha * 100.0) as u32),
                batch.len().to_string(),
                ms(t0.elapsed()),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_produces_one_row_per_dataset() {
        let tables = table1(Scale::Tiny);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].num_rows(), datasets_for(Scale::Tiny).len());
    }

    #[test]
    fn fig20_rows_cover_all_sizes() {
        let tables = fig20(Scale::Tiny);
        assert_eq!(tables[0].num_rows(), 4);
        assert!(tables[0].render().contains("build time"));
    }
}
