//! Plain-text reporting of experiment results: aligned tables and CSV.

use std::fmt::Write as _;

/// A simple column-aligned table used by every experiment to print its rows.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; the number of cells must match the number of headers.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch in table '{}'", self.title);
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:<width$}", h, width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header_line.join("  "));
        let _ = writeln!(
            out,
            "{}",
            widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  ")
        );
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Renders the table as CSV (title as a comment line).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a duration in milliseconds with three decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Formats a byte count as mebibytes with two decimals.
pub fn mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table_renders_with_alignment_and_csv() {
        let mut t = Table::new("Figure 0: demo", &["dataset", "value"]);
        t.row(vec!["NY".into(), "1.0".into()]);
        t.row(vec!["CUSA".into(), "123.45".into()]);
        let rendered = t.render();
        assert!(rendered.contains("Figure 0: demo"));
        assert!(rendered.contains("dataset"));
        assert!(rendered.contains("CUSA"));
        assert_eq!(t.num_rows(), 2);
        let csv = t.to_csv();
        assert!(csv.contains("dataset,value"));
        assert!(csv.contains("CUSA,123.45"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn mismatched_rows_are_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.000");
        assert_eq!(mib(1024 * 1024), "1.00");
        assert_eq!(f2(1.2345), "1.23");
    }
}
