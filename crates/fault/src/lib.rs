//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] is a schedule of faults armed at typed [`FaultPoint`]s.
//! Consumers (the store's I/O backend, the transport wrapper) call
//! [`FaultPlan::next`] at each operation; the plan counts operations per
//! point and answers with a [`FaultAction`] when the armed [`Schedule`]
//! fires. Everything — including probabilistic schedules — is driven by a
//! seeded xorshift generator, so the same seed over the same operation
//! sequence produces the same injection log, byte for byte. That log is
//! queryable ([`FaultPlan::injections`], [`FaultPlan::fingerprint`]) so a
//! chaos test can *assert* reproducibility rather than hope for it.
//!
//! The crate is dependency-free (std only) so every layer of the workspace
//! can take it as a dev- or cfg-gated dependency without cycles.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A typed boundary where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultPoint {
    /// A WAL record (or segment header) write.
    WalWrite,
    /// A WAL fsync (`sync_data` / `sync_all` on a segment file).
    WalFsync,
    /// A checkpoint image write (staging a `.tmp` file).
    CheckpointWrite,
    /// A checkpoint image fsync.
    CheckpointFsync,
    /// Sending a request over a transport.
    NetSend,
    /// Receiving a response over a transport.
    NetRecv,
}

impl FaultPoint {
    /// Every point, for iteration in reports.
    pub const ALL: [FaultPoint; 6] = [
        FaultPoint::WalWrite,
        FaultPoint::WalFsync,
        FaultPoint::CheckpointWrite,
        FaultPoint::CheckpointFsync,
        FaultPoint::NetSend,
        FaultPoint::NetRecv,
    ];

    /// Stable label (used in metrics and the injection log).
    pub fn label(self) -> &'static str {
        match self {
            FaultPoint::WalWrite => "wal_write",
            FaultPoint::WalFsync => "wal_fsync",
            FaultPoint::CheckpointWrite => "checkpoint_write",
            FaultPoint::CheckpointFsync => "checkpoint_fsync",
            FaultPoint::NetSend => "net_send",
            FaultPoint::NetRecv => "net_recv",
        }
    }
}

impl fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What happens when a schedule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The operation fails with a generic I/O error.
    Fail,
    /// A write persists only the first `keep` bytes, then fails.
    ShortWrite { keep: usize },
    /// The operation fails with `ENOSPC` (disk full).
    Enospc,
    /// Post-crash damage: the tail of the file loses `bytes` bytes.
    /// (Applied by the crash simulator between kill and recover, not by the
    /// live I/O path.)
    TornTail { bytes: usize },
    /// Post-crash damage: one bit flips at `offset` bytes from the end.
    BitFlip { offset: usize },
    /// The operation is delayed by `ms` milliseconds, then succeeds.
    DelayMs { ms: u64 },
    /// A transport drops the reply: the request may have been applied, but
    /// the caller sees a connection error.
    DropReply,
    /// A transport delivers the previous reply again (duplicate delivery).
    DuplicateReply,
    /// The connection is severed: this and every later operation on the
    /// transport fails until it is healed.
    Sever,
}

impl FaultAction {
    /// Stable label for logs and metrics.
    pub fn label(self) -> &'static str {
        match self {
            FaultAction::Fail => "fail",
            FaultAction::ShortWrite { .. } => "short_write",
            FaultAction::Enospc => "enospc",
            FaultAction::TornTail { .. } => "torn_tail",
            FaultAction::BitFlip { .. } => "bit_flip",
            FaultAction::DelayMs { .. } => "delay",
            FaultAction::DropReply => "drop_reply",
            FaultAction::DuplicateReply => "duplicate_reply",
            FaultAction::Sever => "sever",
        }
    }

    /// Renders this action as the `std::io::Error` a faulted storage
    /// operation reports. `ShortWrite` callers should write the prefix first
    /// and then fail with this.
    pub fn to_io_error(self) -> std::io::Error {
        match self {
            FaultAction::Enospc => std::io::Error::from_raw_os_error(28), // ENOSPC
            other => std::io::Error::other(format!("injected fault: {}", other.label())),
        }
    }
}

/// When an armed fault fires, in terms of the per-point operation count
/// (1-based: the first operation at a point is operation 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Fire exactly once, on the `n`th operation.
    Nth(u64),
    /// Fire on every `n`th operation (n, 2n, 3n, ...).
    Every(u64),
    /// Fire each operation independently with probability `per_mille`/1000,
    /// drawn from the plan's seeded generator.
    PerMille(u32),
    /// Fire on every operation from the `n`th onward.
    From(u64),
}

/// One injected fault, as recorded in the plan's log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    pub point: FaultPoint,
    /// 1-based operation index at that point.
    pub op: u64,
    pub action: FaultAction,
}

#[derive(Debug)]
struct Arm {
    point: FaultPoint,
    schedule: Schedule,
    action: FaultAction,
    /// Set once a `Nth` arm has fired (it never fires again).
    spent: bool,
}

#[derive(Debug)]
struct Inner {
    seed: u64,
    rng: u64,
    arms: Vec<Arm>,
    /// Per-point operation counters (how many times `next` was called).
    ops: HashMap<FaultPoint, u64>,
    log: Vec<Injection>,
}

/// A seeded, deterministic fault schedule. Cloning shares the underlying
/// plan (counters, log, generator), so one plan can be threaded through
/// several components and still produce a single coherent schedule.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    inner: Arc<Mutex<Inner>>,
}

impl FaultPlan {
    /// A plan with no faults armed. `seed` drives probabilistic schedules.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            inner: Arc::new(Mutex::new(Inner {
                seed,
                // xorshift64 needs a non-zero state; fold the seed through a
                // splitmix-style multiply so nearby seeds diverge.
                rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
                arms: Vec::new(),
                ops: HashMap::new(),
                log: Vec::new(),
            })),
        }
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.inner.lock().unwrap().seed
    }

    /// Arms `action` at `point` on `schedule`. Multiple arms may target the
    /// same point; the first one (in arming order) that fires on a given
    /// operation wins.
    pub fn arm(&self, point: FaultPoint, schedule: Schedule, action: FaultAction) -> &Self {
        self.inner.lock().unwrap().arms.push(Arm { point, schedule, action, spent: false });
        self
    }

    /// Removes every arm at `point` — the "heal" half of a chaos scenario
    /// (e.g. a persistent [`Schedule::From`] disk fault whose repair the
    /// test then observes). Operation counters and the injection log are
    /// untouched, so fingerprints stay meaningful across the heal.
    pub fn disarm(&self, point: FaultPoint) -> &Self {
        self.inner.lock().unwrap().arms.retain(|a| a.point != point);
        self
    }

    /// Counts an operation at `point` and returns the fault to inject, if
    /// any armed schedule fires on it.
    pub fn next(&self, point: FaultPoint) -> Option<FaultAction> {
        let mut inner = self.inner.lock().unwrap();
        let op = inner.ops.entry(point).or_insert(0);
        *op += 1;
        let op = *op;
        // Draw exactly one random number per operation that *any*
        // probabilistic arm watches, so arming more probabilistic faults at
        // other points doesn't shift this point's draws.
        let has_prob = inner
            .arms
            .iter()
            .any(|a| a.point == point && matches!(a.schedule, Schedule::PerMille(_)));
        let draw = if has_prob { Some(Self::xorshift(&mut inner.rng)) } else { None };
        let mut fired: Option<(usize, FaultAction)> = None;
        for (i, arm) in inner.arms.iter().enumerate() {
            if arm.point != point || arm.spent {
                continue;
            }
            let fires = match arm.schedule {
                Schedule::Nth(n) => op == n,
                Schedule::Every(n) => n > 0 && op.is_multiple_of(n),
                Schedule::From(n) => op >= n,
                Schedule::PerMille(p) => draw.is_some_and(|d| (d % 1000) < u64::from(p.min(1000))),
            };
            if fires {
                fired = Some((i, arm.action));
                break;
            }
        }
        let (i, action) = fired?;
        if matches!(inner.arms[i].schedule, Schedule::Nth(_)) {
            inner.arms[i].spent = true;
        }
        inner.log.push(Injection { point, op, action });
        Some(action)
    }

    /// Total faults injected so far.
    pub fn injected_total(&self) -> u64 {
        self.inner.lock().unwrap().log.len() as u64
    }

    /// Faults injected at `point` so far.
    pub fn injected_at(&self, point: FaultPoint) -> u64 {
        self.inner.lock().unwrap().log.iter().filter(|i| i.point == point).count() as u64
    }

    /// The full injection log, in firing order.
    pub fn injections(&self) -> Vec<Injection> {
        self.inner.lock().unwrap().log.clone()
    }

    /// Operations observed at `point` (fired or not).
    pub fn ops_at(&self, point: FaultPoint) -> u64 {
        self.inner.lock().unwrap().ops.get(&point).copied().unwrap_or(0)
    }

    /// A stable hash of the injection log. Two runs with the same seed and
    /// the same operation sequence produce the same fingerprint; chaos tests
    /// assert this to prove the schedule is reproducible.
    pub fn fingerprint(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        let mut mix = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for inj in &inner.log {
            for b in [inj.point.label().as_bytes(), inj.action.label().as_bytes()] {
                for &byte in b {
                    mix(byte);
                }
                mix(0);
            }
            for byte in inj.op.to_le_bytes() {
                mix(byte);
            }
        }
        h
    }

    /// Draws a value from the plan's generator (used by consumers that need
    /// deterministic randomness tied to the plan, e.g. picking a flip
    /// offset).
    pub fn draw(&self) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        Self::xorshift(&mut inner.rng)
    }

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_fires_once() {
        let plan = FaultPlan::new(7);
        plan.arm(FaultPoint::WalFsync, Schedule::Nth(3), FaultAction::Fail);
        assert_eq!(plan.next(FaultPoint::WalFsync), None);
        assert_eq!(plan.next(FaultPoint::WalFsync), None);
        assert_eq!(plan.next(FaultPoint::WalFsync), Some(FaultAction::Fail));
        assert_eq!(plan.next(FaultPoint::WalFsync), None);
        assert_eq!(plan.injected_total(), 1);
        assert_eq!(plan.ops_at(FaultPoint::WalFsync), 4);
    }

    #[test]
    fn every_fires_periodically() {
        let plan = FaultPlan::new(7);
        plan.arm(FaultPoint::NetSend, Schedule::Every(2), FaultAction::DropReply);
        let fired: Vec<bool> = (0..6).map(|_| plan.next(FaultPoint::NetSend).is_some()).collect();
        assert_eq!(fired, [false, true, false, true, false, true]);
    }

    #[test]
    fn points_count_independently() {
        let plan = FaultPlan::new(1);
        plan.arm(FaultPoint::WalWrite, Schedule::Nth(1), FaultAction::Enospc);
        assert_eq!(plan.next(FaultPoint::WalFsync), None);
        assert_eq!(plan.next(FaultPoint::WalWrite), Some(FaultAction::Enospc));
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed: u64| {
            let plan = FaultPlan::new(seed);
            plan.arm(FaultPoint::NetRecv, Schedule::PerMille(300), FaultAction::Sever);
            for _ in 0..200 {
                plan.next(FaultPoint::NetRecv);
            }
            (plan.injections(), plan.fingerprint())
        };
        let (log_a, fp_a) = run(42);
        let (log_b, fp_b) = run(42);
        assert_eq!(log_a, log_b);
        assert_eq!(fp_a, fp_b);
        assert!(!log_a.is_empty(), "p=0.3 over 200 ops should fire");
        let (_, fp_c) = run(43);
        assert_ne!(fp_a, fp_c, "different seeds should diverge");
    }

    #[test]
    fn clones_share_state() {
        let plan = FaultPlan::new(9);
        plan.arm(FaultPoint::WalWrite, Schedule::Nth(2), FaultAction::Fail);
        let other = plan.clone();
        assert_eq!(other.next(FaultPoint::WalWrite), None);
        assert_eq!(plan.next(FaultPoint::WalWrite), Some(FaultAction::Fail));
        assert_eq!(other.injected_total(), 1);
    }

    #[test]
    fn disarm_heals_a_persistent_fault() {
        let plan = FaultPlan::new(3);
        plan.arm(FaultPoint::WalFsync, Schedule::From(1), FaultAction::Fail);
        assert!(plan.next(FaultPoint::WalFsync).is_some());
        assert!(plan.next(FaultPoint::WalFsync).is_some());
        plan.disarm(FaultPoint::WalFsync);
        assert_eq!(plan.next(FaultPoint::WalFsync), None, "healed point injects nothing");
        assert_eq!(plan.injected_total(), 2, "the log survives the heal");
        assert_eq!(plan.ops_at(FaultPoint::WalFsync), 3, "counters survive the heal");
    }

    #[test]
    fn enospc_maps_to_raw_os_error() {
        let err = FaultAction::Enospc.to_io_error();
        assert_eq!(err.raw_os_error(), Some(28));
    }
}
