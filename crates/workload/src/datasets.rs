//! Named dataset presets mirroring the paper's four road networks at reduced scale.
//!
//! Table 1 of the paper lists the four DIMACS datasets together with their default
//! subgraph capacity `z`. The presets below preserve the *relative* sizes
//! (NY < COL < FLA ≪ CUSA) and the default `z` proportions at a scale that builds and
//! queries in seconds on a single machine, which is what the benchmark harness uses by
//! default. The `Full` scale matches the paper's vertex counts and can be used when the
//! real DIMACS files are available (see [`crate::dimacs`]).

use crate::synthetic::{GeneratedNetwork, RoadNetworkConfig, RoadNetworkGenerator};
use ksp_graph::GraphError;
use serde::{Deserialize, Serialize};

/// The four datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetPreset {
    /// New York City road network (smallest).
    NewYork,
    /// Colorado road network.
    Colorado,
    /// Florida road network.
    Florida,
    /// Central USA road network (largest).
    CentralUsa,
}

impl DatasetPreset {
    /// All presets, in the order the paper reports them.
    pub const ALL: [DatasetPreset; 4] = [
        DatasetPreset::NewYork,
        DatasetPreset::Colorado,
        DatasetPreset::Florida,
        DatasetPreset::CentralUsa,
    ];

    /// Short name used in figures and tables ("NY", "COL", "FLA", "CUSA").
    pub fn short_name(self) -> &'static str {
        match self {
            DatasetPreset::NewYork => "NY",
            DatasetPreset::Colorado => "COL",
            DatasetPreset::Florida => "FLA",
            DatasetPreset::CentralUsa => "CUSA",
        }
    }

    /// Number of vertices in the *paper's* full dataset (Table 1).
    pub fn paper_vertices(self) -> usize {
        match self {
            DatasetPreset::NewYork => 264_346,
            DatasetPreset::Colorado => 435_666,
            DatasetPreset::Florida => 1_070_376,
            DatasetPreset::CentralUsa => 14_081_816,
        }
    }

    /// Number of edges in the *paper's* full dataset (Table 1).
    pub fn paper_edges(self) -> usize {
        match self {
            DatasetPreset::NewYork => 733_846,
            DatasetPreset::Colorado => 1_057_066,
            DatasetPreset::Florida => 2_712_798,
            DatasetPreset::CentralUsa => 34_292_496,
        }
    }

    /// The default subgraph capacity `z` the paper uses for this dataset.
    pub fn paper_default_z(self) -> usize {
        match self {
            DatasetPreset::NewYork => 200,
            DatasetPreset::Colorado => 200,
            DatasetPreset::Florida => 500,
            DatasetPreset::CentralUsa => 1000,
        }
    }

    /// The range of `z` values swept in the construction-cost figures (Figs. 15–18).
    pub fn paper_z_sweep(self) -> Vec<usize> {
        match self {
            DatasetPreset::NewYork => vec![50, 100, 150, 200, 250],
            DatasetPreset::Colorado => vec![100, 150, 200, 250, 300],
            DatasetPreset::Florida => vec![300, 350, 400, 450, 500],
            DatasetPreset::CentralUsa => vec![800, 900, 1000, 1100, 1200],
        }
    }

    /// Builds the specification at the reduced benchmark scale.
    pub fn spec(self, scale: DatasetScale) -> DatasetSpec {
        DatasetSpec::new(self, scale)
    }
}

/// How large the generated instance of a preset should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetScale {
    /// Tiny instances for unit/integration tests (hundreds of vertices).
    Tiny,
    /// The default benchmark scale (thousands of vertices); keeps the relative sizes
    /// NY < COL < FLA < CUSA.
    Small,
    /// A larger scale for longer benchmark runs (tens of thousands of vertices).
    Medium,
}

impl DatasetScale {
    fn vertex_budget(self, preset: DatasetPreset) -> usize {
        // Relative sizes follow Table 1: COL ≈ 1.6×NY, FLA ≈ 4×NY, CUSA ≈ 53×NY.
        // CUSA is capped at a smaller multiple so single-machine runs stay feasible;
        // it is still by far the largest dataset.
        let ny = match self {
            DatasetScale::Tiny => 220,
            DatasetScale::Small => 2_400,
            DatasetScale::Medium => 9_000,
        };
        match preset {
            DatasetPreset::NewYork => ny,
            DatasetPreset::Colorado => ny * 16 / 10,
            DatasetPreset::Florida => ny * 4,
            DatasetPreset::CentralUsa => match self {
                DatasetScale::Tiny => ny * 8,
                _ => ny * 12,
            },
        }
    }

    fn z_scale_factor(self) -> f64 {
        match self {
            DatasetScale::Tiny => 0.08,
            DatasetScale::Small => 0.25,
            DatasetScale::Medium => 0.5,
        }
    }
}

/// A concrete dataset specification: preset + scale, with derived generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Which of the paper's datasets this instance mirrors.
    pub preset: DatasetPreset,
    /// The scale the instance is generated at.
    pub scale: DatasetScale,
    /// Number of vertices the generated instance targets.
    pub num_vertices: usize,
    /// Default subgraph capacity `z`, scaled in proportion to the paper's default.
    pub default_z: usize,
    /// Deterministic seed used for generation.
    pub seed: u64,
}

impl DatasetSpec {
    /// Creates the specification for a preset at the given scale.
    pub fn new(preset: DatasetPreset, scale: DatasetScale) -> Self {
        let num_vertices = scale.vertex_budget(preset);
        let default_z =
            ((preset.paper_default_z() as f64 * scale.z_scale_factor()).round() as usize).max(8);
        let seed = 0xD1A5_0000
            + match preset {
                DatasetPreset::NewYork => 1,
                DatasetPreset::Colorado => 2,
                DatasetPreset::Florida => 3,
                DatasetPreset::CentralUsa => 4,
            };
        DatasetSpec { preset, scale, num_vertices, default_z, seed }
    }

    /// The sweep of `z` values to use for this instance, scaled from the paper's sweep.
    pub fn z_sweep(&self) -> Vec<usize> {
        self.preset
            .paper_z_sweep()
            .into_iter()
            .map(|z| ((z as f64 * self.scale.z_scale_factor()).round() as usize).max(6))
            .collect()
    }

    /// Generates the road network for this specification (undirected).
    pub fn generate(&self) -> Result<GeneratedNetwork, GraphError> {
        let cfg = RoadNetworkConfig::with_vertices(self.num_vertices);
        RoadNetworkGenerator::new(cfg).generate(self.seed)
    }

    /// Generates the directed variant of this dataset (used by the directed-graph
    /// maintenance comparison of Fig. 19).
    pub fn generate_directed(&self) -> Result<GeneratedNetwork, GraphError> {
        let cfg = RoadNetworkConfig::with_vertices(self.num_vertices).directed();
        RoadNetworkGenerator::new(cfg).generate(self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::is_connected_undirected;

    #[test]
    fn presets_report_paper_statistics() {
        assert_eq!(DatasetPreset::NewYork.paper_vertices(), 264_346);
        assert_eq!(DatasetPreset::CentralUsa.paper_edges(), 34_292_496);
        assert_eq!(DatasetPreset::Florida.paper_default_z(), 500);
        assert_eq!(DatasetPreset::ALL.len(), 4);
        assert_eq!(DatasetPreset::Colorado.short_name(), "COL");
    }

    #[test]
    fn relative_sizes_are_preserved_at_small_scale() {
        let sizes: Vec<usize> =
            DatasetPreset::ALL.iter().map(|p| p.spec(DatasetScale::Small).num_vertices).collect();
        assert!(sizes[0] < sizes[1], "NY must be smaller than COL");
        assert!(sizes[1] < sizes[2], "COL must be smaller than FLA");
        assert!(sizes[2] < sizes[3], "FLA must be smaller than CUSA");
    }

    #[test]
    fn default_z_scales_with_paper_default() {
        let ny = DatasetPreset::NewYork.spec(DatasetScale::Small);
        let fla = DatasetPreset::Florida.spec(DatasetScale::Small);
        assert!(fla.default_z > ny.default_z);
        assert_eq!(ny.default_z, 50); // 200 * 0.25
        assert_eq!(fla.default_z, 125); // 500 * 0.25
    }

    #[test]
    fn z_sweep_is_monotone_and_nonempty() {
        for preset in DatasetPreset::ALL {
            let spec = preset.spec(DatasetScale::Tiny);
            let sweep = spec.z_sweep();
            assert!(!sweep.is_empty());
            assert!(sweep.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn tiny_datasets_generate_connected_networks() {
        for preset in [DatasetPreset::NewYork, DatasetPreset::Colorado] {
            let net = preset.spec(DatasetScale::Tiny).generate().unwrap();
            assert!(is_connected_undirected(&net.graph));
            assert!(net.graph.num_vertices() > 100);
        }
    }

    #[test]
    fn generation_is_deterministic_per_spec() {
        let spec = DatasetPreset::NewYork.spec(DatasetScale::Tiny);
        let a = spec.generate().unwrap();
        let b = spec.generate().unwrap();
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    }

    #[test]
    fn directed_generation_produces_directed_graph() {
        let net = DatasetPreset::NewYork.spec(DatasetScale::Tiny).generate_directed().unwrap();
        assert!(net.graph.is_directed());
    }
}
