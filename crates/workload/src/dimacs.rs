//! Parser for the DIMACS shortest-path challenge graph format (`.gr` files).
//!
//! The paper's datasets (NY, COL, FLA, CUSA with travel times) come from the 9th DIMACS
//! Implementation Challenge. When the real files are available they can be loaded with
//! [`parse_gr`] / [`load_gr_file`] and used in place of the synthetic presets; the rest
//! of the system is agnostic to where the graph came from.
//!
//! Format summary (one record per line):
//!
//! ```text
//! c <comment>
//! p sp <num_vertices> <num_edges>
//! a <from> <to> <weight>          # 1-based vertex ids
//! ```

use ksp_graph::{DynamicGraph, GraphBuilder, GraphError};
use std::fmt;
use std::io::{self, BufRead};
use std::path::Path;

/// Errors raised while parsing a DIMACS `.gr` stream.
#[derive(Debug)]
pub enum DimacsError {
    /// I/O failure while reading the input.
    Io(io::Error),
    /// A malformed line (wrong arity, non-numeric field, unknown record type).
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The problem line (`p sp n m`) was missing before the first arc line.
    MissingProblemLine,
    /// The edge list was structurally invalid for a road network.
    Graph(GraphError),
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimacsError::Io(e) => write!(f, "i/o error reading DIMACS input: {e}"),
            DimacsError::Parse { line, message } => write!(f, "line {line}: {message}"),
            DimacsError::MissingProblemLine => {
                write!(f, "missing 'p sp <n> <m>' line before the first arc")
            }
            DimacsError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for DimacsError {}

impl From<io::Error> for DimacsError {
    fn from(e: io::Error) -> Self {
        DimacsError::Io(e)
    }
}

impl From<GraphError> for DimacsError {
    fn from(e: GraphError) -> Self {
        DimacsError::Graph(e)
    }
}

/// Parses a DIMACS `.gr` stream into a graph.
///
/// DIMACS road networks list both directions of every road as separate arcs. When
/// `directed` is `false`, the second direction is treated as a duplicate and skipped,
/// producing the undirected graph the bulk of the paper's experiments use; when `true`,
/// both arcs are kept (the directed CUSA experiments).
pub fn parse_gr<R: BufRead>(reader: R, directed: bool) -> Result<DynamicGraph, DimacsError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut declared_edges: usize = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        match fields.next() {
            Some("c") => continue,
            Some("p") => {
                let kind = fields.next().unwrap_or_default();
                if kind != "sp" {
                    return Err(DimacsError::Parse {
                        line: line_no,
                        message: format!("unsupported problem type '{kind}' (expected 'sp')"),
                    });
                }
                let n: usize = parse_field(fields.next(), line_no, "vertex count")?;
                declared_edges = parse_field(fields.next(), line_no, "edge count")?;
                builder = Some(if directed {
                    GraphBuilder::directed(n)
                } else {
                    GraphBuilder::undirected(n)
                });
            }
            Some("a") => {
                let b = builder.as_mut().ok_or(DimacsError::MissingProblemLine)?;
                let from: u32 = parse_field(fields.next(), line_no, "arc tail")?;
                let to: u32 = parse_field(fields.next(), line_no, "arc head")?;
                let weight: u32 = parse_field(fields.next(), line_no, "arc weight")?;
                if from == 0 || to == 0 {
                    return Err(DimacsError::Parse {
                        line: line_no,
                        message: "DIMACS vertex ids are 1-based; found id 0".to_string(),
                    });
                }
                // DIMACS travel-time weights can be zero for degenerate arcs; clamp to 1
                // so the vfrag interpretation (initial weight >= 1) holds.
                b.edge(from - 1, to - 1, weight.max(1));
            }
            Some(other) => {
                return Err(DimacsError::Parse {
                    line: line_no,
                    message: format!("unknown record type '{other}'"),
                });
            }
            None => continue,
        }
    }
    let builder = builder.ok_or(DimacsError::MissingProblemLine)?;
    let _ = declared_edges; // informational only; duplicates make exact matching moot
    Ok(builder.build()?)
}

/// Loads a DIMACS `.gr` file from disk.
pub fn load_gr_file<P: AsRef<Path>>(path: P, directed: bool) -> Result<DynamicGraph, DimacsError> {
    let file = std::fs::File::open(path)?;
    parse_gr(io::BufReader::new(file), directed)
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, DimacsError> {
    let raw =
        field.ok_or_else(|| DimacsError::Parse { line, message: format!("missing {what}") })?;
    raw.parse()
        .map_err(|_| DimacsError::Parse { line, message: format!("invalid {what}: '{raw}'") })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_graph::{GraphView, VertexId, Weight};
    use std::io::Cursor;

    const SAMPLE: &str = "\
c sample road network
p sp 4 10
a 1 2 7
a 2 1 7
a 2 3 4
a 3 2 4
a 3 4 2
a 4 3 2
a 1 4 9
a 4 1 9
a 1 3 12
a 3 1 12
";

    #[test]
    fn parses_undirected_graph_deduplicating_reverse_arcs() {
        let g = parse_gr(Cursor::new(SAMPLE), false).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert!(!g.is_directed());
        assert_eq!(g.edge_weight(VertexId(0), VertexId(1)), Some(Weight::new(7.0)));
        assert_eq!(g.edge_weight(VertexId(2), VertexId(3)), Some(Weight::new(2.0)));
    }

    #[test]
    fn parses_directed_graph_keeping_both_arcs() {
        let g = parse_gr(Cursor::new(SAMPLE), true).unwrap();
        assert_eq!(g.num_edges(), 10);
        assert!(g.is_directed());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let input = "c hello\n\nc world\np sp 2 2\n\na 1 2 3\na 2 1 3\n";
        let g = parse_gr(Cursor::new(input), false).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn missing_problem_line_is_an_error() {
        let input = "a 1 2 3\n";
        assert!(matches!(
            parse_gr(Cursor::new(input), false),
            Err(DimacsError::MissingProblemLine)
        ));
    }

    #[test]
    fn malformed_arc_is_reported_with_line_number() {
        let input = "p sp 2 1\na 1 x 3\n";
        match parse_gr(Cursor::new(input), false) {
            Err(DimacsError::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("arc head"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_record_type_is_an_error() {
        let input = "p sp 2 1\nz 1 2 3\n";
        assert!(matches!(parse_gr(Cursor::new(input), false), Err(DimacsError::Parse { .. })));
    }

    #[test]
    fn zero_based_vertex_ids_are_rejected() {
        let input = "p sp 2 1\na 0 1 3\n";
        assert!(matches!(parse_gr(Cursor::new(input), false), Err(DimacsError::Parse { .. })));
    }

    #[test]
    fn zero_weights_are_clamped_to_one() {
        let input = "p sp 2 1\na 1 2 0\n";
        let g = parse_gr(Cursor::new(input), false).unwrap();
        assert_eq!(g.edge_weight(VertexId(0), VertexId(1)), Some(Weight::new(1.0)));
    }

    #[test]
    fn unsupported_problem_type_is_rejected() {
        let input = "p max 2 1\na 1 2 1\n";
        assert!(matches!(parse_gr(Cursor::new(input), false), Err(DimacsError::Parse { .. })));
    }
}
