//! KSP query workload generation (Section 6.4: batches of `Nq` random queries).

use crate::rng::Xoshiro256;
use ksp_graph::{DynamicGraph, VertexId};
use serde::{Deserialize, Serialize};

/// A single k-shortest-path query `q(vs, vt)` with its `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KspQuery {
    /// Source vertex.
    pub source: VertexId,
    /// Destination vertex.
    pub target: VertexId,
    /// Number of shortest paths requested.
    pub k: usize,
}

impl KspQuery {
    /// Creates a query.
    pub fn new(source: VertexId, target: VertexId, k: usize) -> Self {
        KspQuery { source, target, k }
    }
}

/// Configuration of the query workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryWorkloadConfig {
    /// Number of queries in the batch (the paper's `Nq`).
    pub num_queries: usize,
    /// The `k` of every query (the paper uses a fixed `k` per experiment, default 2).
    pub k: usize,
    /// If `true`, endpoints are restricted to distinct vertices (always desirable; a
    /// query with `source == target` is degenerate).
    pub distinct_endpoints: bool,
}

impl Default for QueryWorkloadConfig {
    fn default() -> Self {
        QueryWorkloadConfig { num_queries: 1000, k: 2, distinct_endpoints: true }
    }
}

impl QueryWorkloadConfig {
    /// Creates a configuration for `num_queries` queries with parameter `k`.
    pub fn new(num_queries: usize, k: usize) -> Self {
        QueryWorkloadConfig { num_queries, k, distinct_endpoints: true }
    }
}

/// A generated batch of queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryWorkload {
    /// The queries, in arrival order.
    pub queries: Vec<KspQuery>,
}

impl QueryWorkload {
    /// Generates a deterministic workload of uniformly random origin/destination pairs.
    pub fn generate(graph: &DynamicGraph, config: QueryWorkloadConfig, seed: u64) -> Self {
        assert!(graph.num_vertices() >= 2, "need at least two vertices to generate queries");
        assert!(config.k >= 1, "k must be at least 1");
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x9E3779B97F4A7C15);
        let n = graph.num_vertices() as u64;
        let mut queries = Vec::with_capacity(config.num_queries);
        while queries.len() < config.num_queries {
            let s = VertexId(rng.next_bounded(n) as u32);
            let t = VertexId(rng.next_bounded(n) as u32);
            if config.distinct_endpoints && s == t {
                continue;
            }
            queries.push(KspQuery::new(s, t, config.k));
        }
        QueryWorkload { queries }
    }

    /// Generates a workload whose endpoints are drawn from a given candidate set (e.g.
    /// boundary vertices only, which the paper's core algorithm description assumes).
    pub fn generate_from_candidates(
        candidates: &[VertexId],
        config: QueryWorkloadConfig,
        seed: u64,
    ) -> Self {
        assert!(candidates.len() >= 2, "need at least two candidate endpoints");
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xA5A5_5A5A_1234_4321);
        let n = candidates.len() as u64;
        let mut queries = Vec::with_capacity(config.num_queries);
        while queries.len() < config.num_queries {
            let s = candidates[rng.next_bounded(n) as usize];
            let t = candidates[rng.next_bounded(n) as usize];
            if config.distinct_endpoints && s == t {
                continue;
            }
            queries.push(KspQuery::new(s, t, config.k));
        }
        QueryWorkload { queries }
    }

    /// Number of queries in the workload.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Iterates over the queries.
    pub fn iter(&self) -> impl Iterator<Item = &KspQuery> {
        self.queries.iter()
    }

    /// Returns a copy of this workload with every query's `k` replaced.
    pub fn with_k(&self, k: usize) -> Self {
        QueryWorkload {
            queries: self.queries.iter().map(|q| KspQuery::new(q.source, q.target, k)).collect(),
        }
    }

    /// Returns the first `count` queries as a new workload (for scaling experiments
    /// that sweep `Nq` while keeping the query mix fixed).
    pub fn prefix(&self, count: usize) -> Self {
        QueryWorkload { queries: self.queries.iter().take(count).copied().collect() }
    }

    /// Endlessly cycles through the workload starting at `offset % len`.
    ///
    /// This is the replay order used by closed-loop load clients: each client
    /// starts at its own offset so concurrent clients cover different parts of
    /// the workload (and therefore different service shards) instead of
    /// marching in lockstep.
    ///
    /// # Panics
    ///
    /// Panics if the workload is empty.
    pub fn cycle_from(&self, offset: usize) -> impl Iterator<Item = KspQuery> + '_ {
        assert!(!self.is_empty(), "cannot cycle over an empty workload");
        let len = self.queries.len();
        (0..).map(move |i| self.queries[(offset + i) % len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{RoadNetworkConfig, RoadNetworkGenerator};

    fn graph() -> DynamicGraph {
        RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(300)).generate(3).unwrap().graph
    }

    #[test]
    fn generates_requested_number_of_queries() {
        let g = graph();
        let w = QueryWorkload::generate(&g, QueryWorkloadConfig::new(250, 4), 1);
        assert_eq!(w.len(), 250);
        assert!(!w.is_empty());
        assert!(w.iter().all(|q| q.k == 4));
    }

    #[test]
    fn endpoints_are_valid_and_distinct() {
        let g = graph();
        let w = QueryWorkload::generate(&g, QueryWorkloadConfig::new(500, 2), 9);
        for q in w.iter() {
            assert!(q.source.index() < g.num_vertices());
            assert!(q.target.index() < g.num_vertices());
            assert_ne!(q.source, q.target);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g = graph();
        let a = QueryWorkload::generate(&g, QueryWorkloadConfig::new(100, 2), 42);
        let b = QueryWorkload::generate(&g, QueryWorkloadConfig::new(100, 2), 42);
        assert_eq!(a, b);
        let c = QueryWorkload::generate(&g, QueryWorkloadConfig::new(100, 2), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn candidate_generation_only_uses_candidates() {
        let candidates = vec![VertexId(3), VertexId(7), VertexId(11), VertexId(19)];
        let w = QueryWorkload::generate_from_candidates(
            &candidates,
            QueryWorkloadConfig::new(50, 2),
            5,
        );
        for q in w.iter() {
            assert!(candidates.contains(&q.source));
            assert!(candidates.contains(&q.target));
            assert_ne!(q.source, q.target);
        }
    }

    #[test]
    fn with_k_rewrites_only_k() {
        let g = graph();
        let w = QueryWorkload::generate(&g, QueryWorkloadConfig::new(20, 2), 3);
        let w8 = w.with_k(8);
        assert_eq!(w.len(), w8.len());
        for (a, b) in w.iter().zip(w8.iter()) {
            assert_eq!(a.source, b.source);
            assert_eq!(a.target, b.target);
            assert_eq!(b.k, 8);
        }
    }

    #[test]
    fn cycle_from_wraps_and_respects_offset() {
        let g = graph();
        let w = QueryWorkload::generate(&g, QueryWorkloadConfig::new(5, 2), 3);
        let replay: Vec<KspQuery> = w.cycle_from(3).take(12).collect();
        assert_eq!(replay.len(), 12);
        assert_eq!(replay[0], w.queries[3]);
        assert_eq!(replay[1], w.queries[4]);
        assert_eq!(replay[2], w.queries[0]);
        assert_eq!(replay[7], w.queries[(3 + 7) % 5]);
    }

    #[test]
    fn prefix_takes_first_queries() {
        let g = graph();
        let w = QueryWorkload::generate(&g, QueryWorkloadConfig::new(100, 2), 3);
        let p = w.prefix(10);
        assert_eq!(p.len(), 10);
        assert_eq!(p.queries[..], w.queries[..10]);
    }
}
