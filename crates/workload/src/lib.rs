//! Workload substrate for the KSP-DG reproduction.
//!
//! The paper evaluates on four DIMACS road networks (NY, COL, FLA, CUSA) whose travel
//! times evolve according to a published traffic model, and on batches of randomly
//! generated KSP queries. This crate provides everything needed to regenerate those
//! inputs deterministically:
//!
//! * [`rng`] — a small, seedable, portable PRNG (SplitMix64 + Xoshiro256**) so that
//!   every experiment is reproducible bit-for-bit across platforms without depending on
//!   the evolving API of external randomness crates.
//! * [`synthetic`] — a quasi-planar road-network generator producing graphs with the
//!   degree distribution and local structure of real road networks.
//! * [`datasets`] — named presets (`NY-S`, `COL-S`, `FLA-S`, `CUSA-S`) that preserve the
//!   relative sizes of the paper's four datasets at laptop-feasible scale, plus their
//!   default partition sizes `z`.
//! * [`dimacs`] — a parser for the DIMACS `.gr` format so the real datasets can be used
//!   when available.
//! * [`traffic`] — the Fleischmann-style traffic evolution model used in Section 6.2
//!   (a fraction `α` of edges change weight within a relative range `[-τ, +τ]`).
//! * [`queries`] — KSP query workload generation.

#![warn(missing_docs)]

pub mod datasets;
pub mod dimacs;
pub mod queries;
pub mod rng;
pub mod synthetic;
pub mod traffic;

pub use datasets::{DatasetPreset, DatasetSpec};
pub use queries::{KspQuery, QueryWorkload, QueryWorkloadConfig};
pub use rng::Xoshiro256;
pub use synthetic::{RoadNetworkConfig, RoadNetworkGenerator};
pub use traffic::{TrafficConfig, TrafficModel};
