//! Traffic evolution model (Section 6.2 of the paper).
//!
//! The paper uses the time-varying travel-time model of Fleischmann et al. [5] to
//! synthesise traffic: at each snapshot a fraction `α` of the edges change weight, and
//! the change stays within a relative range `[-τ, +τ]` of the *initial* weight. All
//! roads follow a similar trend (e.g. a morning rush hour raises travel times across
//! the network), which Section 5.5 relies on when arguing the number of iterations of
//! KSP-DG stays small.
//!
//! [`TrafficModel`] produces a deterministic stream of [`UpdateBatch`]es for a graph:
//! each call to [`TrafficModel::next_snapshot`] selects `α · |E|` edges and assigns
//! them a new weight `w0 · (1 + trend + noise)` clamped to `[w0 · (1 − τ), w0 · (1 + τ)]`
//! and to a small positive floor, where `trend` follows a slow sinusoidal rush-hour
//! cycle shared by all edges and `noise` is per-edge uniform noise.

use crate::rng::Xoshiro256;
use ksp_graph::{DynamicGraph, EdgeId, UpdateBatch, Weight, WeightUpdate};

/// Configuration of the traffic model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Fraction of edges whose weight changes at each snapshot (the paper's `α`).
    pub alpha: f64,
    /// Relative range of weight variation (the paper's `τ`): new weights stay within
    /// `[w0·(1−τ), w0·(1+τ)]`.
    pub tau: f64,
    /// Number of snapshots in one full trend cycle (rush hour period). The default of
    /// 48 corresponds to half-hourly snapshots over a day.
    pub cycle_length: u32,
    /// When `true`, the two directions of a directed road receive identical changes
    /// (the paper uses identical changes to simulate undirected CUSA and independent
    /// changes for the directed variant).
    pub mirror_directions: bool,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        // The paper's defaults: α = 35 %, τ = 30 %.
        TrafficConfig { alpha: 0.35, tau: 0.30, cycle_length: 48, mirror_directions: false }
    }
}

impl TrafficConfig {
    /// Creates a configuration with the given `α` and `τ` and defaults elsewhere.
    pub fn new(alpha: f64, tau: f64) -> Self {
        TrafficConfig { alpha, tau, ..Default::default() }
    }

    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.alpha),
            "alpha must be within [0, 1], got {}",
            self.alpha
        );
        assert!((0.0..=1.0).contains(&self.tau), "tau must be within [0, 1], got {}", self.tau);
        assert!(self.cycle_length > 0, "cycle length must be positive");
    }
}

/// Deterministic generator of traffic-update snapshots for a particular graph.
#[derive(Debug, Clone)]
pub struct TrafficModel {
    config: TrafficConfig,
    rng: Xoshiro256,
    /// Initial weights of all edges, captured at model construction.
    initial_weights: Vec<u32>,
    /// For directed graphs with mirrored directions: the id of the opposite edge.
    reverse_edge: Vec<Option<EdgeId>>,
    snapshot_index: u64,
}

impl TrafficModel {
    /// Creates a traffic model for `graph` with the given configuration and seed.
    pub fn new(graph: &DynamicGraph, config: TrafficConfig, seed: u64) -> Self {
        config.validate();
        let initial_weights = graph.edges().map(|(_, e)| e.initial_weight).collect();
        let reverse_edge = if config.mirror_directions && graph.is_directed() {
            graph.edges().map(|(_, e)| graph.edge_between(e.v, e.u)).collect()
        } else {
            vec![None; graph.num_edges()]
        };
        TrafficModel {
            config,
            rng: Xoshiro256::seed_from_u64(seed ^ 0x7AFF_1C00),
            initial_weights,
            reverse_edge,
            snapshot_index: 0,
        }
    }

    /// The configuration of this model.
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// Number of snapshots generated so far.
    pub fn snapshots_generated(&self) -> u64 {
        self.snapshot_index
    }

    /// Generates the next snapshot of weight updates.
    ///
    /// The returned batch changes `α · |E|` distinct edges. The caller applies it to
    /// the master graph (and/or routes the per-edge updates to the owning workers).
    pub fn next_snapshot(&mut self) -> UpdateBatch {
        let m = self.initial_weights.len();
        let count = ((m as f64) * self.config.alpha).round() as usize;
        let chosen = self.rng.sample_indices(m, count);

        // Shared trend: a slow sinusoid over the cycle, scaled to use up to 60 % of τ,
        // so that all changed edges move in a similar direction (Section 5.5).
        let phase = (self.snapshot_index % self.config.cycle_length as u64) as f64
            / self.config.cycle_length as f64;
        let trend = 0.6 * self.config.tau * (2.0 * std::f64::consts::PI * phase).sin();

        let mut updates = Vec::with_capacity(chosen.len());
        let mut touched = vec![false; m];
        for idx in chosen {
            if touched[idx] {
                continue;
            }
            let w0 = self.initial_weights[idx] as f64;
            let noise = self.rng.next_range_f64(-0.4 * self.config.tau, 0.4 * self.config.tau);
            let factor = (1.0 + trend + noise).clamp(1.0 - self.config.tau, 1.0 + self.config.tau);
            let new_weight = Weight::new((w0 * factor).max(0.1));
            touched[idx] = true;
            updates.push(WeightUpdate::new(EdgeId(idx as u32), new_weight));
            if let Some(rev) = self.reverse_edge[idx] {
                if !touched[rev.index()] {
                    touched[rev.index()] = true;
                    updates.push(WeightUpdate::new(rev, new_weight));
                }
            }
        }
        self.snapshot_index += 1;
        UpdateBatch::new(updates)
    }

    /// Generates `count` consecutive snapshots.
    pub fn snapshots(&mut self, count: usize) -> Vec<UpdateBatch> {
        (0..count).map(|_| self.next_snapshot()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{RoadNetworkConfig, RoadNetworkGenerator};

    fn network(n: usize) -> DynamicGraph {
        RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(n)).generate(5).unwrap().graph
    }

    #[test]
    fn snapshot_changes_roughly_alpha_fraction_of_edges() {
        let g = network(600);
        let mut model = TrafficModel::new(&g, TrafficConfig::new(0.35, 0.3), 1);
        let batch = model.next_snapshot();
        let expected = (g.num_edges() as f64 * 0.35).round() as usize;
        assert!(
            (batch.len() as i64 - expected as i64).unsigned_abs() as usize <= expected / 10 + 1,
            "expected about {expected} updates, got {}",
            batch.len()
        );
    }

    #[test]
    fn updates_respect_the_tau_envelope_around_initial_weight() {
        let g = network(600);
        let tau = 0.3;
        let mut model = TrafficModel::new(&g, TrafficConfig::new(0.5, tau), 7);
        for batch in model.snapshots(10) {
            for u in batch.iter() {
                let w0 = g.initial_weight(u.edge) as f64;
                let w = u.new_weight.value();
                assert!(
                    w >= w0 * (1.0 - tau) - 1e-9 && w <= w0 * (1.0 + tau) + 1e-9,
                    "weight {w} outside envelope for w0 {w0}"
                );
                assert!(w > 0.0);
            }
        }
    }

    #[test]
    fn each_edge_updated_at_most_once_per_snapshot() {
        let g = network(400);
        let mut model = TrafficModel::new(&g, TrafficConfig::new(0.8, 0.5), 3);
        let batch = model.next_snapshot();
        let mut ids: Vec<u32> = batch.iter().map(|u| u.edge.0).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn alpha_zero_produces_empty_batches() {
        let g = network(300);
        let mut model = TrafficModel::new(&g, TrafficConfig::new(0.0, 0.3), 3);
        assert!(model.next_snapshot().is_empty());
    }

    #[test]
    fn model_is_deterministic_for_seed() {
        let g = network(300);
        let mut a = TrafficModel::new(&g, TrafficConfig::default(), 9);
        let mut b = TrafficModel::new(&g, TrafficConfig::default(), 9);
        assert_eq!(a.next_snapshot(), b.next_snapshot());
        assert_eq!(a.snapshots_generated(), 1);
    }

    #[test]
    fn mirrored_directed_updates_keep_directions_identical() {
        let cfg = RoadNetworkConfig::with_vertices(200).directed();
        let g = RoadNetworkGenerator::new(cfg).generate(11).unwrap().graph;
        let traffic_cfg = TrafficConfig { mirror_directions: true, ..TrafficConfig::new(0.5, 0.4) };
        let mut model = TrafficModel::new(&g, traffic_cfg, 21);
        let batch = model.next_snapshot();
        // Apply to a clone and verify both directions end up identical where both exist.
        let mut g2 = g.clone();
        g2.apply_batch(&batch).unwrap();
        for (_, e) in g2.edges() {
            if let Some(rev) = g2.edge_between(e.v, e.u) {
                assert!(g2.weight(rev).approx_eq(e.current_weight));
            }
        }
    }

    #[test]
    fn trend_moves_weights_in_a_common_direction() {
        let g = network(500);
        // Use a snapshot index in the first quarter of the cycle, where the trend is
        // positive, and check that clearly more weights increase than decrease.
        let mut model = TrafficModel::new(&g, TrafficConfig::new(0.6, 0.5), 17);
        let _ = model.next_snapshot(); // phase 0 (trend 0)
        let batch = model.next_snapshot(); // phase 1/48 > 0 -> positive trend
        let mut up = 0;
        let mut down = 0;
        for u in batch.iter() {
            let w0 = g.initial_weight(u.edge) as f64;
            if u.new_weight.value() > w0 {
                up += 1;
            } else if u.new_weight.value() < w0 {
                down += 1;
            }
        }
        assert!(up > down, "expected a majority of increases, got {up} up vs {down} down");
    }

    #[test]
    #[should_panic(expected = "alpha must be within")]
    fn invalid_alpha_is_rejected() {
        let g = network(200);
        let _ = TrafficModel::new(&g, TrafficConfig::new(1.5, 0.3), 1);
    }
}
