//! A small, fast, seedable PRNG for deterministic workload generation.
//!
//! All experiment inputs — graph topology, initial weights, traffic evolution, query
//! endpoints — are derived from a [`Xoshiro256`] seeded explicitly, so any figure in
//! `EXPERIMENTS.md` can be regenerated exactly. The implementation follows the public
//! domain reference of SplitMix64 (for seeding) and Xoshiro256** (for the stream).

/// SplitMix64 step; used to expand a single `u64` seed into the Xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Xoshiro256** pseudo random number generator.
///
/// Deterministic, portable and fast; not cryptographically secure (and does not need
/// to be — it only drives experiment input generation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Xoshiro256 { s }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection-free mapping is fine here; the slight
        // modulo bias of a plain remainder would be irrelevant for workload generation
        // but the widening multiply is also faster.
        let x = self.next_u64();
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniformly distributed integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn next_range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "invalid range [{lo}, {hi}]");
        lo + self.next_bounded((hi - lo) as u64 + 1) as u32
    }

    /// Returns a uniformly distributed `f64` in `[lo, hi)`.
    #[inline]
    pub fn next_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "invalid range [{lo}, {hi})");
        lo + self.next_f64() * (hi - lo)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Samples `count` distinct indices from `0..n` (reservoir-free partial shuffle).
    ///
    /// If `count >= n`, returns all indices in random order.
    pub fn sample_indices(&mut self, n: usize, count: usize) -> Vec<usize> {
        let mut all: Vec<usize> = (0..n).collect();
        let take = count.min(n);
        for i in 0..take {
            let j = i + self.next_bounded((n - i) as u64) as usize;
            all.swap(i, j);
        }
        all.truncate(take);
        all
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// Used to decouple e.g. topology generation from traffic generation so that
    /// changing one parameter does not perturb unrelated random choices.
    pub fn fork(&mut self, stream: u64) -> Xoshiro256 {
        let base = self.next_u64();
        Xoshiro256::seed_from_u64(base ^ stream.wrapping_mul(0x9E3779B97F4A7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_gives_same_stream() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_bounded_stays_in_bounds_and_covers_values() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.next_bounded(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_range_u32_is_inclusive() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let x = rng.next_range_u32(5, 8);
            assert!((5..=8).contains(&x));
            saw_lo |= x == 5;
            saw_hi |= x == 8;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_returns_distinct_values() {
        let mut rng = Xoshiro256::seed_from_u64(13);
        let sample = rng.sample_indices(100, 20);
        assert_eq!(sample.len(), 20);
        let mut unique = sample.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 20);
        assert!(sample.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_caps_at_population_size() {
        let mut rng = Xoshiro256::seed_from_u64(13);
        let sample = rng.sample_indices(5, 50);
        assert_eq!(sample.len(), 5);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut root = Xoshiro256::seed_from_u64(1234);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let equal = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(equal < 2);
    }

    #[test]
    fn mean_of_uniform_draws_is_about_half() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn next_bool_respects_probability() {
        let mut rng = Xoshiro256::seed_from_u64(77);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.next_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate was {rate}");
    }
}
