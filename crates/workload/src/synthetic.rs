//! Synthetic quasi-planar road-network generator.
//!
//! The paper evaluates on real DIMACS road networks. Where those files are not
//! available, this generator produces graphs with the structural properties that the
//! KSP-DG experiments are sensitive to:
//!
//! * sparse and quasi-planar (average degree ≈ 2.5–3, like real road graphs);
//! * strong locality — most edges connect geometrically close intersections, so BFS
//!   partitioning produces compact subgraphs with few boundary vertices;
//! * a small number of longer "highway" edges with lower per-distance travel time;
//! * connected, so every query has an answer;
//! * integer initial travel times (the vfrag counts of DTLP).
//!
//! The generator lays intersections on a jittered grid, keeps most axis-aligned
//! neighbour connections, drops some to create irregular holes (rivers, parks), adds a
//! few diagonals and highway shortcuts, and finally stitches connected components
//! together so the result is a single component.

use crate::rng::Xoshiro256;
use ksp_graph::{DynamicGraph, GraphBuilder, GraphError, VertexId};

/// Configuration of the synthetic road-network generator.
#[derive(Debug, Clone, PartialEq)]
pub struct RoadNetworkConfig {
    /// Approximate number of vertices. The generator uses a `width × height` grid with
    /// `width * height = num_vertices` (rounded to the nearest grid shape).
    pub num_vertices: usize,
    /// Probability of keeping each axis-aligned grid edge. Lower values create more
    /// irregular networks with more dead ends. Typical: 0.90–0.96.
    pub keep_probability: f64,
    /// Probability of adding a diagonal edge in a grid cell. Typical: 0.05–0.15.
    pub diagonal_probability: f64,
    /// Probability, per vertex, of starting a long-range "highway" edge. Typical: 0.01.
    pub highway_probability: f64,
    /// Minimum initial (integer) travel time of a local road edge.
    pub min_weight: u32,
    /// Maximum initial (integer) travel time of a local road edge.
    pub max_weight: u32,
    /// Whether to produce a directed graph with both directions of every road as
    /// separate edges (Section 5.3 / CUSA experiments). Undirected otherwise.
    pub directed: bool,
}

impl Default for RoadNetworkConfig {
    fn default() -> Self {
        RoadNetworkConfig {
            num_vertices: 1000,
            keep_probability: 0.93,
            diagonal_probability: 0.08,
            highway_probability: 0.01,
            min_weight: 3,
            max_weight: 20,
            directed: false,
        }
    }
}

impl RoadNetworkConfig {
    /// Convenience constructor for an undirected network of roughly `num_vertices`
    /// vertices with default structural parameters.
    pub fn with_vertices(num_vertices: usize) -> Self {
        RoadNetworkConfig { num_vertices, ..Default::default() }
    }

    /// Returns a copy of this configuration producing a directed graph.
    pub fn directed(mut self) -> Self {
        self.directed = true;
        self
    }
}

/// A generated road network: the graph plus planar coordinates of every vertex.
#[derive(Debug, Clone)]
pub struct GeneratedNetwork {
    /// The road network graph.
    pub graph: DynamicGraph,
    /// Planar coordinates (x, y) of every vertex, indexed by vertex id. Useful for
    /// distance-stratified query generation and for debugging partition locality.
    pub coordinates: Vec<(f64, f64)>,
}

/// The synthetic road-network generator.
#[derive(Debug, Clone)]
pub struct RoadNetworkGenerator {
    config: RoadNetworkConfig,
}

impl RoadNetworkGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: RoadNetworkConfig) -> Self {
        RoadNetworkGenerator { config }
    }

    /// Generates a road network deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Result<GeneratedNetwork, GraphError> {
        let cfg = &self.config;
        assert!(cfg.num_vertices >= 4, "road networks need at least 4 vertices");
        assert!(cfg.min_weight >= 1 && cfg.min_weight <= cfg.max_weight, "invalid weight range");

        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut topo_rng = rng.fork(1);
        let mut weight_rng = rng.fork(2);

        // Choose grid dimensions close to the requested vertex count with a 4:3-ish
        // aspect ratio, like a metropolitan area.
        let width = ((cfg.num_vertices as f64 * 4.0 / 3.0).sqrt().round() as usize).max(2);
        let height = (cfg.num_vertices / width).max(2);
        let n = width * height;

        let vid = |x: usize, y: usize| (y * width + x) as u32;

        // Jittered coordinates.
        let mut coordinates = Vec::with_capacity(n);
        for y in 0..height {
            for x in 0..width {
                let jx = topo_rng.next_range_f64(-0.3, 0.3);
                let jy = topo_rng.next_range_f64(-0.3, 0.3);
                coordinates.push((x as f64 + jx, y as f64 + jy));
            }
        }

        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * 2);
        // Axis-aligned local roads.
        for y in 0..height {
            for x in 0..width {
                if x + 1 < width && topo_rng.next_bool(cfg.keep_probability) {
                    edges.push((vid(x, y), vid(x + 1, y)));
                }
                if y + 1 < height && topo_rng.next_bool(cfg.keep_probability) {
                    edges.push((vid(x, y), vid(x, y + 1)));
                }
                // Occasional diagonal.
                if x + 1 < width && y + 1 < height && topo_rng.next_bool(cfg.diagonal_probability) {
                    if topo_rng.next_bool(0.5) {
                        edges.push((vid(x, y), vid(x + 1, y + 1)));
                    } else {
                        edges.push((vid(x + 1, y), vid(x, y + 1)));
                    }
                }
            }
        }
        let num_local = edges.len();

        // Highway shortcuts: connect a vertex to another a few blocks away in the same
        // row or column, modelling arterials / expressways.
        for y in 0..height {
            for x in 0..width {
                if topo_rng.next_bool(cfg.highway_probability) {
                    let span = topo_rng.next_range_u32(3, 8) as usize;
                    if topo_rng.next_bool(0.5) {
                        if x + span < width {
                            edges.push((vid(x, y), vid(x + span, y)));
                        }
                    } else if y + span < height {
                        edges.push((vid(x, y), vid(x, y + span)));
                    }
                }
            }
        }

        // Stitch connected components together so that every query is answerable.
        let mut dsu = DisjointSet::new(n);
        for &(u, v) in &edges {
            dsu.union(u as usize, v as usize);
        }
        let mut extra: Vec<(u32, u32)> = Vec::new();
        for v in 1..n {
            if dsu.find(v) != dsu.find(v - 1) {
                dsu.union(v, v - 1);
                extra.push(((v - 1) as u32, v as u32));
            }
        }
        edges.extend(extra);

        // Assign integer travel times. Local roads get a weight proportional to their
        // jittered length; highways are faster per unit distance.
        let mut builder =
            if cfg.directed { GraphBuilder::directed(n) } else { GraphBuilder::undirected(n) };
        for (i, &(u, v)) in edges.iter().enumerate() {
            let (ux, uy) = coordinates[u as usize];
            let (vx, vy) = coordinates[v as usize];
            let dist = ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt().max(0.5);
            let is_highway = i >= num_local && dist > 2.0;
            let base = cfg.min_weight as f64
                + (cfg.max_weight - cfg.min_weight) as f64 * weight_rng.next_f64();
            let speed_factor = if is_highway { 0.45 } else { 1.0 };
            let w =
                (base * dist * speed_factor).round().clamp(cfg.min_weight as f64, u32::MAX as f64);
            let w = (w as u32).max(cfg.min_weight);
            if cfg.directed {
                builder.edge(u, v, w);
                // Opposite direction: same initial weight (the paper applies identical
                // initial travel times to both directions; the traffic model may later
                // vary them independently).
                builder.edge(v, u, w);
            } else {
                builder.edge(u, v, w);
            }
        }

        let graph = builder.build()?;
        Ok(GeneratedNetwork { graph, coordinates })
    }
}

/// Checks that a graph is connected when viewed as undirected; exposed for tests and
/// dataset sanity checks.
pub fn is_connected_undirected(graph: &DynamicGraph) -> bool {
    let n = graph.num_vertices();
    if n == 0 {
        return true;
    }
    let mut dsu = DisjointSet::new(n);
    for (_, e) in graph.edges() {
        dsu.union(e.u.index(), e.v.index());
    }
    let root = dsu.find(0);
    (1..n).all(|v| dsu.find(v) == root)
}

/// Average degree of the graph, counting each undirected edge twice.
pub fn average_degree(graph: &DynamicGraph) -> f64 {
    if graph.num_vertices() == 0 {
        return 0.0;
    }
    let factor = if graph.is_directed() { 1.0 } else { 2.0 };
    factor * graph.num_edges() as f64 / graph.num_vertices() as f64
}

/// Returns, for each vertex, its degree; exposed for structural tests.
pub fn degree_histogram(graph: &DynamicGraph) -> Vec<usize> {
    (0..graph.num_vertices()).map(|v| graph.degree(VertexId(v as u32))).collect()
}

/// A plain union-find structure used for connectivity stitching.
#[derive(Debug, Clone)]
struct DisjointSet {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl DisjointSet {
    fn new(n: usize) -> Self {
        DisjointSet { parent: (0..n as u32).collect(), rank: vec![0; n] }
    }

    fn find(&mut self, v: usize) -> usize {
        let mut root = v;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Path compression.
        let mut cur = v;
        while self.parent[cur] as usize != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generate(n: usize, seed: u64) -> GeneratedNetwork {
        RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(n)).generate(seed).unwrap()
    }

    #[test]
    fn generated_network_is_connected() {
        for seed in [1, 2, 3] {
            let net = generate(500, seed);
            assert!(
                is_connected_undirected(&net.graph),
                "seed {seed} produced a disconnected graph"
            );
        }
    }

    #[test]
    fn generated_network_has_road_like_degree() {
        let net = generate(2000, 7);
        let avg = average_degree(&net.graph);
        assert!((2.0..4.5).contains(&avg), "average degree {avg} is not road-like");
        let hist = degree_histogram(&net.graph);
        let max_degree = hist.iter().copied().max().unwrap();
        assert!(max_degree <= 10, "max degree {max_degree} too high for a road network");
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = generate(300, 99);
        let b = generate(300, 99);
        assert_eq!(a.graph.num_vertices(), b.graph.num_vertices());
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        for (ea, eb) in a.graph.edges().zip(b.graph.edges()) {
            assert_eq!(ea.1, eb.1);
        }
    }

    #[test]
    fn different_seeds_give_different_networks() {
        let a = generate(300, 1);
        let b = generate(300, 2);
        let differing =
            a.graph.edges().zip(b.graph.edges()).filter(|(ea, eb)| ea.1 != eb.1).count();
        assert!(differing > 0);
    }

    #[test]
    fn vertex_count_is_close_to_requested() {
        for requested in [100, 1000, 5000] {
            let net = generate(requested, 5);
            let n = net.graph.num_vertices();
            assert!(
                (n as f64) > requested as f64 * 0.75 && (n as f64) < requested as f64 * 1.35,
                "requested {requested}, got {n}"
            );
            assert_eq!(net.coordinates.len(), n);
        }
    }

    #[test]
    fn initial_weights_are_positive_integers_within_reason() {
        let net = generate(800, 21);
        for (_, e) in net.graph.edges() {
            assert!(e.initial_weight >= 1);
            assert!(e.initial_weight < 500);
            assert_eq!(e.current_weight.value(), e.initial_weight as f64);
        }
    }

    #[test]
    fn directed_networks_have_both_directions() {
        let cfg = RoadNetworkConfig::with_vertices(300).directed();
        let net = RoadNetworkGenerator::new(cfg).generate(3).unwrap();
        assert!(net.graph.is_directed());
        let mut forward = 0;
        let mut has_reverse = 0;
        for (_, e) in net.graph.edges() {
            forward += 1;
            if net.graph.edge_between(e.v, e.u).is_some() {
                has_reverse += 1;
            }
        }
        assert_eq!(forward, has_reverse, "every directed road must have its opposite direction");
    }

    #[test]
    fn connectivity_helper_detects_disconnection() {
        let mut b = GraphBuilder::undirected(4);
        b.edge(0, 1, 1).edge(2, 3, 1);
        let g = b.build().unwrap();
        assert!(!is_connected_undirected(&g));
    }
}
