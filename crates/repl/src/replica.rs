//! The follower side of log-shipping replication: a [`Replica`] bootstraps
//! from the leader's snapshot fallback, replays shipped WAL records through
//! its own copy-on-write publish path, and stands ready to be promoted in
//! milliseconds.
//!
//! A replica is a full persistent [`QueryService`] of its own: every shipped
//! record is re-logged to the replica's WAL and folded into its checkpoints,
//! so a follower restart recovers locally instead of re-downloading the
//! leader's image set. Replay goes through the same `apply_batch` path the
//! leader ran — deterministic, so a caught-up replica holds a byte-identical
//! `(graph, index)` pair and answers queries bit-for-bit the same.

use ksp_fault::FaultPlan;
use ksp_graph::VertexId;
use ksp_obs::{Counter, Gauge};
use ksp_proto::message::{ErrorReply, Request, Response};
use ksp_proto::{
    ClientError, FaultTransport, HandshakeInfo, KspClient, TcpTransport, Transport,
    WireSnapshotManifest,
};
use ksp_serve::{QueryResponse, QueryService, ReplicationHook, ServiceConfig};
use ksp_store::StoreConfig;
use parking_lot::RwLock;
use std::io::Write as _;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::ReplError;

/// Configuration of a [`Replica`].
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// The name this follower acknowledges under; the leader labels its
    /// `ksp_repl_lag_epochs` gauge with it.
    pub follower: String,
    /// Service configuration for the replica's own [`QueryService`]. The
    /// DTLP settings are overridden by the recovered snapshot.
    pub service: ServiceConfig,
    /// Store configuration for the replica's own durable directory.
    pub store: StoreConfig,
    /// Records per `ShipSegment` request (`0` = the leader's default cap).
    pub max_records: u64,
    /// Estimated record bytes per `ShipSegment` request (`0` = leader's
    /// default cap).
    pub max_bytes: u64,
    /// Bytes per `SnapshotChunk` request during bootstrap (`0` = leader's
    /// default cap).
    pub chunk_bytes: u64,
    /// When set, [`Replica::query`] refuses reads once the replica has
    /// fallen more than this many epochs behind the leader's last reported
    /// position — the observable-staleness bound. `None` serves reads at any
    /// lag. Promotion lifts the bound.
    pub max_read_lag: Option<u64>,
    /// How long the background thread sleeps after a caught-up round.
    pub poll_interval: Duration,
    /// Lower bound of the reconnect backoff after a failed sync round. Each
    /// sleep is drawn with decorrelated jitter — uniform in
    /// `[backoff_base, 3 × previous sleep]`, clamped to
    /// [`ReplicaConfig::backoff_cap`] — so a fleet of followers cut off by
    /// one leader outage reconnects spread out instead of in lockstep.
    pub backoff_base: Duration,
    /// Upper clamp on any single reconnect-backoff sleep. Kept low by
    /// default (100 ms) so a promotion request never waits long.
    pub backoff_cap: Duration,
    /// When set, every leader connection this replica opens (bootstrap,
    /// reconnect) is wrapped in a [`FaultTransport`] drawing from this plan —
    /// the chaos-test seam for link faults. Clones of a plan share one
    /// schedule, so the test keeps its own handle for assertions. `None`
    /// (the default) connects directly.
    pub fault_plan: Option<FaultPlan>,
}

impl ReplicaConfig {
    /// A configuration with the given follower name and service/store
    /// settings; shipping caps deferred to the leader, no staleness bound,
    /// 20 ms poll interval.
    pub fn new(follower: impl Into<String>, service: ServiceConfig, store: StoreConfig) -> Self {
        ReplicaConfig {
            follower: follower.into(),
            service,
            store,
            max_records: 0,
            max_bytes: 0,
            chunk_bytes: 0,
            max_read_lag: None,
            poll_interval: Duration::from_millis(20),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(100),
            fault_plan: None,
        }
    }
}

/// What one replication round did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncOutcome {
    /// WAL records applied this round.
    pub applied_records: u64,
    /// Whether the round fell back to a full snapshot re-sync (the
    /// replica's position had left the leader's retained log window).
    pub resynced: bool,
    /// Whether the replica's applied epoch has reached the leader epoch the
    /// leader reported this round.
    pub caught_up: bool,
}

/// The result of a [`Replica::promote`] call.
#[derive(Debug, Clone, Copy)]
pub struct Promotion {
    /// Wall-clock time promotion took: stopping the replication pull and
    /// declaring the already-running service authoritative. No index build,
    /// no replay — milliseconds, versus a cold `Store::recover`.
    pub duration: Duration,
    /// The epoch the replica serves at the moment of promotion.
    pub epoch: u64,
}

/// Lag counters shared between the replica handle, its background thread and
/// the follower-side metrics hook.
struct ReplicaShared {
    applied: AtomicU64,
    leader_epoch: AtomicU64,
    records_applied: AtomicU64,
    resyncs: AtomicU64,
    promoted: AtomicBool,
}

/// The follower-side metrics hook: registered on the replica's own service so
/// a scrape of the *replica* exports its applied epoch and lag. Replication
/// requests sent to a replica are refused — followers do not fan out.
struct FollowerHook {
    shared: Arc<ReplicaShared>,
}

impl ReplicationHook for FollowerHook {
    fn handle(&self, _request: &Request) -> Response {
        Response::Error(ErrorReply::Unsupported(
            "this server is a replica; ship from its leader".to_string(),
        ))
    }

    fn metric_families(&self) -> (Vec<Counter>, Vec<Gauge>) {
        let applied = self.shared.applied.load(Ordering::Relaxed);
        let leader = self.shared.leader_epoch.load(Ordering::Relaxed);
        let counters = vec![
            Counter {
                name: "ksp_repl_records_applied_total".to_string(),
                labels: String::new(),
                value: self.shared.records_applied.load(Ordering::Relaxed),
            },
            Counter {
                name: "ksp_repl_resyncs_total".to_string(),
                labels: String::new(),
                value: self.shared.resyncs.load(Ordering::Relaxed),
            },
        ];
        let gauges = vec![
            Gauge {
                name: "ksp_repl_applied_epoch".to_string(),
                labels: String::new(),
                value: applied as f64,
            },
            Gauge {
                name: "ksp_repl_lag_epochs".to_string(),
                labels: String::new(),
                value: leader.saturating_sub(applied) as f64,
            },
            Gauge {
                name: "ksp_repl_promoted".to_string(),
                labels: String::new(),
                value: if self.shared.promoted.load(Ordering::Relaxed) { 1.0 } else { 0.0 },
            },
        ];
        (counters, gauges)
    }
}

/// Everything a replication round needs besides the leader connection —
/// shared with the background thread.
struct SyncCtx {
    addr: SocketAddr,
    config: ReplicaConfig,
    root: PathBuf,
    shared: Arc<ReplicaShared>,
    /// The replica's live service. Swapped wholesale on a snapshot re-sync;
    /// readers holding the old `Arc` finish on the old epoch.
    service: RwLock<Arc<QueryService>>,
}

/// The leader connection plus the bootstrap-generation counter. Owned by the
/// replica handle, or moved into the background thread while it runs. The
/// transport is boxed so a [`ReplicaConfig::fault_plan`] can interpose a
/// [`FaultTransport`] without changing any replication code.
struct Core {
    client: KspClient<Box<dyn Transport>>,
    generation: u64,
}

/// Opens one leader connection, wrapping it in a [`FaultTransport`] when the
/// configuration carries a fault plan, and performs the version handshake.
fn connect_leader(
    addr: SocketAddr,
    config: &ReplicaConfig,
) -> Result<(KspClient<Box<dyn Transport>>, HandshakeInfo), ClientError> {
    let tcp = TcpTransport::connect(addr)
        .map_err(|e| ClientError::from(ksp_proto::TransportError::from(e)))?;
    let transport: Box<dyn Transport> = match &config.fault_plan {
        Some(plan) => Box::new(FaultTransport::new(tcp, plan.clone())),
        None => Box::new(tcp),
    };
    KspClient::handshake(transport)
}

/// A log-shipping read replica of a persistent leader service.
///
/// Build one with [`Replica::bootstrap`], then either drive it manually with
/// [`Replica::sync_once`] (deterministic, for tests) or start the background
/// pull with [`Replica::run`]. Reads are served from
/// [`Replica::service`] (or the staleness-bounded [`Replica::query`])
/// throughout. [`Replica::promote`] turns it into the authority.
pub struct Replica {
    ctx: Arc<SyncCtx>,
    core: Option<Core>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<Core>>,
}

impl Replica {
    /// Connects to the leader at `addr`, negotiates protocol v2, transfers
    /// the leader's snapshot image set into a fresh generation directory
    /// under `root` and opens the replica's own persistent service over it.
    pub fn bootstrap(
        addr: SocketAddr,
        root: impl Into<PathBuf>,
        config: ReplicaConfig,
    ) -> Result<Self, ReplError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let (mut client, hello) = connect_leader(addr, &config)?;
        if hello.negotiated_version < 2 {
            return Err(ReplError::Protocol(format!(
                "leader negotiated protocol version {}; replication needs >= 2",
                hello.negotiated_version
            )));
        }
        // Epoch 0 lives in the initial checkpoint, never in the log, so a
        // fresh join always receives the snapshot fallback.
        let batch = client.ship_segment(0, config.max_records, config.max_bytes)?;
        let manifest = batch.fallback.ok_or_else(|| {
            ReplError::Protocol("leader did not offer a snapshot to a fresh follower".to_string())
        })?;
        let mut core = Core { client, generation: 0 };
        let service = fetch_and_open(&mut core, &root, &config, &manifest)?;
        let applied = service.current_epoch();
        let shared = Arc::new(ReplicaShared {
            applied: AtomicU64::new(applied),
            leader_epoch: AtomicU64::new(batch.leader_epoch),
            records_applied: AtomicU64::new(0),
            resyncs: AtomicU64::new(0),
            promoted: AtomicBool::new(false),
        });
        service.set_replication_hook(Arc::new(FollowerHook { shared: shared.clone() }));
        let leader_epoch = core.client.repl_ack(&config.follower, applied)?;
        shared.leader_epoch.store(leader_epoch, Ordering::Relaxed);
        Ok(Replica {
            ctx: Arc::new(SyncCtx { addr, config, root, shared, service: RwLock::new(service) }),
            core: Some(core),
            stop: Arc::new(AtomicBool::new(false)),
            thread: None,
        })
    }

    /// The replica's live query service. The handle stays valid across a
    /// snapshot re-sync (it keeps serving the pre-re-sync epoch); call again
    /// for the freshest one.
    pub fn service(&self) -> Arc<QueryService> {
        self.ctx.service.read().clone()
    }

    /// One replication round: ship from the next needed epoch, replay, ack.
    /// Falls back to a full snapshot re-sync when the leader's log no longer
    /// retains the replica's position. Fails with [`ReplError::Busy`] while
    /// the background thread owns the connection.
    pub fn sync_once(&mut self) -> Result<SyncOutcome, ReplError> {
        let core = self.core.as_mut().ok_or(ReplError::Busy)?;
        sync_round(&self.ctx, core)
    }

    /// Drives [`Replica::sync_once`] until a round reports `caught_up`,
    /// erroring after `max_rounds` attempts. Returns the applied epoch.
    pub fn sync_to_caught_up(&mut self, max_rounds: usize) -> Result<u64, ReplError> {
        for _ in 0..max_rounds {
            if self.sync_once()?.caught_up {
                return Ok(self.applied_epoch());
            }
        }
        Err(ReplError::Protocol(format!(
            "replica did not catch up within {max_rounds} rounds (applied {}, leader {})",
            self.applied_epoch(),
            self.leader_epoch()
        )))
    }

    /// Starts the background replication thread: sync rounds back to back
    /// while behind, [`ReplicaConfig::poll_interval`] sleeps while caught
    /// up, reconnect with capped backoff on connection loss.
    pub fn run(&mut self) -> Result<(), ReplError> {
        let core = self.core.take().ok_or(ReplError::Busy)?;
        self.stop.store(false, Ordering::SeqCst);
        let ctx = self.ctx.clone();
        let stop = self.stop.clone();
        let thread = std::thread::Builder::new()
            .name("ksp-repl-follower".to_string())
            .spawn(move || run_loop(&ctx, core, &stop))
            .expect("failed to spawn replication thread");
        self.thread = Some(thread);
        Ok(())
    }

    /// Whether the background replication thread is running.
    pub fn is_running(&self) -> bool {
        self.thread.is_some()
    }

    /// Promotes the replica: stops the replication pull and declares the
    /// already-running service the new authority. The service itself needs
    /// no work — no image load, no replay, no index build — which is the
    /// entire point of a warm standby.
    pub fn promote(&mut self) -> Promotion {
        let started = Instant::now();
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            if let Ok(core) = thread.join() {
                self.core = Some(core);
            }
        }
        self.ctx.shared.promoted.store(true, Ordering::SeqCst);
        Promotion { duration: started.elapsed(), epoch: self.applied_epoch() }
    }

    /// Whether [`Replica::promote`] has run.
    pub fn is_promoted(&self) -> bool {
        self.ctx.shared.promoted.load(Ordering::Relaxed)
    }

    /// The newest epoch this replica has applied.
    pub fn applied_epoch(&self) -> u64 {
        self.ctx.shared.applied.load(Ordering::Relaxed)
    }

    /// The leader's current epoch as of the last exchange.
    pub fn leader_epoch(&self) -> u64 {
        self.ctx.shared.leader_epoch.load(Ordering::Relaxed)
    }

    /// Epochs between the last observed leader position and this replica.
    pub fn lag_epochs(&self) -> u64 {
        self.leader_epoch().saturating_sub(self.applied_epoch())
    }

    /// Snapshot re-syncs this replica has performed (0 in steady state).
    pub fn resyncs(&self) -> u64 {
        self.ctx.shared.resyncs.load(Ordering::Relaxed)
    }

    /// Answers a query from the replica's current epoch, enforcing the
    /// [`ReplicaConfig::max_read_lag`] staleness bound (until promotion,
    /// which makes this replica the authority and lifts the bound).
    pub fn query(
        &self,
        source: VertexId,
        target: VertexId,
        k: usize,
    ) -> Result<QueryResponse, ReplError> {
        if let Some(bound) = self.ctx.config.max_read_lag {
            if !self.is_promoted() {
                let lag = self.lag_epochs();
                if lag > bound {
                    return Err(ReplError::StaleRead { lag, bound });
                }
            }
        }
        self.service().query(source, target, k).map_err(ReplError::Service)
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Transfers the manifest's image files into a fresh generation directory
/// and opens a persistent service over them. `Store::recover` on an
/// image-only directory starts a fresh log at `snapshot_epoch + 1`, so the
/// replica's own durability picks up exactly where the transfer ended.
fn fetch_and_open(
    core: &mut Core,
    root: &Path,
    config: &ReplicaConfig,
    manifest: &WireSnapshotManifest,
) -> Result<Arc<QueryService>, ReplError> {
    core.generation += 1;
    let dir = root.join(format!("gen-{:06}", core.generation));
    if dir.exists() {
        std::fs::remove_dir_all(&dir)?;
    }
    std::fs::create_dir_all(&dir)?;
    for file in &manifest.files {
        let mut out = std::fs::File::create(dir.join(&file.name))?;
        let mut offset = 0u64;
        while offset < file.len {
            let chunk = core.client.snapshot_chunk(&file.name, offset, config.chunk_bytes)?;
            if chunk.total_len != file.len {
                // The file changed size under us — the leader pruned or
                // replaced it mid-transfer. The caller re-ships for a fresh
                // manifest.
                return Err(ReplError::Protocol(format!(
                    "{} changed size during transfer ({} -> {})",
                    file.name, file.len, chunk.total_len
                )));
            }
            if chunk.bytes.is_empty() {
                return Err(ReplError::Protocol(format!(
                    "leader returned an empty chunk for {} at offset {offset}",
                    file.name
                )));
            }
            out.write_all(&chunk.bytes)?;
            offset += chunk.bytes.len() as u64;
        }
        out.sync_all()?;
    }
    let (service, _report) = QueryService::open(&dir, config.service, config.store)?;
    let applied = service.current_epoch();
    if applied != manifest.snapshot_epoch {
        return Err(ReplError::Protocol(format!(
            "snapshot recovered to epoch {applied}, manifest promised {}",
            manifest.snapshot_epoch
        )));
    }
    Ok(Arc::new(service))
}

/// One ship → replay → ack round over an established connection.
fn sync_round(ctx: &SyncCtx, core: &mut Core) -> Result<SyncOutcome, ReplError> {
    let service = ctx.service.read().clone();
    let from = service.current_epoch() + 1;
    let batch = core.client.ship_segment(from, ctx.config.max_records, ctx.config.max_bytes)?;
    ctx.shared.leader_epoch.store(batch.leader_epoch, Ordering::Relaxed);
    if let Some(manifest) = batch.fallback {
        // The leader pruned past our position: full re-sync into the next
        // generation directory, then swap the live service.
        return full_resync(ctx, core, &manifest);
    }
    let mut applied_records = 0u64;
    for record in &batch.records {
        let expected = service.current_epoch() + 1;
        if record.epoch != expected {
            // A duplicated, re-ordered or otherwise damaged shipment broke
            // the contiguous epoch chain. The shipped records can no longer
            // be trusted against our position, but the leader's image set
            // can: salvage with a full snapshot re-sync instead of killing
            // the sync loop over one bad payload.
            eprintln!(
                "ksp-repl: leader shipped epoch {} where {expected} was expected; \
                 falling back to snapshot re-sync",
                record.epoch
            );
            return salvage_resync(ctx, core);
        }
        let published = service.apply_batch(&record.batch)?;
        debug_assert_eq!(published, record.epoch);
        applied_records += 1;
    }
    let applied = service.current_epoch();
    ctx.shared.applied.store(applied, Ordering::Relaxed);
    ctx.shared.records_applied.fetch_add(applied_records, Ordering::Relaxed);
    let leader_epoch = core.client.repl_ack(&ctx.config.follower, applied)?;
    ctx.shared.leader_epoch.store(leader_epoch.max(batch.leader_epoch), Ordering::Relaxed);
    Ok(SyncOutcome { applied_records, resynced: false, caught_up: applied >= leader_epoch })
}

/// Transfers the manifest's snapshot into a fresh generation directory,
/// swaps the live service to it and acks the recovered position.
fn full_resync(
    ctx: &SyncCtx,
    core: &mut Core,
    manifest: &WireSnapshotManifest,
) -> Result<SyncOutcome, ReplError> {
    let old_generation = core.generation;
    let fresh = fetch_and_open(core, &ctx.root, &ctx.config, manifest)?;
    fresh.set_replication_hook(Arc::new(FollowerHook { shared: ctx.shared.clone() }));
    let applied = fresh.current_epoch();
    *ctx.service.write() = fresh;
    ctx.shared.applied.store(applied, Ordering::Relaxed);
    ctx.shared.resyncs.fetch_add(1, Ordering::Relaxed);
    let _ = std::fs::remove_dir_all(ctx.root.join(format!("gen-{old_generation:06}")));
    let leader_epoch = core.client.repl_ack(&ctx.config.follower, applied)?;
    ctx.shared.leader_epoch.store(leader_epoch, Ordering::Relaxed);
    Ok(SyncOutcome { applied_records: 0, resynced: true, caught_up: applied >= leader_epoch })
}

/// Recovers from an untrusted shipment by requesting the snapshot fallback
/// outright: epoch 0 lives in the leader's initial checkpoint, never in its
/// log, so shipping from 0 always answers with a manifest.
fn salvage_resync(ctx: &SyncCtx, core: &mut Core) -> Result<SyncOutcome, ReplError> {
    let batch = core.client.ship_segment(0, ctx.config.max_records, ctx.config.max_bytes)?;
    ctx.shared.leader_epoch.store(batch.leader_epoch, Ordering::Relaxed);
    let manifest = batch.fallback.ok_or_else(|| {
        ReplError::Protocol("leader did not offer a snapshot for a salvage re-sync".to_string())
    })?;
    full_resync(ctx, core, &manifest)
}

/// The background pull loop. Returns the core so a later [`Replica::promote`]
/// (or a restart of [`Replica::run`]) can reuse the connection state.
///
/// Failed rounds back off with decorrelated jitter (uniform in
/// `[backoff_base, 3 × previous sleep]`, clamped to `backoff_cap`), seeded
/// from the follower name so concurrent followers decorrelate without any
/// shared randomness — and deterministically, so a seeded chaos run replays.
fn run_loop(ctx: &Arc<SyncCtx>, mut core: Core, stop: &Arc<AtomicBool>) -> Core {
    let base_ms = ctx.config.backoff_base.as_millis().max(1) as u64;
    let cap_ms = (ctx.config.backoff_cap.as_millis() as u64).max(base_ms);
    let mut prev_ms = 0u64;
    let mut jitter = {
        // FNV-1a over the follower name, xorshift-ready (never zero).
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in ctx.config.follower.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h | 1
    };
    while !stop.load(Ordering::SeqCst) {
        match sync_round(ctx, &mut core) {
            Ok(outcome) => {
                prev_ms = 0;
                if outcome.caught_up {
                    sleep_unless_stopped(stop, ctx.config.poll_interval);
                }
            }
            Err(_) => {
                // Connection lost or the leader is unhealthy: back off
                // (capped low so a promotion request never waits long) and
                // reconnect.
                jitter ^= jitter << 13;
                jitter ^= jitter >> 7;
                jitter ^= jitter << 17;
                let prev = prev_ms.max(base_ms);
                let span = prev.saturating_mul(3).saturating_sub(base_ms).max(1);
                let sleep_ms = base_ms.saturating_add(jitter % span).min(cap_ms);
                prev_ms = sleep_ms;
                sleep_unless_stopped(stop, Duration::from_millis(sleep_ms));
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok((client, hello)) = connect_leader(ctx.addr, &ctx.config) {
                    if hello.negotiated_version >= 2 {
                        core.client = client;
                    }
                }
            }
        }
    }
    core
}

/// Sleeps up to `total`, in small slices, returning early when `stop` flips —
/// promotion must never wait out a full backoff.
fn sleep_unless_stopped(stop: &AtomicBool, total: Duration) {
    let slice = Duration::from_millis(2);
    let mut slept = Duration::ZERO;
    while slept < total && !stop.load(Ordering::SeqCst) {
        let step = slice.min(total - slept);
        std::thread::sleep(step);
        slept += step;
    }
}
