//! `ksp-repl`: log-shipping replication for the KSP-DG serving subsystem.
//!
//! A persistent [`QueryService`](ksp_serve::QueryService) already writes
//! every published epoch to `ksp-store`'s CRC-guarded delta log before the
//! epoch becomes visible. This crate turns that durability artifact into a
//! replication stream:
//!
//! * [`ReplicationSource`] plugs into a **leader** service (via
//!   [`ksp_serve::ReplicationHook`]) and answers the protocol-v2 replication
//!   surface — `ShipSegment` streams contiguous, CRC-revalidated WAL records
//!   from a requested epoch; when the follower's position has fallen out of
//!   the retained log window (or it is joining fresh — epoch 0 lives in the
//!   initial checkpoint, never in the log), the reply downgrades to a
//!   **snapshot fallback**: a manifest of the newest full checkpoint plus its
//!   partial-image chain, fetched file by file with `SnapshotChunk` requests.
//!   `ReplAck` reports follower positions back, so the leader exports
//!   per-follower lag (`ksp_repl_lag_epochs{follower="..."}`) alongside
//!   shipping throughput counters in its observability snapshot.
//! * [`Replica`] is the **follower**: it bootstraps from the snapshot
//!   fallback into its own durable store directory, then pulls record batches
//!   over a [`TcpTransport`](ksp_proto::TcpTransport) connection and replays
//!   them through the same copy-on-write `apply_batch` publish path the
//!   leader ran — replay is deterministic, so a caught-up follower's
//!   `(graph, index)` pair is **byte-identical** to the leader's, and its
//!   queries answer bit-for-bit the same distances. Reads are served the
//!   whole time, with observable staleness bounded by
//!   [`ReplicaConfig::max_read_lag`].
//! * **Warm failover**: [`Replica::promote`] stops the replication pull and
//!   declares the already-running service the new authority — promotion takes
//!   milliseconds (no index build, no log replay, no image load), versus a
//!   cold [`Store::recover`](ksp_store::Store::recover) start paying image
//!   decode plus replay. The `repl` experiment in `ksp-bench` measures the
//!   gap.
//!
//! The wire surface is versioned: replication requests ride protocol
//! version 2, negotiated through the extended `Ping` handshake, and a v1-only
//! peer keeps decoding every legacy frame untouched.

#![warn(missing_docs)]

pub mod replica;
pub mod source;

pub use replica::{Promotion, Replica, ReplicaConfig, SyncOutcome};
pub use source::{FollowerLag, ReplicationSource};

use ksp_proto::ClientError;
use ksp_serve::{PublishError, ServiceError};
use ksp_store::StoreError;

/// Why a replication operation failed.
#[derive(Debug)]
pub enum ReplError {
    /// The service has no durable store, so there is no log to ship.
    NotPersistent,
    /// The leader connection failed or answered with a typed error.
    Client(ClientError),
    /// The follower's local store rejected an operation.
    Store(StoreError),
    /// Replaying a shipped batch through the publish path failed.
    Publish(PublishError),
    /// Local filesystem I/O failed (snapshot transfer, directory setup).
    Io(std::io::Error),
    /// The peer violated the replication protocol (non-contiguous records,
    /// a mid-transfer manifest change, a pre-v2 leader).
    Protocol(String),
    /// A manual sync was requested while the background replication thread
    /// owns the connection.
    Busy,
    /// The replica refused a read because its lag exceeds the configured
    /// staleness bound.
    StaleRead {
        /// Epochs behind the leader's last reported position.
        lag: u64,
        /// The configured [`ReplicaConfig::max_read_lag`].
        bound: u64,
    },
    /// The replica's service rejected the query.
    Service(ServiceError),
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::NotPersistent => {
                write!(f, "replication needs a persistent service (no durable store attached)")
            }
            ReplError::Client(e) => write!(f, "leader connection failed: {e}"),
            ReplError::Store(e) => write!(f, "follower store error: {e}"),
            ReplError::Publish(e) => write!(f, "replaying a shipped batch failed: {e:?}"),
            ReplError::Io(e) => write!(f, "replication I/O failed: {e}"),
            ReplError::Protocol(msg) => write!(f, "replication protocol violation: {msg}"),
            ReplError::Busy => {
                write!(f, "the background replication thread owns the leader connection")
            }
            ReplError::StaleRead { lag, bound } => {
                write!(f, "replica is {lag} epochs behind (staleness bound {bound})")
            }
            ReplError::Service(e) => write!(f, "replica query rejected: {e:?}"),
        }
    }
}

impl std::error::Error for ReplError {}

impl From<ClientError> for ReplError {
    fn from(e: ClientError) -> Self {
        ReplError::Client(e)
    }
}

impl From<StoreError> for ReplError {
    fn from(e: StoreError) -> Self {
        ReplError::Store(e)
    }
}

impl From<PublishError> for ReplError {
    fn from(e: PublishError) -> Self {
        ReplError::Publish(e)
    }
}

impl From<std::io::Error> for ReplError {
    fn from(e: std::io::Error) -> Self {
        ReplError::Io(e)
    }
}
