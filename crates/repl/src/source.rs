//! The leader side of log-shipping replication: a [`ReplicationSource`]
//! registered on a persistent [`QueryService`] answers the protocol-v2
//! replication requests out of the service's own durable store.
//!
//! The source never copies the log: `ShipSegment` reads records straight out
//! of the retained WAL segments under the store lock (appends hold the same
//! lock, so a shipped record is always complete), re-validating every CRC on
//! the way out. When a follower asks for an epoch the log no longer retains —
//! a fresh join (epoch 0 lives in the initial checkpoint, not the log) or a
//! laggard that slept through pruning — the reply carries a **snapshot
//! fallback** manifest instead, and the follower fetches the image files with
//! bounded `SnapshotChunk` requests.

use ksp_obs::{Counter, Gauge};
use ksp_proto::message::{ErrorReply, Request, Response};
use ksp_proto::{
    WireSegmentBatch, WireShippedRecord, WireSnapshotChunk, WireSnapshotFile, WireSnapshotManifest,
};
use ksp_serve::{QueryService, ReplicationHook};
use ksp_store::{SnapshotManifest, Store};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use crate::ReplError;

/// Hard cap on records per `ShipSegment` reply, whatever the follower asks.
pub const MAX_SHIP_RECORDS: u64 = 4096;
/// Hard cap on (estimated) record bytes per `ShipSegment` reply — well under
/// the 64 MiB frame payload limit.
pub const MAX_SHIP_BYTES: u64 = 32 * 1024 * 1024;
/// Hard cap on bytes per `SnapshotChunk` reply.
pub const MAX_CHUNK_BYTES: u64 = 8 * 1024 * 1024;

const DEFAULT_SHIP_RECORDS: u64 = 512;
const DEFAULT_SHIP_BYTES: u64 = 4 * 1024 * 1024;
const DEFAULT_CHUNK_BYTES: u64 = 1024 * 1024;

/// One follower's last acknowledged position, as the leader sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FollowerLag {
    /// The follower's self-reported name.
    pub follower: String,
    /// The newest epoch the follower has acknowledged applying.
    pub applied_epoch: u64,
    /// Epochs between the leader's current epoch and `applied_epoch`.
    pub lag_epochs: u64,
}

/// The leader-side replication endpoint. Construct with
/// [`ReplicationSource::attach`]; afterwards both of the service's transports
/// (thread-per-connection and event loop) answer `ShipSegment`,
/// `SnapshotChunk` and `ReplAck`, and the service's observability snapshot
/// grows the `ksp_repl_*` metric families.
pub struct ReplicationSource {
    /// Weak: the service holds an `Arc` of this hook, so a strong pointer
    /// back would leak both.
    service: Weak<QueryService>,
    store: Arc<Mutex<Store>>,
    /// follower name → newest acknowledged epoch.
    followers: Mutex<BTreeMap<String, u64>>,
    ship_records: AtomicU64,
    ship_bytes: AtomicU64,
    snapshot_bytes: AtomicU64,
    snapshot_fallbacks: AtomicU64,
    acks: AtomicU64,
}

impl ReplicationSource {
    /// Builds a source over `service`'s durable store and registers it as the
    /// service's replication hook. Fails with [`ReplError::NotPersistent`]
    /// for an in-memory service — there is no log to ship.
    pub fn attach(service: &Arc<QueryService>) -> Result<Arc<Self>, ReplError> {
        let store = service.store_handle().ok_or(ReplError::NotPersistent)?;
        let source = Arc::new(ReplicationSource {
            service: Arc::downgrade(service),
            store,
            followers: Mutex::new(BTreeMap::new()),
            ship_records: AtomicU64::new(0),
            ship_bytes: AtomicU64::new(0),
            snapshot_bytes: AtomicU64::new(0),
            snapshot_fallbacks: AtomicU64::new(0),
            acks: AtomicU64::new(0),
        });
        service.set_replication_hook(source.clone());
        Ok(source)
    }

    /// The leader's current epoch — the lag reference followers are measured
    /// against. Zero once the service itself has been dropped.
    fn leader_epoch(&self) -> u64 {
        self.service.upgrade().map(|s| s.current_epoch()).unwrap_or(0)
    }

    /// Every follower that has acknowledged at least once, with its lag
    /// relative to the current leader epoch.
    pub fn follower_lags(&self) -> Vec<FollowerLag> {
        let leader_epoch = self.leader_epoch();
        self.followers
            .lock()
            .iter()
            .map(|(follower, &applied_epoch)| FollowerLag {
                follower: follower.clone(),
                applied_epoch,
                lag_epochs: leader_epoch.saturating_sub(applied_epoch),
            })
            .collect()
    }

    /// Cumulative WAL records shipped.
    pub fn records_shipped(&self) -> u64 {
        self.ship_records.load(Ordering::Relaxed)
    }

    /// Cumulative estimated WAL bytes shipped.
    pub fn bytes_shipped(&self) -> u64 {
        self.ship_bytes.load(Ordering::Relaxed)
    }

    /// Cumulative snapshot image bytes transferred to re-seeding followers.
    pub fn snapshot_bytes_shipped(&self) -> u64 {
        self.snapshot_bytes.load(Ordering::Relaxed)
    }

    /// Cumulative snapshot-fallback replies (fresh joins + laggards).
    pub fn snapshot_fallbacks(&self) -> u64 {
        self.snapshot_fallbacks.load(Ordering::Relaxed)
    }

    fn ship(&self, from_epoch: u64, max_records: u64, max_bytes: u64) -> Response {
        let max_records = match max_records {
            0 => DEFAULT_SHIP_RECORDS,
            n => n.min(MAX_SHIP_RECORDS),
        } as usize;
        let max_bytes = match max_bytes {
            0 => DEFAULT_SHIP_BYTES,
            n => n.min(MAX_SHIP_BYTES),
        };
        let leader_epoch = self.leader_epoch();
        let store = self.store.lock();
        if from_epoch < store.oldest_retained_epoch() {
            // The requested position predates the retained log window: the
            // log cannot serve it, but the image set always can — pruning is
            // bounded by retained full checkpoints.
            return match store.snapshot_manifest() {
                Ok(manifest) => {
                    self.snapshot_fallbacks.fetch_add(1, Ordering::Relaxed);
                    Response::SegmentBatch(WireSegmentBatch {
                        leader_epoch,
                        records: Vec::new(),
                        fallback: Some(wire_manifest(&manifest)),
                    })
                }
                Err(e) => Response::Error(ErrorReply::Storage(e.to_string())),
            };
        }
        match store.read_log_from(from_epoch, max_records, max_bytes) {
            Ok(records) => {
                let shipped: u64 = records.iter().map(|r| 16 + r.batch.len() as u64 * 12).sum();
                self.ship_records.fetch_add(records.len() as u64, Ordering::Relaxed);
                self.ship_bytes.fetch_add(shipped, Ordering::Relaxed);
                Response::SegmentBatch(WireSegmentBatch {
                    leader_epoch,
                    records: records
                        .into_iter()
                        .map(|r| WireShippedRecord { epoch: r.epoch, batch: r.batch })
                        .collect(),
                    fallback: None,
                })
            }
            Err(e) => Response::Error(ErrorReply::Storage(e.to_string())),
        }
    }

    fn chunk(&self, name: &str, offset: u64, max_len: u64) -> Response {
        let max_len = match max_len {
            0 => DEFAULT_CHUNK_BYTES,
            n => n.min(MAX_CHUNK_BYTES),
        };
        match self.store.lock().read_image_chunk(name, offset, max_len) {
            Ok((total_len, bytes)) => {
                self.snapshot_bytes.fetch_add(bytes.len() as u64, Ordering::Relaxed);
                Response::SnapshotChunk(WireSnapshotChunk {
                    name: name.to_string(),
                    offset,
                    total_len,
                    bytes,
                })
            }
            Err(e) => Response::Error(ErrorReply::Storage(e.to_string())),
        }
    }

    fn ack(&self, follower: &str, applied_epoch: u64) -> Response {
        self.followers.lock().insert(follower.to_string(), applied_epoch);
        self.acks.fetch_add(1, Ordering::Relaxed);
        Response::ReplAck { leader_epoch: self.leader_epoch() }
    }
}

impl ReplicationHook for ReplicationSource {
    fn handle(&self, request: &Request) -> Response {
        match request {
            Request::ShipSegment { from_epoch, max_records, max_bytes } => {
                self.ship(*from_epoch, *max_records, *max_bytes)
            }
            Request::SnapshotChunk { name, offset, max_len } => self.chunk(name, *offset, *max_len),
            Request::ReplAck { follower, applied_epoch } => self.ack(follower, *applied_epoch),
            _ => Response::Error(ErrorReply::Unsupported("not a replication request".to_string())),
        }
    }

    fn metric_families(&self) -> (Vec<Counter>, Vec<Gauge>) {
        let unlabelled = |name: &str, value: u64| Counter {
            name: name.to_string(),
            labels: String::new(),
            value,
        };
        let counters = vec![
            unlabelled("ksp_repl_ship_records_total", self.ship_records.load(Ordering::Relaxed)),
            unlabelled("ksp_repl_ship_bytes_total", self.ship_bytes.load(Ordering::Relaxed)),
            unlabelled(
                "ksp_repl_snapshot_bytes_total",
                self.snapshot_bytes.load(Ordering::Relaxed),
            ),
            unlabelled(
                "ksp_repl_snapshot_fallbacks_total",
                self.snapshot_fallbacks.load(Ordering::Relaxed),
            ),
            unlabelled("ksp_repl_acks_total", self.acks.load(Ordering::Relaxed)),
        ];
        let lags = self.follower_lags();
        let mut gauges = vec![Gauge {
            name: "ksp_repl_followers".to_string(),
            labels: String::new(),
            value: lags.len() as f64,
        }];
        for lag in &lags {
            gauges.push(Gauge {
                name: "ksp_repl_lag_epochs".to_string(),
                labels: format!("follower=\"{}\"", lag.follower),
                value: lag.lag_epochs as f64,
            });
        }
        (counters, gauges)
    }
}

fn wire_manifest(manifest: &SnapshotManifest) -> WireSnapshotManifest {
    WireSnapshotManifest {
        snapshot_epoch: manifest.snapshot_epoch,
        files: manifest
            .files
            .iter()
            .map(|(name, len)| WireSnapshotFile { name: name.clone(), len: *len })
            .collect(),
    }
}
