//! The dynamic weighted graph (Definition 1 of the paper).

use crate::error::GraphError;
use crate::ids::{EdgeId, VertexId};
use crate::snapshot::GraphSnapshot;
use crate::update::{UpdateBatch, WeightUpdate};
use crate::view::GraphView;
use crate::weight::Weight;
use std::collections::HashMap;
use std::sync::Arc;

/// A single edge of the graph together with its evolving weight.
///
/// The *initial* weight is kept separately from the *current* weight because the DTLP
/// index interprets the initial weight as the number of virtual fragments of the edge
/// (Section 3.4); that number never changes even as the current weight evolves.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeRecord {
    /// First endpoint (the tail for directed graphs).
    pub u: VertexId,
    /// Second endpoint (the head for directed graphs).
    pub v: VertexId,
    /// Initial weight, interpreted as the number of virtual fragments (>= 1).
    pub initial_weight: u32,
    /// Current weight (travel time); changes over time.
    pub current_weight: Weight,
}

impl EdgeRecord {
    /// The endpoint of this edge that is not `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of the edge.
    #[inline]
    pub fn other_endpoint(&self, from: VertexId) -> VertexId {
        if from == self.u {
            self.v
        } else if from == self.v {
            self.u
        } else {
            panic!("{from} is not an endpoint of edge ({}, {})", self.u, self.v)
        }
    }

    /// The unit weight of the edge: current weight divided by the vfrag count.
    #[inline]
    pub fn unit_weight(&self) -> Weight {
        self.current_weight / self.initial_weight as f64
    }
}

/// The structural (weight-independent) part of a [`DynamicGraph`]: adjacency
/// and the endpoint-pair lookup. Weight updates never touch it, so epoch
/// publication shares one allocation across every derived graph copy.
#[derive(Debug, Clone)]
struct Topology {
    directed: bool,
    /// Out-adjacency. For undirected graphs each edge appears in both endpoint lists.
    adj: Vec<Vec<(VertexId, EdgeId)>>,
    /// Lookup from endpoint pair to edge id. Keys are canonicalised (min, max) for
    /// undirected graphs and kept as (tail, head) for directed graphs.
    edge_lookup: HashMap<(u32, u32), EdgeId>,
}

/// An in-memory dynamic weighted graph.
///
/// The graph is either undirected (the road-network default in the paper) or directed
/// (Section 5.3 discusses the directed extension). Edge weights can be updated in
/// batches via [`DynamicGraph::apply_batch`]; every batch advances the graph version,
/// which models the `Gcurr` snapshot buffer of Section 2.
///
/// Cloning is copy-on-write with respect to structure: the adjacency lists and
/// endpoint lookup live behind an `Arc` shared by every clone, and only the
/// edge-record table (the evolving weights) is copied. Structural mutation
/// ([`DynamicGraph::add_edge`]) unshares the topology on demand, so building a
/// graph is unaffected while [`DynamicGraph::with_batch`] — the epoch publish
/// primitive — costs one flat `memcpy` of the weight table instead of
/// reallocating per-vertex adjacency.
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    topology: Arc<Topology>,
    edges: Vec<EdgeRecord>,
    version: u64,
}

impl DynamicGraph {
    /// Creates an empty graph with `num_vertices` vertices and no edges.
    pub fn new(num_vertices: usize, directed: bool) -> Self {
        DynamicGraph {
            topology: Arc::new(Topology {
                directed,
                adj: vec![Vec::new(); num_vertices],
                edge_lookup: HashMap::new(),
            }),
            edges: Vec::new(),
            version: 0,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.topology.adj.len()
    }

    /// Number of edges. For undirected graphs each undirected edge counts once.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.topology.directed
    }

    /// Whether `self` and `other` share one structural (adjacency + lookup)
    /// allocation. Diagnostic for the copy-on-write publish path: a graph
    /// derived via [`DynamicGraph::with_batch`] must share its parent's
    /// topology, never deep-copy it.
    pub fn shares_topology_with(&self, other: &DynamicGraph) -> bool {
        Arc::ptr_eq(&self.topology, &other.topology)
    }

    /// Current version of the graph; incremented by every applied update batch.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.topology.adj.len() as u32).map(VertexId)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterator over all edge records.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &EdgeRecord)> + '_ {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// Returns the record of an edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge id is out of range.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &EdgeRecord {
        &self.edges[e.index()]
    }

    /// Returns the edge id between `u` and `v`, if one exists.
    ///
    /// For directed graphs this looks up the edge from `u` to `v` only.
    pub fn edge_between(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        self.topology.edge_lookup.get(&self.lookup_key(u, v)).copied()
    }

    /// Out-degree of a vertex (degree for undirected graphs).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.topology.adj[v.index()].len()
    }

    /// Returns the adjacency list of `v`: pairs of (neighbour, edge id).
    #[inline]
    pub fn adjacency(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        &self.topology.adj[v.index()]
    }

    /// Validates a vertex id against this graph.
    pub fn check_vertex(&self, v: VertexId) -> Result<(), GraphError> {
        if v.index() >= self.num_vertices() {
            Err(GraphError::VertexOutOfRange { vertex: v, num_vertices: self.num_vertices() })
        } else {
            Ok(())
        }
    }

    /// Adds an edge with the given initial (integer) weight; the current weight starts
    /// equal to the initial weight.
    ///
    /// Returns the id of the new edge.
    pub fn add_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        initial_weight: u32,
    ) -> Result<EdgeId, GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if initial_weight == 0 {
            return Err(GraphError::ZeroInitialWeight { u, v });
        }
        let key = self.lookup_key(u, v);
        if self.topology.edge_lookup.contains_key(&key) {
            return Err(GraphError::DuplicateEdge { u, v });
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeRecord {
            u,
            v,
            initial_weight,
            current_weight: Weight::from(initial_weight),
        });
        // Structural mutation unshares the topology; during graph construction
        // the Arc is unique and this mutates in place.
        let topology = Arc::make_mut(&mut self.topology);
        topology.edge_lookup.insert(key, id);
        topology.adj[u.index()].push((v, id));
        if !topology.directed {
            topology.adj[v.index()].push((u, id));
        }
        Ok(id)
    }

    /// Sets the current weight of an edge, returning the previous weight.
    pub fn set_weight(&mut self, e: EdgeId, weight: Weight) -> Result<Weight, GraphError> {
        let record = self
            .edges
            .get_mut(e.index())
            .ok_or(GraphError::EdgeOutOfRange { edge: e, num_edges: 0 })?;
        let old = record.current_weight;
        record.current_weight = weight;
        Ok(old)
    }

    /// Applies one weight update, returning the signed delta that was applied.
    pub fn apply_update(&mut self, update: &WeightUpdate) -> Result<f64, GraphError> {
        let num_edges = self.edges.len();
        let record = self
            .edges
            .get_mut(update.edge.index())
            .ok_or(GraphError::EdgeOutOfRange { edge: update.edge, num_edges })?;
        let old = record.current_weight;
        record.current_weight = update.new_weight;
        Ok(update.new_weight.value() - old.value())
    }

    /// Applies a batch of updates and advances the graph version.
    ///
    /// Returns the new version.
    pub fn apply_batch(&mut self, batch: &UpdateBatch) -> Result<u64, GraphError> {
        for update in &batch.updates {
            self.apply_update(update)?;
        }
        self.version += 1;
        Ok(self.version)
    }

    /// Takes a consistent snapshot of the current weights (the `Gcurr` buffer of §2).
    pub fn snapshot(&self) -> GraphSnapshot {
        GraphSnapshot::capture(self)
    }

    /// Rebuilds a graph from its persisted parts: the edge records (in edge-id
    /// order, carrying both initial and current weights) and the version
    /// counter. This is the decode-side counterpart of iterating
    /// [`DynamicGraph::edges`]; `ksp-store` uses it to reconstruct the exact
    /// graph a checkpoint captured, including in-flight weight updates.
    pub fn restore(
        directed: bool,
        num_vertices: usize,
        edges: Vec<EdgeRecord>,
        version: u64,
    ) -> Result<Self, GraphError> {
        let mut graph = DynamicGraph::new(num_vertices, directed);
        for record in edges {
            let id = graph.add_edge(record.u, record.v, record.initial_weight)?;
            graph.edges[id.index()].current_weight = record.current_weight;
        }
        graph.version = version;
        Ok(graph)
    }

    /// Overwrites the current weights of the given edges and jumps the version
    /// counter to `version`, without advancing it per batch.
    ///
    /// This is a storage-layer restore primitive, not an update path: applying
    /// an incremental checkpoint patches exactly the edges whose owning
    /// subgraphs were dirtied since the base image and then fast-forwards the
    /// version to the epoch the image captured. Weights are absolute (the
    /// checkpointed bits), so the result is bit-identical to the graph that
    /// was imaged regardless of how many epochs the patch spans.
    pub fn restore_weights(
        &mut self,
        weights: impl IntoIterator<Item = (EdgeId, Weight)>,
        version: u64,
    ) -> Result<(), GraphError> {
        for (e, w) in weights {
            self.set_weight(e, w)?;
        }
        self.version = version;
        Ok(())
    }

    /// Copy-on-write batch application: returns a new graph with `batch` applied and
    /// the version advanced, leaving `self` untouched.
    ///
    /// This is the publish primitive of the serving subsystem: the updater derives the
    /// next epoch's graph without ever mutating the one concurrent readers hold. The
    /// returned graph shares `self`'s topology allocation (see the type-level
    /// docs), so the cost is one copy of the edge-record table plus the batch.
    pub fn with_batch(&self, batch: &UpdateBatch) -> Result<DynamicGraph, GraphError> {
        let mut next = self.clone();
        next.apply_batch(batch)?;
        Ok(next)
    }

    /// Current weight of an edge.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> Weight {
        self.edges[e.index()].current_weight
    }

    /// Initial (vfrag-count) weight of an edge.
    #[inline]
    pub fn initial_weight(&self, e: EdgeId) -> u32 {
        self.edges[e.index()].initial_weight
    }

    /// Total current weight over all edges. Useful for sanity checks in tests.
    pub fn total_weight(&self) -> Weight {
        self.edges.iter().map(|e| e.current_weight).sum()
    }

    #[inline]
    fn lookup_key(&self, u: VertexId, v: VertexId) -> (u32, u32) {
        if self.topology.directed || u.0 <= v.0 {
            (u.0, v.0)
        } else {
            (v.0, u.0)
        }
    }
}

impl GraphView for DynamicGraph {
    fn num_vertices(&self) -> usize {
        self.topology.adj.len()
    }

    fn contains_vertex(&self, v: VertexId) -> bool {
        v.index() < self.topology.adj.len()
    }

    fn for_each_neighbor(&self, v: VertexId, mut f: impl FnMut(VertexId, Weight)) {
        for &(to, e) in &self.topology.adj[v.index()] {
            f(to, self.edges[e.index()].current_weight);
        }
    }

    fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.edge_between(u, v).map(|e| self.edges[e.index()].current_weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> DynamicGraph {
        let mut g = DynamicGraph::new(3, false);
        g.add_edge(VertexId(0), VertexId(1), 2).unwrap();
        g.add_edge(VertexId(1), VertexId(2), 3).unwrap();
        g.add_edge(VertexId(0), VertexId(2), 7).unwrap();
        g
    }

    #[test]
    fn add_edge_populates_adjacency_both_ways_when_undirected() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.degree(VertexId(1)), 2);
        assert_eq!(g.degree(VertexId(2)), 2);
    }

    #[test]
    fn directed_graph_only_adds_out_adjacency() {
        let mut g = DynamicGraph::new(3, true);
        g.add_edge(VertexId(0), VertexId(1), 1).unwrap();
        assert_eq!(g.degree(VertexId(0)), 1);
        assert_eq!(g.degree(VertexId(1)), 0);
        assert!(g.edge_between(VertexId(0), VertexId(1)).is_some());
        assert!(g.edge_between(VertexId(1), VertexId(0)).is_none());
    }

    #[test]
    fn directed_graph_allows_both_directions_as_distinct_edges() {
        let mut g = DynamicGraph::new(2, true);
        let e0 = g.add_edge(VertexId(0), VertexId(1), 5).unwrap();
        let e1 = g.add_edge(VertexId(1), VertexId(0), 9).unwrap();
        assert_ne!(e0, e1);
        assert_eq!(g.edge_weight(VertexId(0), VertexId(1)), Some(Weight::new(5.0)));
        assert_eq!(g.edge_weight(VertexId(1), VertexId(0)), Some(Weight::new(9.0)));
    }

    #[test]
    fn duplicate_edges_are_rejected() {
        let mut g = DynamicGraph::new(3, false);
        g.add_edge(VertexId(0), VertexId(1), 1).unwrap();
        let err = g.add_edge(VertexId(1), VertexId(0), 2).unwrap_err();
        assert_eq!(err, GraphError::DuplicateEdge { u: VertexId(1), v: VertexId(0) });
    }

    #[test]
    fn self_loops_are_rejected() {
        let mut g = DynamicGraph::new(2, false);
        let err = g.add_edge(VertexId(1), VertexId(1), 1).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { vertex: VertexId(1) });
    }

    #[test]
    fn zero_initial_weight_is_rejected() {
        let mut g = DynamicGraph::new(2, false);
        let err = g.add_edge(VertexId(0), VertexId(1), 0).unwrap_err();
        assert!(matches!(err, GraphError::ZeroInitialWeight { .. }));
    }

    #[test]
    fn out_of_range_vertices_are_rejected() {
        let mut g = DynamicGraph::new(2, false);
        let err = g.add_edge(VertexId(0), VertexId(5), 1).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
    }

    #[test]
    fn weight_updates_change_current_but_not_initial_weight() {
        let mut g = triangle();
        let e = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        let update = WeightUpdate { edge: e, new_weight: Weight::new(10.0) };
        let delta = g.apply_update(&update).unwrap();
        assert_eq!(delta, 8.0);
        assert_eq!(g.weight(e), Weight::new(10.0));
        assert_eq!(g.initial_weight(e), 2);
    }

    #[test]
    fn apply_batch_advances_version() {
        let mut g = triangle();
        assert_eq!(g.version(), 0);
        let e = g.edge_between(VertexId(1), VertexId(2)).unwrap();
        let batch = UpdateBatch::new(vec![WeightUpdate { edge: e, new_weight: Weight::new(1.0) }]);
        let v = g.apply_batch(&batch).unwrap();
        assert_eq!(v, 1);
        assert_eq!(g.version(), 1);
        assert_eq!(g.weight(e), Weight::new(1.0));
    }

    #[test]
    fn unit_weight_reflects_current_over_initial() {
        let mut g = triangle();
        let e = g.edge_between(VertexId(0), VertexId(2)).unwrap();
        assert_eq!(g.edge(e).unit_weight(), Weight::new(1.0));
        g.set_weight(e, Weight::new(3.5)).unwrap();
        assert_eq!(g.edge(e).unit_weight(), Weight::new(0.5));
    }

    #[test]
    fn graph_view_neighbors_report_current_weights() {
        let mut g = triangle();
        let e = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        g.set_weight(e, Weight::new(9.0)).unwrap();
        let mut seen = Vec::new();
        g.for_each_neighbor(VertexId(0), |to, w| seen.push((to, w)));
        seen.sort();
        assert_eq!(seen, vec![(VertexId(1), Weight::new(9.0)), (VertexId(2), Weight::new(7.0))]);
    }

    #[test]
    fn other_endpoint_returns_the_opposite_vertex() {
        let g = triangle();
        let e = g.edge(g.edge_between(VertexId(0), VertexId(1)).unwrap());
        assert_eq!(e.other_endpoint(VertexId(0)), VertexId(1));
        assert_eq!(e.other_endpoint(VertexId(1)), VertexId(0));
    }

    #[test]
    fn total_weight_sums_current_weights() {
        let g = triangle();
        assert_eq!(g.total_weight(), Weight::new(12.0));
    }

    #[test]
    fn with_batch_shares_topology_with_the_parent() {
        let g = triangle();
        let e = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        let batch = UpdateBatch::new(vec![WeightUpdate::new(e, Weight::new(4.0))]);
        let next = g.with_batch(&batch).unwrap();
        assert!(next.shares_topology_with(&g), "weight updates must not copy structure");
        assert_eq!(next.weight(e), Weight::new(4.0));
        assert_eq!(g.weight(e), Weight::new(2.0), "the parent graph is untouched");

        // Structural mutation unshares on demand: adding an edge to a clone
        // leaves the original's adjacency untouched.
        let mut grown = next.clone();
        assert!(grown.shares_topology_with(&next));
        grown.add_edge(VertexId(1), VertexId(2), 1).unwrap_err(); // duplicate: no unshare
        assert!(grown.shares_topology_with(&next));
        let mut wider = DynamicGraph::new(4, false);
        wider.add_edge(VertexId(0), VertexId(1), 1).unwrap();
        let shared = wider.clone();
        assert!(shared.shares_topology_with(&wider));
        let mut mutated = shared.clone();
        mutated.add_edge(VertexId(2), VertexId(3), 1).unwrap();
        assert!(!mutated.shares_topology_with(&wider), "add_edge must unshare");
        assert_eq!(wider.num_edges(), 1);
        assert_eq!(wider.degree(VertexId(2)), 0, "the shared parent is untouched");
    }

    #[test]
    fn restore_weights_sets_absolute_weights_and_version() {
        let mut g = triangle();
        let e0 = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        let e1 = g.edge_between(VertexId(1), VertexId(2)).unwrap();
        g.restore_weights([(e0, Weight::new(9.5)), (e1, Weight::new(0.25))], 7).unwrap();
        assert_eq!(g.version(), 7);
        assert_eq!(g.weight(e0), Weight::new(9.5));
        assert_eq!(g.weight(e1), Weight::new(0.25));
        // An out-of-range edge is rejected.
        assert!(g.restore_weights([(EdgeId(99), Weight::new(1.0))], 8).is_err());
    }
}
