//! A compact set of [`SubgraphId`]s, used as the dependency trace of a query.
//!
//! The serving layer attaches one of these to every cached query answer: the
//! set of subgraphs the answer depended on. At epoch publish the cache keeps
//! exactly the entries whose trace is disjoint from the batch's dirty set, so
//! the representation is optimised for the two hot operations — `insert`
//! during the query and `intersects` during invalidation. Subgraph ids are
//! dense and small (a partitioning of `n` vertices with subgraph size `z`
//! produces about `n / z` of them), so a word-per-64-ids bitset is both
//! smaller and faster to intersect than a hash set.

use crate::ids::SubgraphId;

/// A bitset over [`SubgraphId`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubgraphSet {
    words: Vec<u64>,
}

impl SubgraphSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        SubgraphSet::default()
    }

    /// Creates an empty set pre-sized for ids below `num_subgraphs`.
    pub fn with_capacity(num_subgraphs: usize) -> Self {
        SubgraphSet { words: vec![0; num_subgraphs.div_ceil(64)] }
    }

    /// Inserts `id`; returns `true` if it was not already present.
    pub fn insert(&mut self, id: SubgraphId) -> bool {
        let (word, bit) = (id.index() / 64, id.index() % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        fresh
    }

    /// Whether `id` is in the set.
    pub fn contains(&self, id: SubgraphId) -> bool {
        let (word, bit) = (id.index() / 64, id.index() % 64);
        self.words.get(word).is_some_and(|w| w & (1u64 << bit) != 0)
    }

    /// Whether the two sets share at least one id. This is the epoch-publish
    /// invalidation test, so it short-circuits on the first common word.
    pub fn intersects(&self, other: &SubgraphSet) -> bool {
        self.words.iter().zip(other.words.iter()).any(|(a, b)| a & b != 0)
    }

    /// Adds every id of `other` to `self`.
    pub fn union_with(&mut self, other: &SubgraphSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (dst, src) in self.words.iter_mut().zip(other.words.iter()) {
            *dst |= src;
        }
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = SubgraphId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            (0..64)
                .filter(move |bit| word & (1u64 << bit) != 0)
                .map(move |bit| SubgraphId((wi * 64 + bit) as u32))
        })
    }

    /// Estimated heap memory of the set, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

impl FromIterator<SubgraphId> for SubgraphSet {
    fn from_iter<I: IntoIterator<Item = SubgraphId>>(ids: I) -> Self {
        let mut set = SubgraphSet::new();
        for id in ids {
            set.insert(id);
        }
        set
    }
}

impl Extend<SubgraphId> for SubgraphSet {
    fn extend<I: IntoIterator<Item = SubgraphId>>(&mut self, ids: I) {
        for id in ids {
            self.insert(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sg(i: u32) -> SubgraphId {
        SubgraphId(i)
    }

    #[test]
    fn insert_contains_and_len() {
        let mut set = SubgraphSet::new();
        assert!(set.is_empty());
        assert!(set.insert(sg(3)));
        assert!(set.insert(sg(200)));
        assert!(!set.insert(sg(3)), "re-insert reports not-fresh");
        assert!(set.contains(sg(3)));
        assert!(set.contains(sg(200)));
        assert!(!set.contains(sg(4)));
        assert!(!set.contains(sg(100_000)), "out-of-range probe is just absent");
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }

    #[test]
    fn intersects_ignores_length_mismatch() {
        let small: SubgraphSet = [sg(1)].into_iter().collect();
        let large: SubgraphSet = [sg(1), sg(500)].into_iter().collect();
        assert!(small.intersects(&large));
        assert!(large.intersects(&small));
        let disjoint: SubgraphSet = [sg(2), sg(500)].into_iter().collect();
        assert!(!small.intersects(&disjoint));
        assert!(!SubgraphSet::new().intersects(&large));
    }

    #[test]
    fn union_and_iter_are_consistent() {
        let mut a: SubgraphSet = [sg(0), sg(63), sg(64)].into_iter().collect();
        let b: SubgraphSet = [sg(64), sg(130)].into_iter().collect();
        a.union_with(&b);
        let ids: Vec<SubgraphId> = a.iter().collect();
        assert_eq!(ids, vec![sg(0), sg(63), sg(64), sg(130)]);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn with_capacity_presizes_without_changing_semantics() {
        let mut set = SubgraphSet::with_capacity(100);
        assert!(set.is_empty());
        set.insert(sg(99));
        assert!(set.contains(sg(99)));
        assert!(set.memory_bytes() >= 2 * std::mem::size_of::<u64>());
    }
}
