//! Error types shared by the graph substrate.

use crate::ids::{EdgeId, SubgraphId, VertexId};
use std::fmt;

/// Errors produced when constructing or mutating a [`crate::DynamicGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id referenced an index outside `0..num_vertices`.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: VertexId,
        /// Number of vertices in the graph.
        num_vertices: usize,
    },
    /// An edge id referenced an index outside `0..num_edges`.
    EdgeOutOfRange {
        /// The offending edge.
        edge: EdgeId,
        /// Number of edges in the graph.
        num_edges: usize,
    },
    /// Attempted to add an edge that already exists between the two endpoints.
    DuplicateEdge {
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
    },
    /// Attempted to add a self-loop, which is meaningless in a road network.
    SelfLoop {
        /// The vertex the loop was attached to.
        vertex: VertexId,
    },
    /// An initial edge weight of zero was supplied; initial weights define the number
    /// of virtual fragments of an edge and therefore must be at least 1.
    ZeroInitialWeight {
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
    },
    /// No edge exists between the two given endpoints.
    NoSuchEdge {
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
    },
    /// The partitioner was configured with a subgraph capacity that cannot hold a
    /// single edge (`z < 2`).
    InvalidPartitionSize {
        /// The offending capacity.
        z: usize,
    },
    /// A subgraph id referenced an index outside `0..num_subgraphs` (e.g. a
    /// per-subgraph image applied to an index partitioned differently).
    SubgraphOutOfRange {
        /// The offending subgraph.
        subgraph: SubgraphId,
        /// Number of subgraphs in the partitioning.
        num_subgraphs: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, num_vertices } => {
                write!(f, "vertex {vertex} out of range (graph has {num_vertices} vertices)")
            }
            GraphError::EdgeOutOfRange { edge, num_edges } => {
                write!(f, "edge {edge} out of range (graph has {num_edges} edges)")
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "edge between {u} and {v} already exists")
            }
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop at {vertex} is not allowed")
            }
            GraphError::ZeroInitialWeight { u, v } => {
                write!(
                    f,
                    "initial weight of edge ({u}, {v}) must be >= 1 (it defines the vfrag count)"
                )
            }
            GraphError::NoSuchEdge { u, v } => {
                write!(f, "no edge between {u} and {v}")
            }
            GraphError::InvalidPartitionSize { z } => {
                write!(f, "subgraph capacity z={z} is too small; z must be at least 2")
            }
            GraphError::SubgraphOutOfRange { subgraph, num_subgraphs } => {
                write!(
                    f,
                    "subgraph {subgraph} out of range (partitioning has {num_subgraphs} subgraphs)"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfRange { vertex: VertexId(9), num_vertices: 5 };
        assert!(e.to_string().contains("v9"));
        assert!(e.to_string().contains('5'));

        let e = GraphError::DuplicateEdge { u: VertexId(1), v: VertexId(2) };
        assert!(e.to_string().contains("v1"));
        assert!(e.to_string().contains("v2"));

        let e = GraphError::InvalidPartitionSize { z: 1 };
        assert!(e.to_string().contains("z=1"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_error<E: std::error::Error>(_e: &E) {}
        assert_error(&GraphError::SelfLoop { vertex: VertexId(0) });
    }
}
