//! Edge-weight and distance arithmetic.
//!
//! Road-network weights are travel times: non-negative reals. The paper additionally
//! requires the *initial* weight of every edge to be interpreted as an integral number
//! of *virtual fragments* (Section 3.4), so [`Weight`] keeps track of both the current
//! floating-point value and utilities for comparing distances robustly.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Tolerance used when comparing two path distances for equality.
///
/// Distances are sums of `f64` edge weights that may be accumulated in different orders
/// by different algorithms; a relative tolerance of 1e-9 keeps comparisons exact for
/// road-network scale values while absorbing floating-point reassociation noise.
pub const DISTANCE_EPSILON: f64 = 1e-9;

/// A non-negative edge weight or path distance with a *total* order.
///
/// `Weight` wraps an `f64` and orders it with [`f64::total_cmp`], which makes it usable
/// as a key in binary heaps and ordered maps. Construction via [`Weight::new`] rejects
/// NaN and negative values, which are never meaningful as travel times.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weight(f64);

impl Weight {
    /// The zero distance.
    pub const ZERO: Weight = Weight(0.0);
    /// Positive infinity, used as the "unreached" sentinel in shortest-path searches.
    pub const INFINITY: Weight = Weight(f64::INFINITY);

    /// Creates a weight from a raw value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or negative: such weights would silently corrupt every
    /// downstream shortest-path computation, so failing early is the safer contract.
    #[inline]
    pub fn new(value: f64) -> Self {
        assert!(
            value >= 0.0 && !value.is_nan(),
            "edge weights must be non-negative and finite-or-infinite, got {value}"
        );
        Weight(value)
    }

    /// Creates a weight without validating the value.
    ///
    /// Used internally on arithmetic results that are non-negative by construction.
    #[inline]
    pub(crate) fn new_unchecked(value: f64) -> Self {
        Weight(value)
    }

    /// Returns the raw floating-point value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns `true` if this weight is finite (i.e. represents a reachable distance).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Returns the smaller of two weights.
    #[inline]
    pub fn min(self, other: Weight) -> Weight {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two weights.
    #[inline]
    pub fn max(self, other: Weight) -> Weight {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Compares two distances for equality up to [`DISTANCE_EPSILON`] (relative).
    ///
    /// This is the comparison used by tests that check that two different algorithms
    /// produced the same set of path distances.
    #[inline]
    pub fn approx_eq(self, other: Weight) -> bool {
        let (a, b) = (self.0, other.0);
        if a == b {
            return true;
        }
        if !a.is_finite() || !b.is_finite() {
            return false;
        }
        let scale = a.abs().max(b.abs()).max(1.0);
        (a - b).abs() <= DISTANCE_EPSILON * scale
    }

    /// Returns `true` if `self` is smaller than `other` by more than the tolerance.
    #[inline]
    pub fn definitely_less_than(self, other: Weight) -> bool {
        self < other && !self.approx_eq(other)
    }
}

impl Eq for Weight {}

impl PartialOrd for Weight {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Weight {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for Weight {
    type Output = Weight;
    #[inline]
    fn add(self, rhs: Weight) -> Weight {
        Weight::new_unchecked(self.0 + rhs.0)
    }
}

impl AddAssign for Weight {
    #[inline]
    fn add_assign(&mut self, rhs: Weight) {
        self.0 += rhs.0;
    }
}

impl Sub for Weight {
    type Output = Weight;
    #[inline]
    fn sub(self, rhs: Weight) -> Weight {
        Weight::new_unchecked((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Weight {
    type Output = Weight;
    #[inline]
    fn mul(self, rhs: f64) -> Weight {
        Weight::new_unchecked(self.0 * rhs)
    }
}

impl Div<f64> for Weight {
    type Output = Weight;
    #[inline]
    fn div(self, rhs: f64) -> Weight {
        Weight::new_unchecked(self.0 / rhs)
    }
}

impl Sum for Weight {
    fn sum<I: Iterator<Item = Weight>>(iter: I) -> Weight {
        iter.fold(Weight::ZERO, |acc, w| acc + w)
    }
}

impl From<f64> for Weight {
    fn from(value: f64) -> Self {
        Weight::new(value)
    }
}

impl From<u32> for Weight {
    fn from(value: u32) -> Self {
        Weight(value as f64)
    }
}

impl fmt::Debug for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl Default for Weight {
    fn default() -> Self {
        Weight::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rejects_negative() {
        let result = std::panic::catch_unwind(|| Weight::new(-1.0));
        assert!(result.is_err());
    }

    #[test]
    fn construction_rejects_nan() {
        let result = std::panic::catch_unwind(|| Weight::new(f64::NAN));
        assert!(result.is_err());
    }

    #[test]
    fn ordering_is_total_and_infinity_is_max() {
        let mut ws = [Weight::INFINITY, Weight::new(3.0), Weight::ZERO, Weight::new(1.5)];
        ws.sort();
        assert_eq!(ws[0], Weight::ZERO);
        assert_eq!(ws[1], Weight::new(1.5));
        assert_eq!(ws[2], Weight::new(3.0));
        assert_eq!(ws[3], Weight::INFINITY);
    }

    #[test]
    fn arithmetic_behaves_like_f64() {
        let a = Weight::new(2.5);
        let b = Weight::new(1.5);
        assert_eq!((a + b).value(), 4.0);
        assert_eq!((a - b).value(), 1.0);
        assert_eq!((a * 2.0).value(), 5.0);
        assert_eq!((a / 2.0).value(), 1.25);
    }

    #[test]
    fn subtraction_saturates_at_zero() {
        let a = Weight::new(1.0);
        let b = Weight::new(3.0);
        assert_eq!((a - b), Weight::ZERO);
    }

    #[test]
    fn sum_of_weights() {
        let total: Weight = [1.0, 2.0, 3.5].iter().map(|&w| Weight::new(w)).sum();
        assert_eq!(total.value(), 6.5);
    }

    #[test]
    fn approx_eq_absorbs_reassociation_noise() {
        let a = Weight::new(0.1 + 0.2);
        let b = Weight::new(0.3);
        assert!(a.approx_eq(b));
        assert!(!Weight::new(0.3).approx_eq(Weight::new(0.31)));
    }

    #[test]
    fn approx_eq_handles_infinity() {
        assert!(Weight::INFINITY.approx_eq(Weight::INFINITY));
        assert!(!Weight::INFINITY.approx_eq(Weight::new(1e300)));
    }

    #[test]
    fn definitely_less_than_requires_margin() {
        assert!(Weight::new(1.0).definitely_less_than(Weight::new(2.0)));
        assert!(!Weight::new(1.0).definitely_less_than(Weight::new(1.0 + 1e-12)));
    }

    #[test]
    fn min_max_helpers() {
        let a = Weight::new(1.0);
        let b = Weight::new(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
