//! Strongly typed identifiers for vertices, edges and subgraphs.
//!
//! Using newtypes instead of raw `u32`s prevents an entire class of mix-ups between
//! global vertex ids, edge ids and partition ids that would otherwise only be caught
//! at runtime (if at all).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a vertex in the *global* graph.
///
/// Vertex ids are dense: a graph with `n` vertices uses ids `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VertexId(pub u32);

/// Identifier of an edge in the *global* graph.
///
/// Edge ids are dense: a graph with `m` edges uses ids `0..m`. For undirected graphs a
/// single id covers both directions of travel.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

/// Identifier of a subgraph produced by [`crate::partition::Partitioner`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SubgraphId(pub u32);

impl VertexId {
    /// Returns the id as a `usize` suitable for indexing dense per-vertex arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Returns the id as a `usize` suitable for indexing dense per-edge arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl SubgraphId {
    /// Returns the id as a `usize` suitable for indexing dense per-subgraph arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for VertexId {
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<u32> for EdgeId {
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

impl From<u32> for SubgraphId {
    fn from(v: u32) -> Self {
        SubgraphId(v)
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Debug for SubgraphId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sg{}", self.0)
    }
}

impl fmt::Display for SubgraphId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sg{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrips_through_u32() {
        let v = VertexId::from(42u32);
        assert_eq!(v.0, 42);
        assert_eq!(v.index(), 42usize);
    }

    #[test]
    fn ids_are_ordered_by_numeric_value() {
        assert!(VertexId(1) < VertexId(2));
        assert!(EdgeId(10) > EdgeId(3));
        assert!(SubgraphId(0) < SubgraphId(1));
    }

    #[test]
    fn display_uses_prefixed_form() {
        assert_eq!(VertexId(7).to_string(), "v7");
        assert_eq!(EdgeId(7).to_string(), "e7");
        assert_eq!(SubgraphId(7).to_string(), "sg7");
        assert_eq!(format!("{:?}", VertexId(7)), "v7");
    }

    #[test]
    fn ids_usable_as_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(VertexId(3), "a");
        m.insert(VertexId(4), "b");
        assert_eq!(m[&VertexId(3)], "a");
        assert_eq!(m.len(), 2);
    }
}
