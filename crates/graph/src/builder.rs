//! Convenience builder for constructing graphs from edge lists.

use crate::error::GraphError;
use crate::graph::DynamicGraph;
use crate::ids::VertexId;

/// A builder that accumulates an edge list and produces a [`DynamicGraph`].
///
/// Duplicate edges are silently skipped (the first occurrence wins), which makes the
/// builder convenient for loading real-world datasets (e.g. DIMACS files list both
/// directions of every road; for undirected graphs the second direction is a
/// duplicate).
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: usize,
    directed: bool,
    edges: Vec<(u32, u32, u32)>,
}

impl GraphBuilder {
    /// Starts building an undirected graph with `num_vertices` vertices.
    pub fn undirected(num_vertices: usize) -> Self {
        GraphBuilder { num_vertices, directed: false, edges: Vec::new() }
    }

    /// Starts building a directed graph with `num_vertices` vertices.
    pub fn directed(num_vertices: usize) -> Self {
        GraphBuilder { num_vertices, directed: true, edges: Vec::new() }
    }

    /// Whether this builder produces a directed graph.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edge entries recorded so far (before duplicate removal).
    pub fn num_edge_entries(&self) -> usize {
        self.edges.len()
    }

    /// Records an edge with an initial integer weight (its vfrag count).
    pub fn edge(&mut self, u: u32, v: u32, initial_weight: u32) -> &mut Self {
        self.edges.push((u, v, initial_weight));
        self
    }

    /// Builds the graph, validating every edge.
    ///
    /// Duplicate edges (same endpoint pair, and for undirected graphs same unordered
    /// pair) are skipped; self-loops, zero weights and out-of-range endpoints are
    /// reported as errors.
    pub fn build(&self) -> Result<DynamicGraph, GraphError> {
        let mut g = DynamicGraph::new(self.num_vertices, self.directed);
        for &(u, v, w) in &self.edges {
            match g.add_edge(VertexId(u), VertexId(v), w) {
                Ok(_) => {}
                Err(GraphError::DuplicateEdge { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::GraphView;
    use crate::weight::Weight;

    #[test]
    fn builds_undirected_graph_from_edge_list() {
        let mut b = GraphBuilder::undirected(4);
        b.edge(0, 1, 2).edge(1, 2, 3).edge(2, 3, 4);
        let g = b.build().unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(!g.is_directed());
        assert_eq!(g.edge_weight(VertexId(2), VertexId(1)), Some(Weight::new(3.0)));
    }

    #[test]
    fn duplicate_edges_are_skipped_not_errors() {
        let mut b = GraphBuilder::undirected(3);
        b.edge(0, 1, 2).edge(1, 0, 9).edge(0, 1, 5);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
        // First occurrence wins.
        assert_eq!(g.edge_weight(VertexId(0), VertexId(1)), Some(Weight::new(2.0)));
    }

    #[test]
    fn directed_builder_keeps_both_directions() {
        let mut b = GraphBuilder::directed(3);
        b.edge(0, 1, 2).edge(1, 0, 9);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.is_directed());
    }

    #[test]
    fn invalid_edges_are_reported() {
        let mut b = GraphBuilder::undirected(2);
        b.edge(0, 7, 1);
        assert!(matches!(b.build(), Err(GraphError::VertexOutOfRange { .. })));

        let mut b = GraphBuilder::undirected(2);
        b.edge(0, 0, 1);
        assert!(matches!(b.build(), Err(GraphError::SelfLoop { .. })));

        let mut b = GraphBuilder::undirected(2);
        b.edge(0, 1, 0);
        assert!(matches!(b.build(), Err(GraphError::ZeroInitialWeight { .. })));
    }

    #[test]
    fn builder_reports_progress() {
        let mut b = GraphBuilder::undirected(10);
        assert_eq!(b.num_edge_entries(), 0);
        b.edge(0, 1, 1).edge(1, 2, 1);
        assert_eq!(b.num_edge_entries(), 2);
        assert_eq!(b.num_vertices(), 10);
        assert!(!b.is_directed());
    }
}
