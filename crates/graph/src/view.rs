//! The read-only [`GraphView`] abstraction used by all path algorithms.

use crate::ids::VertexId;
use crate::weight::Weight;

/// A read-only view of a weighted graph.
///
/// The trait is implemented by [`crate::DynamicGraph`], [`crate::Subgraph`],
/// snapshot views and (in `ksp-core`) the skeleton graph, so the algorithms in
/// `ksp-algo` are written once and reused everywhere.
///
/// Vertex ids are *global*: a subgraph reports the ids its vertices carry in the full
/// graph, not local indices. Views over a sparse vertex set simply return no neighbours
/// for ids they do not contain.
pub trait GraphView {
    /// An upper bound (usually exact) on the number of vertices reachable through this
    /// view. It is used to size per-vertex scratch tables in the algorithms, so it must
    /// be at least `max(vertex id) + 1` over all vertices the view can return.
    fn num_vertices(&self) -> usize;

    /// Whether the view contains the vertex.
    fn contains_vertex(&self, v: VertexId) -> bool;

    /// Calls `f` once per outgoing neighbour of `v` with the current edge weight.
    fn for_each_neighbor(&self, v: VertexId, f: impl FnMut(VertexId, Weight))
    where
        Self: Sized;

    /// Current weight of the edge from `u` to `v`, if the view contains it.
    fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight>;

    /// Collects the neighbours of `v` into a vector. Convenience for tests and
    /// non-hot-path callers.
    fn neighbors(&self, v: VertexId) -> Vec<(VertexId, Weight)>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        self.for_each_neighbor(v, |to, w| out.push((to, w)));
        out
    }
}

/// Blanket implementation so `Arc<G>` handles (as shared between the serving
/// subsystem's epoch snapshots and worker threads) can be passed wherever a
/// view is expected.
impl<G: GraphView> GraphView for std::sync::Arc<G> {
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    fn contains_vertex(&self, v: VertexId) -> bool {
        (**self).contains_vertex(v)
    }

    fn for_each_neighbor(&self, v: VertexId, f: impl FnMut(VertexId, Weight)) {
        (**self).for_each_neighbor(v, f)
    }

    fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        (**self).edge_weight(u, v)
    }
}

/// Blanket implementation so `&G` can be passed wherever a view is expected.
impl<G: GraphView> GraphView for &G {
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    fn contains_vertex(&self, v: VertexId) -> bool {
        (**self).contains_vertex(v)
    }

    fn for_each_neighbor(&self, v: VertexId, f: impl FnMut(VertexId, Weight)) {
        (**self).for_each_neighbor(v, f)
    }

    fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        (**self).edge_weight(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DynamicGraph;

    #[test]
    fn neighbors_convenience_collects_all_edges() {
        let mut g = DynamicGraph::new(3, false);
        g.add_edge(VertexId(0), VertexId(1), 4).unwrap();
        g.add_edge(VertexId(0), VertexId(2), 6).unwrap();
        let mut n = g.neighbors(VertexId(0));
        n.sort();
        assert_eq!(n, vec![(VertexId(1), Weight::new(4.0)), (VertexId(2), Weight::new(6.0))]);
    }

    #[test]
    fn reference_to_view_is_a_view() {
        fn count_neighbors<G: GraphView>(g: G, v: VertexId) -> usize {
            let mut c = 0;
            g.for_each_neighbor(v, |_, _| c += 1);
            c
        }
        let mut g = DynamicGraph::new(3, false);
        g.add_edge(VertexId(0), VertexId(1), 1).unwrap();
        assert_eq!(count_neighbors(&g, VertexId(0)), 1);
        // A double reference and an Arc are views too (the blanket impls).
        let byref: &&DynamicGraph = &&g;
        assert_eq!(count_neighbors(byref, VertexId(1)), 1);
        let shared = std::sync::Arc::new(g);
        assert_eq!(count_neighbors(shared.clone(), VertexId(0)), 1);
        assert_eq!(count_neighbors(&shared, VertexId(1)), 1);
    }
}
