//! BFS edge partitioning into subgraphs with at most `z` vertices (Section 3.3).
//!
//! The partitioner traverses the graph breadth-first from a seed vertex and assigns
//! unassigned incident edges to the current subgraph as long as doing so keeps the
//! subgraph's vertex count within the threshold `z`. The result satisfies the
//! properties required by the paper:
//!
//! * every edge belongs to exactly one subgraph (subgraphs share no edges);
//! * every vertex belongs to at least one subgraph, and the union of the subgraphs is
//!   the original graph;
//! * each subgraph has at most `z` vertices;
//! * vertices belonging to two or more subgraphs are *boundary vertices* — the only
//!   contact points between subgraphs.

use crate::error::GraphError;
use crate::graph::DynamicGraph;
use crate::ids::{EdgeId, SubgraphId, VertexId};
use crate::subgraph::{Subgraph, SubgraphEdge};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Configuration of the partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionConfig {
    /// Maximum number of vertices per subgraph (the paper's `z`). Must be at least 2.
    pub max_vertices: usize,
}

impl PartitionConfig {
    /// Creates a configuration with the given subgraph capacity `z`.
    pub fn with_max_vertices(z: usize) -> Self {
        PartitionConfig { max_vertices: z }
    }
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig { max_vertices: 200 }
    }
}

/// The BFS edge partitioner.
#[derive(Debug, Clone, Default)]
pub struct Partitioner {
    config: PartitionConfig,
}

/// The result of partitioning a graph.
///
/// Subgraphs are held behind `Arc`s: the partitioning is the birthplace of the
/// per-subgraph state that the DTLP index, the serving layer and the store all
/// share structurally, so handing out shared handles here means an index build
/// never copies a subgraph it can reference.
#[derive(Debug, Clone)]
pub struct Partitioning {
    subgraphs: Vec<Arc<Subgraph>>,
    /// All boundary vertices of the graph, sorted.
    boundary: Vec<VertexId>,
    /// For every vertex, the subgraphs it belongs to.
    vertex_subgraphs: BTreeMap<VertexId, Vec<SubgraphId>>,
    /// For every edge, the subgraph that owns it.
    edge_owner: Vec<SubgraphId>,
}

impl Partitioner {
    /// Creates a partitioner with the given configuration.
    pub fn new(config: PartitionConfig) -> Self {
        Partitioner { config }
    }

    /// Partitions `graph` into subgraphs of at most `z` vertices.
    pub fn partition(&self, graph: &DynamicGraph) -> Result<Partitioning, GraphError> {
        let z = self.config.max_vertices;
        if z < 2 {
            return Err(GraphError::InvalidPartitionSize { z });
        }
        let n = graph.num_vertices();
        let m = graph.num_edges();

        let mut edge_assigned = vec![false; m];
        let mut edge_owner = vec![SubgraphId(u32::MAX); m];
        // Remaining unassigned incident edges per vertex, to pick good seeds cheaply.
        let mut remaining_degree: Vec<u32> =
            (0..n).map(|v| incident_count(graph, VertexId(v as u32))).collect();
        let mut subgraphs: Vec<Subgraph> = Vec::new();
        let mut vertex_subgraphs: BTreeMap<VertexId, Vec<SubgraphId>> = BTreeMap::new();

        // Seeds are scanned in vertex order; a frontier of vertices that still have
        // unassigned edges left over from a full subgraph is preferred, so consecutive
        // subgraphs stay spatially close (mirrors the BFS strategy of the paper).
        let mut pending_seeds: VecDeque<VertexId> = VecDeque::new();
        let mut next_scan: u32 = 0;

        loop {
            // Pick the next seed: first any frontier vertex with remaining edges, then
            // the next vertex in id order with remaining edges.
            let seed = loop {
                if let Some(v) = pending_seeds.pop_front() {
                    if remaining_degree[v.index()] > 0 {
                        break Some(v);
                    }
                    continue;
                }
                if (next_scan as usize) < n {
                    let v = VertexId(next_scan);
                    next_scan += 1;
                    if remaining_degree[v.index()] > 0 {
                        break Some(v);
                    }
                    continue;
                }
                break None;
            };
            let Some(seed) = seed else { break };

            let sg_id = SubgraphId(subgraphs.len() as u32);
            let mut sg_vertices: BTreeSet<VertexId> = BTreeSet::new();
            sg_vertices.insert(seed);
            let mut sg_edges: Vec<SubgraphEdge> = Vec::new();
            let mut queue: VecDeque<VertexId> = VecDeque::new();
            queue.push_back(seed);

            while let Some(v) = queue.pop_front() {
                let mut leftover = false;
                for &(to, e) in graph.adjacency(v) {
                    if edge_assigned[e.index()] {
                        continue;
                    }
                    let is_new = !sg_vertices.contains(&to);
                    if is_new && sg_vertices.len() >= z {
                        // Adding this edge would exceed the vertex budget; leave it for
                        // a later subgraph seeded near here.
                        leftover = true;
                        continue;
                    }
                    edge_assigned[e.index()] = true;
                    edge_owner[e.index()] = sg_id;
                    remaining_degree[v.index()] = remaining_degree[v.index()].saturating_sub(1);
                    if !graph.is_directed() {
                        // Undirected adjacency lists contain the edge at both endpoints,
                        // so the neighbour's remaining count drops too. For directed
                        // graphs `remaining_degree` counts out-edges only and the
                        // neighbour's count is unaffected by consuming an in-edge.
                        remaining_degree[to.index()] =
                            remaining_degree[to.index()].saturating_sub(1);
                    }
                    let record = graph.edge(e);
                    sg_edges.push(SubgraphEdge {
                        global_id: e,
                        u: record.u,
                        v: record.v,
                        initial_weight: record.initial_weight,
                        current_weight: record.current_weight,
                    });
                    if is_new {
                        sg_vertices.insert(to);
                        queue.push_back(to);
                    }
                }
                // For directed graphs, in-edges of v are incident too: they were walked
                // when their tail was visited; any still unassigned will be picked up by
                // later subgraphs seeded at their tails.
                if leftover {
                    pending_seeds.push_back(v);
                }
            }

            if sg_edges.is_empty() {
                // The seed's remaining edges could not be placed without exceeding z
                // from this seed (possible only for directed in-edges); skip, they will
                // be assigned when their tail becomes a seed.
                continue;
            }

            let vertices: Vec<VertexId> = sg_edges
                .iter()
                .flat_map(|e| [e.u, e.v])
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            for &v in &vertices {
                vertex_subgraphs.entry(v).or_default().push(sg_id);
            }
            subgraphs.push(Subgraph::new(sg_id, graph.is_directed(), vertices, sg_edges));
        }

        // Isolated vertices (degree zero) still need a home so that the union of the
        // subgraph vertex sets equals V.
        for v in graph.vertices() {
            if !vertex_subgraphs.contains_key(&v) {
                let sg_id = SubgraphId(subgraphs.len() as u32);
                vertex_subgraphs.entry(v).or_default().push(sg_id);
                subgraphs.push(Subgraph::new(sg_id, graph.is_directed(), vec![v], Vec::new()));
            }
        }

        let boundary: Vec<VertexId> =
            vertex_subgraphs.iter().filter(|(_, sgs)| sgs.len() >= 2).map(|(&v, _)| v).collect();
        for sg in &mut subgraphs {
            sg.set_boundary(boundary.clone());
        }

        // Freeze the finished subgraphs behind shared handles.
        let subgraphs = subgraphs.into_iter().map(Arc::new).collect();
        Ok(Partitioning { subgraphs, boundary, vertex_subgraphs, edge_owner })
    }
}

/// Number of edges incident to `v` from the adjacency list (out-edges for directed
/// graphs, all edges for undirected graphs).
fn incident_count(graph: &DynamicGraph, v: VertexId) -> u32 {
    graph.adjacency(v).len() as u32
}

impl Partitioning {
    /// The subgraphs, indexed by [`SubgraphId`], as shared handles. An index
    /// built over them references the partitioner's allocations instead of
    /// copying them.
    pub fn subgraphs(&self) -> &[Arc<Subgraph>] {
        &self.subgraphs
    }

    /// Number of subgraphs.
    pub fn num_subgraphs(&self) -> usize {
        self.subgraphs.len()
    }

    /// A specific subgraph.
    pub fn subgraph(&self, id: SubgraphId) -> &Subgraph {
        &self.subgraphs[id.index()]
    }

    /// All boundary vertices of the graph, sorted ascending.
    pub fn boundary_vertices(&self) -> &[VertexId] {
        &self.boundary
    }

    /// Whether `v` is a boundary vertex.
    pub fn is_boundary(&self, v: VertexId) -> bool {
        self.boundary.binary_search(&v).is_ok()
    }

    /// The subgraphs a vertex belongs to (empty slice if the vertex is unknown).
    pub fn subgraphs_of_vertex(&self, v: VertexId) -> &[SubgraphId] {
        self.vertex_subgraphs.get(&v).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The subgraph owning an edge.
    pub fn owner_of_edge(&self, e: EdgeId) -> SubgraphId {
        self.edge_owner[e.index()]
    }

    /// The subgraphs containing *both* vertices. For adjacent boundary vertices on a
    /// reference path this is the set of subgraphs examined by the refine step.
    pub fn subgraphs_containing_pair(&self, a: VertexId, b: VertexId) -> Vec<SubgraphId> {
        let sa = self.subgraphs_of_vertex(a);
        let sb = self.subgraphs_of_vertex(b);
        sa.iter().filter(|id| sb.contains(id)).copied().collect()
    }

    /// Number of subgraphs with strictly more than `threshold` boundary vertices
    /// (Table 1 of the paper reports this for `threshold = 5`).
    pub fn subgraphs_with_boundary_over(&self, threshold: usize) -> usize {
        self.subgraphs.iter().filter(|sg| sg.boundary_vertices().len() > threshold).count()
    }

    /// Consumes the partitioning and returns the subgraph handles.
    pub fn into_subgraphs(self) -> Vec<Arc<Subgraph>> {
        self.subgraphs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::view::GraphView;
    use std::collections::HashSet;

    /// Builds the example graph of Figure 3 in the paper (19 vertices, 24 edges).
    /// Vertex names v1..v19 map to ids 0..18.
    pub(crate) fn paper_figure3_graph() -> DynamicGraph {
        let edges: &[(u32, u32, u32)] = &[
            (1, 2, 3),
            (1, 3, 3),
            (2, 3, 6),
            (2, 4, 3),
            (3, 5, 2),
            (4, 5, 3),
            (4, 6, 4),
            (5, 6, 4),
            (4, 7, 3),
            (6, 9, 3),
            (7, 8, 5),
            (8, 9, 4),
            (8, 10, 6),
            (9, 10, 5),
            (9, 14, 7),
            (10, 11, 5),
            (11, 12, 3),
            (12, 13, 3),
            (10, 13, 6),
            (13, 14, 3),
            (13, 18, 3),
            (14, 16, 3),
            (16, 13, 5),
            (16, 17, 2),
            (17, 18, 2),
            (18, 19, 3),
        ];
        let mut b = GraphBuilder::undirected(19);
        for &(u, v, w) in edges {
            b.edge(u - 1, v - 1, w);
        }
        b.build().unwrap()
    }

    fn grid_graph(width: u32, height: u32) -> DynamicGraph {
        let mut b = GraphBuilder::undirected((width * height) as usize);
        for y in 0..height {
            for x in 0..width {
                let v = y * width + x;
                if x + 1 < width {
                    b.edge(v, v + 1, 1 + (x + y) % 5);
                }
                if y + 1 < height {
                    b.edge(v, v + width, 1 + (x * y) % 7);
                }
            }
        }
        b.build().unwrap()
    }

    fn check_invariants(graph: &DynamicGraph, partitioning: &Partitioning, z: usize) {
        // 1. Every edge appears in exactly one subgraph.
        let mut edge_count = vec![0usize; graph.num_edges()];
        for sg in partitioning.subgraphs() {
            for e in sg.edges() {
                edge_count[e.global_id.index()] += 1;
            }
        }
        assert!(edge_count.iter().all(|&c| c == 1), "every edge must be owned exactly once");

        // 2. Every vertex appears in at least one subgraph and unions give back V.
        let mut covered: HashSet<VertexId> = HashSet::new();
        for sg in partitioning.subgraphs() {
            covered.extend(sg.vertices().iter().copied());
            // 3. Vertex budget respected (isolated-vertex subgraphs have one vertex).
            // Deref to the inherent method: through the Arc handle, GraphView's
            // num_vertices (a global-id upper bound) would shadow it.
            assert!(sg.as_ref().num_vertices() <= z, "subgraph exceeds z={z}");
        }
        assert_eq!(covered.len(), graph.num_vertices());

        // 4. Boundary vertices are exactly those in >= 2 subgraphs.
        for v in graph.vertices() {
            let count = partitioning.subgraphs_of_vertex(v).len();
            assert_eq!(partitioning.is_boundary(v), count >= 2, "boundary flag mismatch for {v}");
        }

        // 5. The owner map agrees with ownership.
        for (e, _) in graph.edges() {
            let owner = partitioning.owner_of_edge(e);
            assert!(partitioning.subgraph(owner).owns_edge(e));
        }
    }

    #[test]
    fn rejects_too_small_z() {
        let g = grid_graph(3, 3);
        let err =
            Partitioner::new(PartitionConfig::with_max_vertices(1)).partition(&g).unwrap_err();
        assert_eq!(err, GraphError::InvalidPartitionSize { z: 1 });
    }

    #[test]
    fn paper_example_partitions_with_z6() {
        let g = paper_figure3_graph();
        let partitioning =
            Partitioner::new(PartitionConfig::with_max_vertices(6)).partition(&g).unwrap();
        check_invariants(&g, &partitioning, 6);
        // With z = 6, the 19-vertex graph needs at least 4 subgraphs.
        assert!(partitioning.num_subgraphs() >= 4);
        assert!(!partitioning.boundary_vertices().is_empty());
    }

    #[test]
    fn grid_partitions_respect_invariants_for_various_z() {
        let g = grid_graph(12, 9);
        for z in [4, 8, 16, 40, 200] {
            let partitioning =
                Partitioner::new(PartitionConfig::with_max_vertices(z)).partition(&g).unwrap();
            check_invariants(&g, &partitioning, z);
        }
    }

    #[test]
    fn larger_z_gives_fewer_subgraphs() {
        let g = grid_graph(15, 15);
        let small = Partitioner::new(PartitionConfig::with_max_vertices(8)).partition(&g).unwrap();
        let large = Partitioner::new(PartitionConfig::with_max_vertices(64)).partition(&g).unwrap();
        assert!(large.num_subgraphs() < small.num_subgraphs());
        assert!(large.boundary_vertices().len() < small.boundary_vertices().len());
    }

    #[test]
    fn single_subgraph_when_z_covers_everything() {
        let g = grid_graph(4, 4);
        let partitioning =
            Partitioner::new(PartitionConfig::with_max_vertices(1000)).partition(&g).unwrap();
        assert_eq!(partitioning.num_subgraphs(), 1);
        assert!(partitioning.boundary_vertices().is_empty());
        check_invariants(&g, &partitioning, 1000);
    }

    #[test]
    fn isolated_vertices_get_their_own_subgraph() {
        let mut b = GraphBuilder::undirected(4);
        b.edge(0, 1, 1);
        // Vertices 2 and 3 are isolated.
        let g = b.build().unwrap();
        let partitioning =
            Partitioner::new(PartitionConfig::with_max_vertices(10)).partition(&g).unwrap();
        check_invariants(&g, &partitioning, 10);
        assert!(partitioning.subgraphs_of_vertex(VertexId(2)).len() == 1);
        assert!(partitioning.subgraphs_of_vertex(VertexId(3)).len() == 1);
    }

    #[test]
    fn directed_graph_partitioning_covers_all_edges() {
        let mut b = GraphBuilder::directed(6);
        for (u, v) in [(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (2, 5), (3, 1)] {
            b.edge(u, v, 2);
        }
        let g = b.build().unwrap();
        let partitioning =
            Partitioner::new(PartitionConfig::with_max_vertices(3)).partition(&g).unwrap();
        check_invariants(&g, &partitioning, 3);
    }

    #[test]
    fn subgraphs_containing_pair_finds_shared_subgraphs() {
        let g = paper_figure3_graph();
        let partitioning =
            Partitioner::new(PartitionConfig::with_max_vertices(6)).partition(&g).unwrap();
        for &b1 in partitioning.boundary_vertices() {
            for sg_id in partitioning.subgraphs_of_vertex(b1) {
                let sg = partitioning.subgraph(*sg_id);
                for &b2 in sg.boundary_vertices() {
                    if b1 != b2 {
                        let shared = partitioning.subgraphs_containing_pair(b1, b2);
                        assert!(shared.contains(sg_id));
                    }
                }
            }
        }
    }

    #[test]
    fn subgraph_weights_match_graph_weights_at_partition_time() {
        let g = grid_graph(6, 6);
        let partitioning =
            Partitioner::new(PartitionConfig::with_max_vertices(9)).partition(&g).unwrap();
        for sg in partitioning.subgraphs() {
            for e in sg.edges() {
                assert_eq!(e.current_weight, g.weight(e.global_id));
                assert_eq!(e.initial_weight, g.initial_weight(e.global_id));
            }
        }
    }

    #[test]
    fn boundary_count_statistic() {
        let g = grid_graph(20, 20);
        let partitioning =
            Partitioner::new(PartitionConfig::with_max_vertices(25)).partition(&g).unwrap();
        let over0 = partitioning.subgraphs_with_boundary_over(0);
        let over5 = partitioning.subgraphs_with_boundary_over(5);
        assert!(over0 >= over5);
        assert!(over0 <= partitioning.num_subgraphs());
    }

    #[test]
    fn subgraph_view_weights_are_queryable() {
        let g = paper_figure3_graph();
        let partitioning =
            Partitioner::new(PartitionConfig::with_max_vertices(6)).partition(&g).unwrap();
        for sg in partitioning.subgraphs() {
            for e in sg.edges() {
                assert_eq!(sg.edge_weight(e.u, e.v), Some(e.current_weight));
            }
        }
    }
}
