//! Edge-weight update events.
//!
//! In the deployed system (Section 6.1) weight updates stream into the EntranceSpout
//! and are routed to the SubgraphBolt owning the affected edge. This module defines the
//! update representation shared by the graph, the DTLP index and the cluster runtime.

use crate::ids::EdgeId;
use crate::weight::Weight;
use serde::{Deserialize, Serialize};

/// A single edge-weight change: the edge now has weight `new_weight`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightUpdate {
    /// The edge whose weight changed.
    pub edge: EdgeId,
    /// The new current weight of the edge.
    pub new_weight: Weight,
}

impl WeightUpdate {
    /// Creates a new weight update.
    pub fn new(edge: EdgeId, new_weight: Weight) -> Self {
        WeightUpdate { edge, new_weight }
    }
}

/// A batch of weight updates representing one traffic snapshot.
///
/// The paper applies updates snapshot-by-snapshot: at each snapshot a fraction `α` of
/// edges change weight within a relative range `[-τ, +τ]`. A batch corresponds to one
/// such snapshot.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UpdateBatch {
    /// Updates in this batch. At most one update per edge is expected; if an edge
    /// appears multiple times the last update wins.
    pub updates: Vec<WeightUpdate>,
}

impl UpdateBatch {
    /// Creates a batch from a list of updates.
    pub fn new(updates: Vec<WeightUpdate>) -> Self {
        UpdateBatch { updates }
    }

    /// Number of updates in the batch.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Iterates over the updates.
    pub fn iter(&self) -> impl Iterator<Item = &WeightUpdate> {
        self.updates.iter()
    }

    /// Splits the batch into per-partition batches according to `owner_of`, which maps
    /// an edge to the index of the partition (worker / subgraph) that owns it.
    ///
    /// This mirrors how the EntranceSpout scatters an incoming update stream to
    /// SubgraphBolts.
    pub fn split_by(
        &self,
        num_partitions: usize,
        mut owner_of: impl FnMut(EdgeId) -> usize,
    ) -> Vec<UpdateBatch> {
        let mut parts = vec![UpdateBatch::default(); num_partitions];
        for u in &self.updates {
            let p = owner_of(u.edge);
            assert!(p < num_partitions, "owner_of returned partition {p} >= {num_partitions}");
            parts[p].updates.push(*u);
        }
        parts
    }
}

impl FromIterator<WeightUpdate> for UpdateBatch {
    fn from_iter<T: IntoIterator<Item = WeightUpdate>>(iter: T) -> Self {
        UpdateBatch { updates: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_from_iterator_and_len() {
        let batch: UpdateBatch =
            (0..5).map(|i| WeightUpdate::new(EdgeId(i), Weight::new(i as f64 + 1.0))).collect();
        assert_eq!(batch.len(), 5);
        assert!(!batch.is_empty());
    }

    #[test]
    fn empty_batch_reports_empty() {
        let batch = UpdateBatch::default();
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
    }

    #[test]
    fn split_by_routes_updates_to_owning_partition() {
        let batch: UpdateBatch =
            (0..10).map(|i| WeightUpdate::new(EdgeId(i), Weight::new(1.0))).collect();
        let parts = batch.split_by(3, |e| (e.0 % 3) as usize);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 4); // edges 0,3,6,9
        assert_eq!(parts[1].len(), 3);
        assert_eq!(parts[2].len(), 3);
        assert!(parts[0].iter().all(|u| u.edge.0 % 3 == 0));
    }

    #[test]
    #[should_panic(expected = "owner_of returned partition")]
    fn split_by_panics_on_out_of_range_partition() {
        let batch = UpdateBatch::new(vec![WeightUpdate::new(EdgeId(0), Weight::new(1.0))]);
        let _ = batch.split_by(1, |_| 7);
    }
}
