//! Subgraphs produced by the partitioner (Definition 2 / Section 3.3).
//!
//! A subgraph owns a subset of the edges of the full graph (every edge of `G` belongs
//! to exactly one subgraph) together with all vertices incident to those edges.
//! Vertices that occur in more than one subgraph are *boundary vertices*; they are the
//! only places where a path can move from one subgraph to another.
//!
//! In the distributed deployment each subgraph lives on one worker and receives the
//! weight updates for its own edges, so a [`Subgraph`] stores its own copy of the
//! current weights rather than referencing the master copy of the graph.

use crate::error::GraphError;
use crate::ids::{EdgeId, SubgraphId, VertexId};
use crate::update::WeightUpdate;
use crate::view::GraphView;
use crate::weight::Weight;
use std::collections::HashMap;

/// An edge owned by a subgraph, carrying its own copy of the evolving weight.
#[derive(Debug, Clone, PartialEq)]
pub struct SubgraphEdge {
    /// Id of this edge in the full graph.
    pub global_id: EdgeId,
    /// First endpoint (tail for directed graphs), in global vertex ids.
    pub u: VertexId,
    /// Second endpoint (head for directed graphs), in global vertex ids.
    pub v: VertexId,
    /// Initial weight = number of virtual fragments. Never changes.
    pub initial_weight: u32,
    /// Current weight; updated when the owning worker receives a weight update.
    pub current_weight: Weight,
}

impl SubgraphEdge {
    /// Unit weight of the edge (current weight divided by vfrag count).
    #[inline]
    pub fn unit_weight(&self) -> Weight {
        self.current_weight / self.initial_weight as f64
    }
}

/// One partition of the graph: at most `z` vertices, a disjoint set of edges.
#[derive(Debug, Clone)]
pub struct Subgraph {
    id: SubgraphId,
    directed: bool,
    /// Sorted list of the (global) vertices of this subgraph.
    vertices: Vec<VertexId>,
    /// Maps a global vertex id to its index in `vertices` / `adj`.
    vertex_index: HashMap<VertexId, u32>,
    /// Edges owned by this subgraph.
    edges: Vec<SubgraphEdge>,
    /// Maps a global edge id to its index in `edges`.
    edge_index: HashMap<EdgeId, u32>,
    /// Local adjacency, indexed by local vertex index; entries are
    /// (global neighbour id, local edge index).
    adj: Vec<Vec<(VertexId, u32)>>,
    /// Boundary vertices of this subgraph (subset of `vertices`), set by the
    /// partitioner once all subgraphs are known.
    boundary: Vec<VertexId>,
}

impl Subgraph {
    /// Creates a subgraph from its vertex set and owned edges.
    ///
    /// The vertex set must contain every endpoint of every edge; this is checked.
    pub fn new(
        id: SubgraphId,
        directed: bool,
        mut vertices: Vec<VertexId>,
        edges: Vec<SubgraphEdge>,
    ) -> Self {
        vertices.sort_unstable();
        vertices.dedup();
        let vertex_index: HashMap<VertexId, u32> =
            vertices.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
        let mut adj = vec![Vec::new(); vertices.len()];
        let mut edge_index = HashMap::with_capacity(edges.len());
        for (i, e) in edges.iter().enumerate() {
            let iu = *vertex_index
                .get(&e.u)
                .unwrap_or_else(|| panic!("edge endpoint {} missing from subgraph {}", e.u, id));
            let iv = *vertex_index
                .get(&e.v)
                .unwrap_or_else(|| panic!("edge endpoint {} missing from subgraph {}", e.v, id));
            adj[iu as usize].push((e.v, i as u32));
            if !directed {
                adj[iv as usize].push((e.u, i as u32));
            }
            edge_index.insert(e.global_id, i as u32);
        }
        Subgraph {
            id,
            directed,
            vertices,
            vertex_index,
            edges,
            edge_index,
            adj,
            boundary: Vec::new(),
        }
    }

    /// Rebuilds a subgraph from its persisted parts, including the boundary
    /// vertex list the partitioner had assigned. The decode-side counterpart of
    /// [`Subgraph::vertices`] / [`Subgraph::edges`] / [`Subgraph::boundary_vertices`],
    /// used by `ksp-store` to reconstruct checkpointed subgraphs exactly.
    pub fn restore(
        id: SubgraphId,
        directed: bool,
        vertices: Vec<VertexId>,
        edges: Vec<SubgraphEdge>,
        boundary: Vec<VertexId>,
    ) -> Self {
        let mut subgraph = Subgraph::new(id, directed, vertices, edges);
        subgraph.set_boundary(boundary);
        subgraph
    }

    /// Identifier of this subgraph.
    #[inline]
    pub fn id(&self) -> SubgraphId {
        self.id
    }

    /// Whether the subgraph (and the graph it came from) is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Number of vertices in this subgraph.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges owned by this subgraph.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The (sorted, global) vertices of this subgraph.
    #[inline]
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// The edges owned by this subgraph.
    #[inline]
    pub fn edges(&self) -> &[SubgraphEdge] {
        &self.edges
    }

    /// The boundary vertices of this subgraph (vertices shared with other subgraphs).
    #[inline]
    pub fn boundary_vertices(&self) -> &[VertexId] {
        &self.boundary
    }

    /// Sets the boundary vertex list. Called by the partitioner; the list is filtered
    /// to vertices actually present in this subgraph and sorted.
    pub(crate) fn set_boundary(&mut self, mut boundary: Vec<VertexId>) {
        boundary.retain(|v| self.contains_vertex(*v));
        boundary.sort_unstable();
        boundary.dedup();
        self.boundary = boundary;
    }

    /// Whether `v` belongs to this subgraph.
    #[inline]
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.vertex_index.contains_key(&v)
    }

    /// Whether this subgraph owns the edge with the given global id.
    #[inline]
    pub fn owns_edge(&self, e: EdgeId) -> bool {
        self.edge_index.contains_key(&e)
    }

    /// Returns the locally stored edge with the given global id, if owned.
    pub fn edge(&self, e: EdgeId) -> Option<&SubgraphEdge> {
        self.edge_index.get(&e).map(|&i| &self.edges[i as usize])
    }

    /// Applies a weight update to an edge owned by this subgraph.
    ///
    /// Returns the signed weight delta. Fails with [`GraphError::NoSuchEdge`]-style
    /// error if the edge is not owned here (the caller routed the update incorrectly).
    pub fn apply_update(&mut self, update: &WeightUpdate) -> Result<f64, GraphError> {
        let idx = *self
            .edge_index
            .get(&update.edge)
            .ok_or(GraphError::EdgeOutOfRange { edge: update.edge, num_edges: self.edges.len() })?;
        let e = &mut self.edges[idx as usize];
        let delta = update.new_weight.value() - e.current_weight.value();
        e.current_weight = update.new_weight;
        Ok(delta)
    }

    /// Iterates over the multiset of unit weights of this subgraph: for every edge,
    /// `initial_weight` copies of its unit weight. This is the multiset used to compute
    /// bound distances in DTLP (Section 3.4).
    pub fn unit_weight_multiset(&self) -> impl Iterator<Item = (Weight, u32)> + '_ {
        self.edges.iter().map(|e| (e.unit_weight(), e.initial_weight))
    }

    /// Total number of virtual fragments in this subgraph.
    pub fn total_vfrags(&self) -> u64 {
        self.edges.iter().map(|e| e.initial_weight as u64).sum()
    }

    /// Calls `f` for every edge incident to `v` (outgoing edges for directed graphs),
    /// passing the neighbour and the full edge record. This exposes the *initial*
    /// weight (vfrag count) alongside the current weight, which the DTLP bounding-path
    /// search needs (it measures paths in vfrags, not current travel time).
    pub fn for_each_incident_edge(&self, v: VertexId, mut f: impl FnMut(VertexId, &SubgraphEdge)) {
        if let Some(&i) = self.vertex_index.get(&v) {
            for &(to, ei) in &self.adj[i as usize] {
                f(to, &self.edges[ei as usize]);
            }
        }
    }

    /// Local index of a vertex, if present. Exposed for dense per-vertex scratch
    /// structures built by indexes over this subgraph.
    pub fn local_index(&self, v: VertexId) -> Option<usize> {
        self.vertex_index.get(&v).map(|&i| i as usize)
    }

    /// Estimated memory footprint of the subgraph structure in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.vertices.len() * std::mem::size_of::<VertexId>()
            + self.edges.len() * std::mem::size_of::<SubgraphEdge>()
            + self
                .adj
                .iter()
                .map(|a| a.len() * std::mem::size_of::<(VertexId, u32)>())
                .sum::<usize>()
            + self.vertex_index.len() * (std::mem::size_of::<VertexId>() + 4)
            + self.edge_index.len() * (std::mem::size_of::<EdgeId>() + 4)
    }
}

impl GraphView for Subgraph {
    fn num_vertices(&self) -> usize {
        // Scratch tables in the algorithms are indexed by *global* vertex id, so report
        // an upper bound on the global id space covered by this subgraph.
        self.vertices.last().map(|v| v.index() + 1).unwrap_or(0)
    }

    fn contains_vertex(&self, v: VertexId) -> bool {
        Subgraph::contains_vertex(self, v)
    }

    fn for_each_neighbor(&self, v: VertexId, mut f: impl FnMut(VertexId, Weight)) {
        if let Some(&i) = self.vertex_index.get(&v) {
            for &(to, ei) in &self.adj[i as usize] {
                f(to, self.edges[ei as usize].current_weight);
            }
        }
    }

    fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        let &iu = self.vertex_index.get(&u)?;
        self.adj[iu as usize]
            .iter()
            .find(|&&(to, _)| to == v)
            .map(|&(_, ei)| self.edges[ei as usize].current_weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_subgraph() -> Subgraph {
        // Square 0-1-2-3 with one diagonal, all initial weights 2.
        let vs = vec![VertexId(10), VertexId(11), VertexId(12), VertexId(13)];
        let mk = |id: u32, u: u32, v: u32| SubgraphEdge {
            global_id: EdgeId(id),
            u: VertexId(u),
            v: VertexId(v),
            initial_weight: 2,
            current_weight: Weight::new(2.0),
        };
        let edges = vec![mk(0, 10, 11), mk(1, 11, 12), mk(2, 12, 13), mk(3, 13, 10), mk(4, 10, 12)];
        Subgraph::new(SubgraphId(0), false, vs, edges)
    }

    #[test]
    fn construction_builds_local_adjacency() {
        let sg = sample_subgraph();
        assert_eq!(sg.num_vertices(), 4);
        assert_eq!(sg.num_edges(), 5);
        let mut n = sg.neighbors(VertexId(10));
        n.sort();
        assert_eq!(n.len(), 3);
        assert_eq!(n[0].0, VertexId(11));
        assert_eq!(n[1].0, VertexId(12));
        assert_eq!(n[2].0, VertexId(13));
    }

    #[test]
    fn contains_and_owns_queries() {
        let sg = sample_subgraph();
        assert!(sg.contains_vertex(VertexId(12)));
        assert!(!sg.contains_vertex(VertexId(99)));
        assert!(sg.owns_edge(EdgeId(4)));
        assert!(!sg.owns_edge(EdgeId(7)));
    }

    #[test]
    fn apply_update_changes_only_current_weight() {
        let mut sg = sample_subgraph();
        let delta = sg.apply_update(&WeightUpdate::new(EdgeId(1), Weight::new(6.0))).unwrap();
        assert_eq!(delta, 4.0);
        let e = sg.edge(EdgeId(1)).unwrap();
        assert_eq!(e.current_weight, Weight::new(6.0));
        assert_eq!(e.initial_weight, 2);
        assert_eq!(e.unit_weight(), Weight::new(3.0));
    }

    #[test]
    fn apply_update_rejects_foreign_edges() {
        let mut sg = sample_subgraph();
        let err = sg.apply_update(&WeightUpdate::new(EdgeId(42), Weight::new(1.0))).unwrap_err();
        assert!(matches!(err, GraphError::EdgeOutOfRange { .. }));
    }

    #[test]
    fn unit_weight_multiset_counts_vfrags() {
        let sg = sample_subgraph();
        let total: u32 = sg.unit_weight_multiset().map(|(_, c)| c).sum();
        assert_eq!(total as u64, sg.total_vfrags());
        assert_eq!(total, 10); // 5 edges * 2 vfrags
        assert!(sg.unit_weight_multiset().all(|(w, _)| w == Weight::new(1.0)));
    }

    #[test]
    fn graph_view_num_vertices_covers_global_id_space() {
        let sg = sample_subgraph();
        // Max vertex id is 13, so scratch arrays must have at least 14 slots.
        assert_eq!(GraphView::num_vertices(&sg), 14);
    }

    #[test]
    fn edge_weight_lookup_through_view() {
        let sg = sample_subgraph();
        assert_eq!(sg.edge_weight(VertexId(10), VertexId(12)), Some(Weight::new(2.0)));
        assert_eq!(sg.edge_weight(VertexId(11), VertexId(13)), None);
        assert_eq!(sg.edge_weight(VertexId(99), VertexId(13)), None);
    }

    #[test]
    fn directed_subgraph_has_one_way_adjacency() {
        let vs = vec![VertexId(0), VertexId(1)];
        let e = SubgraphEdge {
            global_id: EdgeId(0),
            u: VertexId(0),
            v: VertexId(1),
            initial_weight: 1,
            current_weight: Weight::new(1.0),
        };
        let sg = Subgraph::new(SubgraphId(0), true, vs, vec![e]);
        assert_eq!(sg.neighbors(VertexId(0)).len(), 1);
        assert_eq!(sg.neighbors(VertexId(1)).len(), 0);
    }

    #[test]
    fn boundary_setter_filters_and_sorts() {
        let mut sg = sample_subgraph();
        sg.set_boundary(vec![VertexId(13), VertexId(10), VertexId(99), VertexId(13)]);
        assert_eq!(sg.boundary_vertices(), &[VertexId(10), VertexId(13)]);
    }

    #[test]
    fn memory_estimate_is_positive() {
        let sg = sample_subgraph();
        assert!(sg.memory_bytes() > 0);
    }
}
