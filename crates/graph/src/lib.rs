//! Dynamic weighted graph substrate for the KSP-DG system.
//!
//! This crate provides the graph model used throughout the reproduction of
//! *Distributed Processing of k Shortest Path Queries over Dynamic Road Networks*
//! (SIGMOD 2020):
//!
//! * [`DynamicGraph`] — an in-memory undirected or directed weighted graph whose edge
//!   weights evolve over time (Definition 1 in the paper). Weight updates are applied
//!   in batches and bump a version counter so that query answers can be stamped with
//!   the snapshot they were computed against (the `Gcurr` buffer of Section 2).
//! * [`partition`] — the BFS edge-partitioning scheme of Section 3.3, producing
//!   [`Subgraph`]s of at most `z` vertices that share *boundary vertices* but no edges.
//! * [`GraphView`] — a lightweight read-only abstraction over "something with weighted
//!   adjacency" implemented by the full graph, subgraphs and (in `ksp-core`) the
//!   skeleton graph, so that the path algorithms in `ksp-algo` can run on any of them.
//!
//! The crate is deliberately free of any indexing or query logic; it is the substrate
//! that both the paper's contribution (`ksp-core`) and the baselines build upon.

#![warn(missing_docs)]

pub mod builder;
pub mod error;
pub mod graph;
pub mod ids;
pub mod partition;
pub mod snapshot;
pub mod subgraph;
pub mod subgraph_set;
pub mod update;
pub mod view;
pub mod weight;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{DynamicGraph, EdgeRecord};
pub use ids::{EdgeId, SubgraphId, VertexId};
pub use partition::{PartitionConfig, Partitioner, Partitioning};
pub use snapshot::GraphSnapshot;
pub use subgraph::Subgraph;
pub use subgraph_set::SubgraphSet;
pub use update::{UpdateBatch, WeightUpdate};
pub use view::GraphView;
pub use weight::Weight;
