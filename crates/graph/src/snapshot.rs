//! Consistent weight snapshots (the `Gcurr` buffer of Section 2).
//!
//! The paper processes each query against the most recent *snapshot* of the evolving
//! graph so that the answer has unambiguous semantics; the answer carries the snapshot
//! version ("timestamp") it is exact for. [`GraphSnapshot`] captures the current
//! weights of a [`DynamicGraph`]; [`SnapshotView`] combines the captured weights with
//! the (immutable) structure of the graph and implements [`GraphView`], so algorithms
//! can run against the snapshot while new updates keep arriving at the live graph.

use crate::graph::DynamicGraph;
use crate::ids::{EdgeId, VertexId};
use crate::view::GraphView;
use crate::weight::Weight;
use std::sync::Arc;

/// An immutable capture of all edge weights at a particular graph version.
#[derive(Debug, Clone)]
pub struct GraphSnapshot {
    version: u64,
    weights: Arc<Vec<Weight>>,
}

impl GraphSnapshot {
    /// Captures the current weights of `graph`.
    pub fn capture(graph: &DynamicGraph) -> Self {
        GraphSnapshot {
            version: graph.version(),
            weights: Arc::new(graph.edges().map(|(_, e)| e.current_weight).collect()),
        }
    }

    /// The graph version this snapshot was taken at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of edges captured.
    pub fn num_edges(&self) -> usize {
        self.weights.len()
    }

    /// The captured weight of an edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge id is out of range for the graph the snapshot was taken from.
    pub fn weight(&self, e: EdgeId) -> Weight {
        self.weights[e.index()]
    }

    /// Builds a [`GraphView`] that pairs this snapshot's weights with the structure of
    /// `graph`.
    ///
    /// The caller must pass the same graph the snapshot was captured from (or one with
    /// identical structure); this is asserted on the number of edges.
    pub fn view<'a>(&'a self, graph: &'a DynamicGraph) -> SnapshotView<'a> {
        assert_eq!(
            self.weights.len(),
            graph.num_edges(),
            "snapshot was captured from a graph with a different number of edges"
        );
        SnapshotView { snapshot: self, graph }
    }
}

/// A [`GraphView`] over the structure of a graph with weights frozen at snapshot time.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotView<'a> {
    snapshot: &'a GraphSnapshot,
    graph: &'a DynamicGraph,
}

impl SnapshotView<'_> {
    /// The version of the underlying snapshot.
    pub fn version(&self) -> u64 {
        self.snapshot.version()
    }
}

impl GraphView for SnapshotView<'_> {
    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn contains_vertex(&self, v: VertexId) -> bool {
        v.index() < self.graph.num_vertices()
    }

    fn for_each_neighbor(&self, v: VertexId, mut f: impl FnMut(VertexId, Weight)) {
        for &(to, e) in self.graph.adjacency(v) {
            f(to, self.snapshot.weight(e));
        }
    }

    fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.graph.edge_between(u, v).map(|e| self.snapshot.weight(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::{UpdateBatch, WeightUpdate};

    fn path_graph() -> DynamicGraph {
        let mut g = DynamicGraph::new(3, false);
        g.add_edge(VertexId(0), VertexId(1), 5).unwrap();
        g.add_edge(VertexId(1), VertexId(2), 5).unwrap();
        g
    }

    #[test]
    fn snapshot_is_isolated_from_later_updates() {
        let mut g = path_graph();
        let snap = g.snapshot();
        let e = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        g.apply_batch(&UpdateBatch::new(vec![WeightUpdate::new(e, Weight::new(50.0))])).unwrap();

        // Live graph sees the new weight, the snapshot still reports the old one.
        assert_eq!(g.weight(e), Weight::new(50.0));
        assert_eq!(snap.weight(e), Weight::new(5.0));

        let view = snap.view(&g);
        assert_eq!(view.edge_weight(VertexId(0), VertexId(1)), Some(Weight::new(5.0)));
    }

    #[test]
    fn snapshot_records_version_at_capture_time() {
        let mut g = path_graph();
        let e = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        g.apply_batch(&UpdateBatch::new(vec![WeightUpdate::new(e, Weight::new(2.0))])).unwrap();
        let snap = g.snapshot();
        assert_eq!(snap.version(), 1);
        assert_eq!(snap.num_edges(), 2);
        assert_eq!(snap.view(&g).version(), 1);
    }

    #[test]
    fn snapshot_view_exposes_structure() {
        let g = path_graph();
        let snap = g.snapshot();
        let view = snap.view(&g);
        assert_eq!(view.num_vertices(), 3);
        assert!(view.contains_vertex(VertexId(2)));
        assert!(!view.contains_vertex(VertexId(3)));
        let n = view.neighbors(VertexId(1));
        assert_eq!(n.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different number of edges")]
    fn snapshot_view_rejects_mismatched_graph() {
        let g = path_graph();
        let snap = g.snapshot();
        let other = DynamicGraph::new(3, false);
        let _ = snap.view(&other);
    }
}
