//! Property-based tests of the partitioner invariants (Section 3.3) over randomly
//! generated sparse graphs.

use ksp_graph::{DynamicGraph, GraphBuilder, PartitionConfig, Partitioner, VertexId};
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy: a random sparse undirected graph with `n` vertices and roughly `1.5 n`
/// edges (road-network-like density), defined by a seed-style edge list.
fn arbitrary_graph() -> impl Strategy<Value = DynamicGraph> {
    (5usize..60).prop_flat_map(|n| {
        let edge_count = n + n / 2;
        (Just(n), proptest::collection::vec((0..n as u32, 0..n as u32, 1u32..20), edge_count))
            .prop_map(|(n, edges)| {
                let mut b = GraphBuilder::undirected(n);
                for (u, v, w) in edges {
                    if u != v {
                        b.edge(u, v, w);
                    }
                }
                b.build().expect("valid graph")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn partition_invariants_hold(graph in arbitrary_graph(), z in 2usize..20) {
        let partitioning = Partitioner::new(PartitionConfig::with_max_vertices(z))
            .partition(&graph)
            .expect("partitioning succeeds");

        // Every edge owned exactly once.
        let mut owned = vec![0usize; graph.num_edges()];
        for sg in partitioning.subgraphs() {
            // Deref past the Arc handle: GraphView::num_vertices (a global-id
            // upper bound) would otherwise shadow the inherent vertex count.
            prop_assert!(sg.as_ref().num_vertices() <= z.max(1));
            for e in sg.edges() {
                owned[e.global_id.index()] += 1;
            }
        }
        prop_assert!(owned.iter().all(|&c| c == 1), "edge ownership counts: {owned:?}");

        // Every vertex covered; boundary flag consistent with multiplicity.
        let mut covered: HashSet<VertexId> = HashSet::new();
        for sg in partitioning.subgraphs() {
            covered.extend(sg.vertices().iter().copied());
        }
        prop_assert_eq!(covered.len(), graph.num_vertices());
        for v in graph.vertices() {
            let multiplicity = partitioning.subgraphs_of_vertex(v).len();
            prop_assert!(multiplicity >= 1);
            prop_assert_eq!(partitioning.is_boundary(v), multiplicity >= 2);
        }

        // Subgraph weights mirror the graph's weights at partition time.
        for sg in partitioning.subgraphs() {
            for e in sg.edges() {
                prop_assert_eq!(e.current_weight, graph.weight(e.global_id));
                prop_assert_eq!(e.initial_weight, graph.initial_weight(e.global_id));
            }
        }
    }
}
