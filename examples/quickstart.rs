//! Quickstart: build a DTLP index over a small synthetic road network and answer a
//! handful of k-shortest-path queries, cross-checking the answers against Yen's
//! algorithm on the full graph.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ksp_dg::algo::yen_ksp;
use ksp_dg::core::dtlp::{DtlpConfig, DtlpIndex};
use ksp_dg::core::kspdg::KspDgEngine;
use ksp_dg::graph::VertexId;
use ksp_dg::workload::{
    QueryWorkload, QueryWorkloadConfig, RoadNetworkConfig, RoadNetworkGenerator,
};

fn main() {
    // 1. Generate a small road network (~1000 intersections).
    let net = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(1000))
        .generate(2024)
        .expect("network generation");
    println!(
        "road network: {} vertices, {} edges",
        net.graph.num_vertices(),
        net.graph.num_edges()
    );

    // 2. Build the DTLP index: subgraphs of at most 50 vertices, 3 bounding paths per
    //    boundary pair.
    let index = DtlpIndex::build(&net.graph, DtlpConfig::new(50, 3)).expect("index build");
    let stats = index.build_stats();
    println!(
        "DTLP: {} subgraphs, {} boundary vertices, {} bounding paths, built in {:.1} ms",
        stats.num_subgraphs,
        stats.num_boundary_vertices,
        stats.num_bounding_paths,
        stats.build_time.as_secs_f64() * 1e3
    );

    // 3. Answer a few queries with the KSP-DG engine and verify against Yen.
    let engine = KspDgEngine::new(&index);
    let workload = QueryWorkload::generate(&net.graph, QueryWorkloadConfig::new(5, 3), 7);
    for q in workload.iter() {
        let result = engine.query(q.source, q.target, q.k);
        let reference = yen_ksp(&net.graph, q.source, q.target, q.k);
        println!(
            "q({}, {}) -> {} paths in {} iterations ({} vertices transferred)",
            q.source,
            q.target,
            result.paths.len(),
            result.stats.iterations,
            result.stats.vertices_transferred
        );
        for (i, p) in result.paths.iter().enumerate() {
            println!(
                "    #{}: distance {:.2}, {} edges",
                i + 1,
                p.distance().value(),
                p.num_edges()
            );
        }
        assert_eq!(result.paths.len(), reference.len(), "answer must match Yen");
        for (a, b) in result.paths.iter().zip(reference.iter()) {
            assert!(a.distance().approx_eq(b.distance()), "distance must match Yen");
        }
    }

    // 4. A single point-to-point query with explicit endpoints.
    let result = engine.query(VertexId(0), VertexId((net.graph.num_vertices() - 1) as u32), 2);
    println!(
        "corner-to-corner query: best distance {:?}",
        result.shortest_distance().map(|d| d.value())
    );
    println!("quickstart finished: all answers matched Yen's algorithm");
}
