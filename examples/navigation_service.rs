//! A navigation-service scenario (the paper's first motivating application):
//! a stream of concurrent route requests is answered over a road network whose travel
//! times keep changing, using the simulated cluster.
//!
//! Every few query batches a traffic snapshot arrives; the DTLP index absorbs it with a
//! cheap maintenance pass (the bounding paths never change), and subsequent queries are
//! answered against the fresh weights.
//!
//! ```text
//! cargo run --release --example navigation_service
//! ```

use ksp_dg::cluster::cluster::{Cluster, ClusterConfig, QuerySpec};
use ksp_dg::core::dtlp::DtlpConfig;
use ksp_dg::workload::{
    DatasetPreset, QueryWorkload, QueryWorkloadConfig, TrafficConfig, TrafficModel,
};
use ksp_dg::workload::datasets::DatasetScale;

fn main() {
    // The NY-like preset at benchmark scale, served by a 8-server cluster.
    let spec = DatasetPreset::NewYork.spec(DatasetScale::Small);
    let net = spec.generate().expect("dataset generation");
    let mut graph = net.graph;
    println!(
        "dataset {} ({} vertices, {} edges), z = {}",
        spec.preset.short_name(),
        graph.num_vertices(),
        graph.num_edges(),
        spec.default_z
    );

    let (mut cluster, build) =
        Cluster::build(&graph, ClusterConfig::new(8, DtlpConfig::new(spec.default_z, 3)))
            .expect("cluster build");
    println!(
        "distributed DTLP built in {:.1} ms wall clock ({:.1} ms simulated on 8 servers)",
        build.wall_clock.as_secs_f64() * 1e3,
        build.load_balance.simulated_makespan().as_secs_f64() * 1e3
    );

    // Traffic evolves with the paper's default parameters (α = 35 %, τ = 30 %).
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 99);

    for round in 1..=3 {
        // A batch of concurrent route requests: top-3 alternative routes each.
        let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(60, 3), round);
        let specs: Vec<QuerySpec> = workload
            .iter()
            .map(|q| QuerySpec { source: q.source, target: q.target, k: q.k })
            .collect();
        let report = cluster.process_queries(&specs);
        println!(
            "round {round}: answered {} queries in {:.1} ms wall clock \
             ({:.1} ms simulated makespan, {:.1} iterations/query, {} vertices transferred)",
            report.queries_answered,
            report.wall_clock.as_secs_f64() * 1e3,
            report.simulated_makespan().as_secs_f64() * 1e3,
            report.mean_iterations(),
            report.total_vertices_transferred
        );

        // Traffic conditions change; route the update batch through the cluster.
        let batch = traffic.next_snapshot();
        graph.apply_batch(&batch).expect("graph update");
        let maintenance = cluster.apply_batch(&batch).expect("index maintenance");
        println!(
            "    traffic snapshot: {} edge updates absorbed in {:.1} ms \
             ({} bounding paths touched, {} skeleton edges changed)",
            batch.len(),
            maintenance.wall_clock.as_secs_f64() * 1e3,
            maintenance.paths_touched,
            maintenance.skeleton_edges_changed
        );
    }
    println!("navigation service example finished");
}
