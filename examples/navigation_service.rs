//! A navigation-service scenario (the paper's first motivating application):
//! a stream of concurrent route requests is answered by `ksp_dg::serve`'s
//! `QueryService` — sharded workers over epoch snapshots — while traffic keeps
//! changing underneath.
//!
//! Closed-loop clients replay a query workload against the service; an updater
//! thread publishes a traffic epoch every few milliseconds. Every answer is
//! exact for the epoch it reports, repeated requests within an epoch hit the
//! result cache, and the run ends with the latency/throughput/cache summary a
//! service operator would watch.
//!
//! The service is **durable**: epochs are logged to a store directory and the
//! index is checkpointed, so a second run recovers from disk (checkpoint +
//! delta-log replay) instead of paying the full index build again — run the
//! example twice and compare the reported cold-start times.
//!
//! It is also **network-ready**: after the closed-loop run the example binds
//! the same service to a loopback TCP port and talks to it through
//! `KspClient` — version handshake, pipelined queries, a metrics scrape and a
//! checkpoint request over the typed wire protocol — reporting the physical
//! bytes the protocol moved. On Linux it then binds the epoll
//! `EventLoopServer` and answers a fleet of concurrent sessions on a fixed
//! handful of serving threads.
//!
//! ```text
//! cargo run --release --example navigation_service
//! KSP_STORE_DIR=/tmp/nav-store cargo run --release --example navigation_service
//! ```

use ksp_dg::core::dtlp::DtlpConfig;
use ksp_dg::proto::{KspClient, QueryKey};
use ksp_dg::serve::{run_closed_loop, LoadDriverConfig, QueryService, ServiceConfig, TcpServer};
use ksp_dg::store::{Store, StoreConfig};
use ksp_dg::workload::datasets::DatasetScale;
use ksp_dg::workload::{
    DatasetPreset, QueryWorkload, QueryWorkloadConfig, TrafficConfig, TrafficModel,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    // The NY-like preset. Tiny keeps the demo interactive (single KSP-DG
    // queries on the Small scale take around a second each, which is a
    // benchmark, not a demo); set KSP_EXAMPLE_SCALE=small for serving numbers
    // on the benchmark-sized network.
    let (scale, scale_name) = match std::env::var("KSP_EXAMPLE_SCALE").as_deref() {
        Ok("small") => (DatasetScale::Small, "small"),
        Ok("medium") => (DatasetScale::Medium, "medium"),
        _ => (DatasetScale::Tiny, "tiny"),
    };
    let spec = DatasetPreset::NewYork.spec(scale);
    let net = spec.generate().expect("dataset generation");
    let graph = net.graph;
    println!(
        "dataset {} ({} vertices, {} edges), z = {}",
        spec.preset.short_name(),
        graph.num_vertices(),
        graph.num_edges(),
        spec.default_z
    );

    // A 4-shard service with the paper's default DTLP parameters, persisting
    // epochs into a store directory: recover it when it exists, initialise it
    // otherwise. Checkpoint every 16 epochs keeps the delta log bounded.
    let config = ServiceConfig::new(4, DtlpConfig::new(spec.default_z, 3));
    // The scale is part of the directory name: a store holds one specific
    // graph, and recovering it under a differently-scaled workload would
    // fail on the first out-of-range edge update.
    let store_dir = std::env::var_os("KSP_STORE_DIR").map(PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("ksp-navigation-store-{}-{scale_name}", spec.preset.short_name()))
    });
    let store_config = StoreConfig { checkpoint_interval: 16, ..StoreConfig::default() };
    let cold_start = Instant::now();
    let service: Arc<QueryService> = if Store::exists(&store_dir).expect("store probe") {
        let (service, report) =
            QueryService::open(&store_dir, config, store_config).expect("store recovery");
        // The recovered graph must be the one this run's workload targets
        // (someone may have pointed KSP_STORE_DIR at a store for a
        // different network).
        let recovered = service.snapshot();
        assert_eq!(
            (recovered.graph().num_vertices(), recovered.graph().num_edges()),
            (graph.num_vertices(), graph.num_edges()),
            "store at {} holds a different graph than this scale/preset generates",
            store_dir.display(),
        );
        println!(
            "recovered store {}: checkpoint epoch {}, {} logged batch(es) replayed{} ({:.0} ms)",
            store_dir.display(),
            report.checkpoint_epoch,
            report.batches_replayed,
            if report.torn_bytes_dropped > 0 { " after torn-tail truncation" } else { "" },
            cold_start.elapsed().as_secs_f64() * 1e3,
        );
        Arc::new(service)
    } else {
        let service =
            QueryService::start_with_store(graph.clone(), config, &store_dir, store_config)
                .expect("service start");
        println!(
            "initialised store {} with a fresh index build ({:.0} ms)",
            store_dir.display(),
            cold_start.elapsed().as_secs_f64() * 1e3,
        );
        Arc::new(service)
    };
    println!(
        "query service up: {} shards, cache {} entries/shard, queue depth {}, epoch {}",
        service.num_shards(),
        config.cache_capacity,
        config.admission.max_queue_depth,
        service.current_epoch(),
    );

    // Traffic evolves with the paper's default parameters (α = 35 %, τ = 30 %)
    // while closed-loop clients replay top-3 route requests.
    let update_cadence = Duration::from_millis(20);
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 99);
    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(60, 3), 7);
    let driver = LoadDriverConfig::new(8, 150).with_updates_every(update_cadence);
    println!(
        "closed-loop run: {} clients x {} requests, traffic epoch every {:?}",
        driver.num_clients, driver.requests_per_client, update_cadence,
    );

    let report = run_closed_loop(&service, &workload, Some(&mut traffic), driver);

    println!();
    println!("== closed-loop serving report ==");
    println!(
        "requests: {} completed, {} rejected by admission control",
        report.completed, report.rejected
    );
    println!(
        "throughput: {:.0} queries/s over {:.2} s",
        report.throughput_qps(),
        report.elapsed.as_secs_f64()
    );
    println!(
        "latency: p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms (mean {:.3} ms, max {:.3} ms)",
        report.metrics.p50.as_secs_f64() * 1e3,
        report.metrics.p95.as_secs_f64() * 1e3,
        report.metrics.p99.as_secs_f64() * 1e3,
        report.metrics.mean.as_secs_f64() * 1e3,
        report.metrics.max.as_secs_f64() * 1e3,
    );
    println!(
        "cache: {:.1} % hit rate ({} hits, {} misses)",
        report.metrics.cache_hit_rate() * 100.0,
        report.metrics.cache_hits,
        report.metrics.cache_misses
    );
    println!(
        "epochs: {} published during the run (service now at epoch {}), all logged durably",
        report.epochs_published,
        service.current_epoch()
    );
    println!(
        "shard balance: busy spread {:.1} % over {} shards (simulated makespan {:.1} ms)",
        report.metrics.load_balance.busy_spread * 100.0,
        report.metrics.load_balance.num_servers,
        report.metrics.load_balance.simulated_makespan().as_secs_f64() * 1e3,
    );
    for (i, shard) in report.metrics.per_shard.iter().enumerate() {
        println!(
            "    shard {i}: {} requests, {:.1} ms busy",
            shard.items_processed,
            shard.busy_time.as_secs_f64() * 1e3
        );
    }

    // The same service, this time across a socket: bind a loopback TCP
    // endpoint and drive it through the typed wire protocol — the path a
    // remote navigation client or operator console would use.
    println!();
    println!("== wire protocol showcase (loopback TCP) ==");
    let server = TcpServer::bind(service.clone(), "127.0.0.1:0").expect("bind loopback");
    let (mut client, hello) = KspClient::connect(server.local_addr()).expect("connect");
    println!(
        "connected to {} — protocol v{}, epoch {}, {} shards",
        server.local_addr(),
        hello.protocol_version,
        hello.epoch,
        hello.num_shards
    );
    let keys: Vec<QueryKey> =
        workload.iter().take(10).map(|q| QueryKey::new(q.source, q.target, q.k)).collect();
    let answers = client.query_pipelined(&keys).expect("pipelined queries");
    let answered = answers.iter().filter(|a| a.is_ok()).count();
    println!("pipelined {} queries in one round trip: {answered} answered", keys.len());
    let remote_metrics = client.metrics().expect("metrics over the wire");
    println!(
        "remote metrics: {} completed, {} rejected by admission control, {:.1} % cache hits",
        remote_metrics.completed,
        remote_metrics.rejected,
        remote_metrics.cache_hit_rate() * 100.0
    );
    // The observability surface, over the same socket: a typed `ObsSnapshot`
    // decomposes every served request into its pipeline stages (the stage
    // totals sum to the end-to-end total — an exact attribution), and
    // `scrape_text` renders the whole thing in the Prometheus text format a
    // monitoring stack would poll.
    println!();
    println!("== observability showcase (over the same TCP connection) ==");
    let snap = client.obs_snapshot().expect("obs snapshot over the wire");
    println!(
        "where a request's time goes ({} requests, epoch age {:.3} s):",
        snap.end_to_end.count,
        snap.gauge("ksp_epoch_age_seconds").unwrap_or(0.0),
    );
    let stage_total: u64 = snap.stages.iter().map(|s| s.histogram.total_micros).sum();
    for stage in &snap.stages {
        let h = &stage.histogram;
        println!(
            "    {:<12} p50 {:>6} us  p99 {:>8} us  {:>5.1} % of total",
            stage.stage.name(),
            h.quantile(0.5).as_micros(),
            h.quantile(0.99).as_micros(),
            100.0 * h.total_micros as f64 / stage_total.max(1) as f64,
        );
    }
    println!(
        "    {:<12} p50 {:>6} us  p99 {:>8} us  (stage sum {:.3} ms = e2e {:.3} ms)",
        "end_to_end",
        snap.end_to_end.quantile(0.5).as_micros(),
        snap.end_to_end.quantile(0.99).as_micros(),
        stage_total as f64 / 1e3,
        snap.end_to_end.total_micros as f64 / 1e3,
    );
    // The write path gets the same treatment: every epoch publish is split
    // into its seven stages (staging, WAL append, fsync, snapshot swap,
    // cache retention, checkpoint encode and commit), and the stage totals
    // sum exactly to the end-to-end publish total.
    println!(
        "where an epoch publish's time goes ({} epochs published):",
        snap.publish_end_to_end.count
    );
    let publish_total: u64 = snap.publish_stages.iter().map(|s| s.histogram.total_micros).sum();
    for stage in &snap.publish_stages {
        let h = &stage.histogram;
        println!(
            "    {:<17} p50 {:>6} us  p99 {:>8} us  {:>5.1} % of total",
            stage.stage.name(),
            h.quantile(0.5).as_micros(),
            h.quantile(0.99).as_micros(),
            100.0 * h.total_micros as f64 / publish_total.max(1) as f64,
        );
    }
    println!(
        "    {:<17} (stage sum {:.3} ms = e2e {:.3} ms)",
        "end_to_end",
        publish_total as f64 / 1e3,
        snap.publish_end_to_end.total_micros as f64 / 1e3,
    );
    match &snap.dump {
        Some(dump) => println!(
            "flight recorder: {} events recorded; latest anomaly dump: {} ({} events captured, trace {:#x})",
            snap.counter("ksp_flight_events_total"),
            dump.cause.kind.name(),
            dump.events.len(),
            dump.trace_id,
        ),
        None => println!(
            "flight recorder: {} events recorded, no anomaly triggers fired",
            snap.counter("ksp_flight_events_total"),
        ),
    }
    // Every request this client sent carried a trace id the server echoed
    // back (and threads into any anomaly dump it causes), and the client
    // decomposes its own perceived latency around the server's numbers.
    let breakdown = client.latency_breakdown();
    println!(
        "trace context: last request stamped {:#x}; perceived latency so far: \
         {} us = {} serialize + {} network + {} server + {} decode",
        client.last_trace_id(),
        breakdown.total_micros,
        breakdown.serialize_micros,
        breakdown.network_micros,
        breakdown.server_micros,
        breakdown.decode_micros,
    );
    println!(
        "connections: {} open; this one has moved {} frames in / {} frames out so far",
        snap.gauge("ksp_open_connections").unwrap_or(0.0),
        snap.counter("ksp_connection_frames_in_total"),
        snap.counter("ksp_connection_frames_out_total"),
    );
    let exposition = client.scrape_text().expect("scrape over the wire");
    let families = exposition.lines().filter(|l| l.starts_with("# TYPE ")).count();
    println!(
        "text exposition: {} metric families, {} samples, {} bytes; e.g.",
        families,
        exposition.lines().filter(|l| !l.starts_with('#')).count(),
        exposition.len(),
    );
    for line in exposition.lines().filter(|l| !l.starts_with('#')).take(4) {
        println!("    {line}");
    }

    // The same service once more, behind the epoll event loop: identical
    // frames and byte-identical answers, but the serving thread count is a
    // small constant instead of one thread per connection — the deployment
    // shape for a fleet of mostly-idle navigation sessions.
    #[cfg(target_os = "linux")]
    {
        use ksp_dg::serve::EventLoopServer;
        println!();
        println!("== event-loop serving showcase (epoll, fixed thread count) ==");
        let evloop =
            EventLoopServer::bind(service.clone(), "127.0.0.1:0").expect("bind event loop");
        let mut sessions: Vec<_> =
            (0..32).map(|_| KspClient::connect(evloop.local_addr()).expect("connect").0).collect();
        let q = workload.iter().next().expect("non-empty workload");
        for session in &mut sessions {
            session.query(q.source, q.target, q.k).expect("query over the event loop");
        }
        let stats = evloop.stats();
        println!(
            "{} concurrent sessions answered on {} serving threads \
             (peak {} connections open, {} frames in / {} frames out, {} rejected)",
            sessions.len(),
            evloop.thread_count(),
            stats.peak_connections,
            stats.frames_in,
            stats.frames_out,
            stats.rejected,
        );
    }

    // A controlled shutdown checkpoints the final epoch — requested over the
    // wire, so the next run recovers without replaying this run's log.
    match client.checkpoint_now() {
        Ok(Some(epoch)) => println!("shutdown checkpoint written at epoch {epoch} (via TCP)"),
        Ok(None) => {}
        Err(e) => eprintln!("shutdown checkpoint failed: {e}"),
    }
    let wire = client.stats();
    println!(
        "wire cost: {} requests, {} B sent, {} B received ({:.0} B/request)",
        wire.requests,
        wire.bytes_sent,
        wire.bytes_received,
        wire.bytes_per_request()
    );
    drop(client);
    drop(server); // graceful: stops the acceptor and joins connection workers
    println!("navigation service example finished");
}
