//! A navigation-service scenario (the paper's first motivating application):
//! a stream of concurrent route requests is answered by `ksp_dg::serve`'s
//! `QueryService` — sharded workers over epoch snapshots — while traffic keeps
//! changing underneath.
//!
//! Closed-loop clients replay a query workload against the service; an updater
//! thread publishes a traffic epoch every few milliseconds. Every answer is
//! exact for the epoch it reports, repeated requests within an epoch hit the
//! result cache, and the run ends with the latency/throughput/cache summary a
//! service operator would watch.
//!
//! ```text
//! cargo run --release --example navigation_service
//! ```

use ksp_dg::core::dtlp::DtlpConfig;
use ksp_dg::serve::{run_closed_loop, LoadDriverConfig, QueryService, ServiceConfig};
use ksp_dg::workload::datasets::DatasetScale;
use ksp_dg::workload::{
    DatasetPreset, QueryWorkload, QueryWorkloadConfig, TrafficConfig, TrafficModel,
};
use std::time::Duration;

fn main() {
    // The NY-like preset. Tiny keeps the demo interactive (single KSP-DG
    // queries on the Small scale take around a second each, which is a
    // benchmark, not a demo); set KSP_EXAMPLE_SCALE=small for serving numbers
    // on the benchmark-sized network.
    let scale = match std::env::var("KSP_EXAMPLE_SCALE").as_deref() {
        Ok("small") => DatasetScale::Small,
        Ok("medium") => DatasetScale::Medium,
        _ => DatasetScale::Tiny,
    };
    let spec = DatasetPreset::NewYork.spec(scale);
    let net = spec.generate().expect("dataset generation");
    let graph = net.graph;
    println!(
        "dataset {} ({} vertices, {} edges), z = {}",
        spec.preset.short_name(),
        graph.num_vertices(),
        graph.num_edges(),
        spec.default_z
    );

    // A 4-shard service with the paper's default DTLP parameters.
    let config = ServiceConfig::new(4, DtlpConfig::new(spec.default_z, 3));
    let service = QueryService::start(graph.clone(), config).expect("service start");
    println!(
        "query service up: {} shards, cache {} entries/shard, queue depth {}",
        service.num_shards(),
        config.cache_capacity,
        config.admission.max_queue_depth
    );

    // Traffic evolves with the paper's default parameters (α = 35 %, τ = 30 %)
    // while closed-loop clients replay top-3 route requests.
    let update_cadence = Duration::from_millis(20);
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 99);
    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(60, 3), 7);
    let driver = LoadDriverConfig::new(8, 150).with_updates_every(update_cadence);
    println!(
        "closed-loop run: {} clients x {} requests, traffic epoch every {:?}",
        driver.num_clients, driver.requests_per_client, update_cadence,
    );

    let report = run_closed_loop(&service, &workload, Some(&mut traffic), driver);

    println!();
    println!("== closed-loop serving report ==");
    println!(
        "requests: {} completed, {} rejected by admission control",
        report.completed, report.rejected
    );
    println!(
        "throughput: {:.0} queries/s over {:.2} s",
        report.throughput_qps(),
        report.elapsed.as_secs_f64()
    );
    println!(
        "latency: p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms (mean {:.3} ms, max {:.3} ms)",
        report.metrics.p50.as_secs_f64() * 1e3,
        report.metrics.p95.as_secs_f64() * 1e3,
        report.metrics.p99.as_secs_f64() * 1e3,
        report.metrics.mean.as_secs_f64() * 1e3,
        report.metrics.max.as_secs_f64() * 1e3,
    );
    println!(
        "cache: {:.1} % hit rate ({} hits, {} misses)",
        report.metrics.cache_hit_rate() * 100.0,
        report.metrics.cache_hits,
        report.metrics.cache_misses
    );
    println!(
        "epochs: {} published during the run (service now at epoch {})",
        report.epochs_published,
        service.current_epoch()
    );
    println!(
        "shard balance: busy spread {:.1} % over {} shards (simulated makespan {:.1} ms)",
        report.metrics.load_balance.busy_spread * 100.0,
        report.metrics.load_balance.num_servers,
        report.metrics.load_balance.simulated_makespan().as_secs_f64() * 1e3,
    );
    for (i, shard) in report.metrics.per_shard.iter().enumerate() {
        println!(
            "    shard {i}: {} requests, {:.1} ms busy",
            shard.items_processed,
            shard.busy_time.as_secs_f64() * 1e3
        );
    }
    println!("navigation service example finished");
}
