//! A ride-sharing dispatch scenario (the paper's second motivating application):
//! for each (driver, rider) match the service wants a few alternative shortest routes
//! so the driver can trade earnings against delay. Here we score candidate pickups by
//! the detour their top-k routes impose on the driver.
//!
//! ```text
//! cargo run --release --example ride_sharing
//! ```

use ksp_dg::core::dtlp::{DtlpConfig, DtlpIndex};
use ksp_dg::core::kspdg::KspDgEngine;
use ksp_dg::graph::VertexId;
use ksp_dg::workload::{RoadNetworkConfig, RoadNetworkGenerator, Xoshiro256};

fn main() {
    let net = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(2000))
        .generate(777)
        .expect("network generation");
    let graph = net.graph;
    let index = DtlpIndex::build(&graph, DtlpConfig::new(60, 3)).expect("index build");
    let engine = KspDgEngine::new(&index);
    let mut rng = Xoshiro256::seed_from_u64(2025);
    let n = graph.num_vertices() as u64;

    // One driver heading to a destination, and a handful of waiting riders.
    let driver = VertexId(rng.next_bounded(n) as u32);
    let destination = VertexId(rng.next_bounded(n) as u32);
    let riders: Vec<(VertexId, VertexId)> = (0..5)
        .map(|_| (VertexId(rng.next_bounded(n) as u32), VertexId(rng.next_bounded(n) as u32)))
        .collect();

    let direct = engine.query(driver, destination, 1);
    let direct_distance = direct.shortest_distance().expect("driver can reach destination");
    println!(
        "driver at {driver}, destination {destination}, direct travel time {:.1}",
        direct_distance.value()
    );

    // For each rider, the detour is: driver -> pickup -> dropoff -> destination, using
    // the best of the top-3 alternatives for each leg.
    let mut scored: Vec<(usize, f64)> = Vec::new();
    for (i, &(pickup, dropoff)) in riders.iter().enumerate() {
        let to_pickup = engine.query(driver, pickup, 3);
        let ride = engine.query(pickup, dropoff, 3);
        let to_destination = engine.query(dropoff, destination, 3);
        let legs = [&to_pickup, &ride, &to_destination];
        if legs.iter().any(|r| r.paths.is_empty()) {
            println!("rider {i}: unreachable, skipped");
            continue;
        }
        let total: f64 =
            legs.iter().map(|r| r.shortest_distance().expect("non-empty").value()).sum();
        let detour = total - direct_distance.value();
        let alternatives: usize = legs.iter().map(|r| r.paths.len()).sum();
        println!(
            "rider {i}: pickup {pickup}, dropoff {dropoff}: total {total:.1}, detour {detour:.1} \
             ({alternatives} alternative legs offered)"
        );
        scored.push((i, detour));
    }
    scored.sort_by(|a, b| a.1.total_cmp(&b.1));
    if let Some(&(best, detour)) = scored.first() {
        println!("best match: rider {best} with detour {detour:.1}");
    }
    println!("ride sharing example finished");
}
