//! Demonstrates index maintenance under a long stream of traffic snapshots, and how
//! the same route request gets different answers as congestion builds up — while the
//! DTLP structure itself (bounding paths) never has to be rebuilt. Also runs the
//! message-passing Storm-like topology to show the distributed deployment of
//! Section 6.1 producing identical answers.
//!
//! ```text
//! cargo run --release --example dynamic_traffic
//! ```

use ksp_dg::cluster::topology::{StormTopology, TopologyConfig};
use ksp_dg::core::dtlp::{DtlpConfig, DtlpIndex};
use ksp_dg::core::kspdg::KspDgEngine;
use ksp_dg::graph::VertexId;
use ksp_dg::workload::{RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig, TrafficModel};

fn main() {
    let net = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(1200))
        .generate(4242)
        .expect("network generation");
    let mut graph = net.graph;
    let dtlp_config = DtlpConfig::new(50, 3);
    let mut index = DtlpIndex::build(&graph, dtlp_config).expect("index build");
    let mut topology =
        StormTopology::build(&graph, TopologyConfig::new(4, dtlp_config)).expect("topology build");

    let source = VertexId(10);
    let target = VertexId((graph.num_vertices() as u32) - 10);
    let k = 3;

    // Heavy rush-hour traffic: 40 % of edges change per snapshot, up to ±60 %.
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.40, 0.60), 31);

    for snapshot in 0..5 {
        let engine = KspDgEngine::new(&index);
        let local = engine.query(source, target, k);
        let distributed = topology.query(source, target, k);
        assert_eq!(local.paths.len(), distributed.len());
        for (a, b) in local.paths.iter().zip(distributed.iter()) {
            assert!(a.distance().approx_eq(b.distance()), "topology must agree with the engine");
        }
        let distances: Vec<String> =
            local.paths.iter().map(|p| format!("{:.1}", p.distance().value())).collect();
        println!(
            "snapshot {snapshot}: top-{k} travel times [{}] ({} iterations, {} partial computations)",
            distances.join(", "),
            local.stats.iterations,
            local.stats.partial_computations
        );

        // Next traffic snapshot: update the live graph, the index and the topology.
        let batch = traffic.next_snapshot();
        graph.apply_batch(&batch).expect("graph update");
        let stats = index.apply_batch(&batch).expect("index maintenance");
        topology.apply_batch(&batch).expect("topology maintenance");
        println!(
            "    applied {} updates: {} bounding-path distances adjusted, {} skeleton edges changed",
            batch.len(),
            stats.paths_touched,
            stats.skeleton_edges_changed
        );
    }
    println!("dynamic traffic example finished");
}
