//! Integration tests for the epoll event-loop server: the same wire protocol
//! as `TcpServer`, on a bounded thread count, with SLO-driven admission at
//! the socket.
//!
//! Four contracts are proven here:
//!
//! 1. **Bit-exactness** — answers served through the event loop equal the
//!    in-process answers byte for byte, for sequential, batched and
//!    pipelined clients alike.
//! 2. **Reassembly** — a frame dribbled one byte per segment, several frames
//!    coalesced into one segment, and a frame torn at every possible offset
//!    all behave exactly as the blocking reader: complete frames answer,
//!    tears answer typed and disconnect.
//! 3. **Scale** — a thousand-plus concurrent connections are served with
//!    correct answers while the process thread count stays flat (the
//!    thread-per-connection server would add a thousand threads).
//! 4. **Admission under burst** — property-tested: whatever mix of idle
//!    connection storms, hot-shard floods and epoch publishes arrives, every
//!    accepted request is answered byte-identically to in-proc and every
//!    rejection is a typed `Overloaded` — never a dropped connection.

#![cfg(target_os = "linux")]

use ksp_dg::core::dtlp::DtlpConfig;
use ksp_dg::graph::{DynamicGraph, VertexId};
use ksp_dg::proto::frame::{read_frame, write_frame, FrameKind, MAX_FRAME_PAYLOAD};
use ksp_dg::proto::message::{ErrorReply, QueryKey, Request, Response, PROTOCOL_VERSION};
use ksp_dg::proto::{ClientError, KspClient};
use ksp_dg::serve::{route_shard, EventLoopConfig, EventLoopServer, QueryService, ServiceConfig};
use ksp_dg::store::StoreCodec;
use ksp_dg::workload::{
    QueryWorkload, QueryWorkloadConfig, RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig,
    TrafficModel,
};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn start_server(
    n: usize,
    config: ServiceConfig,
    seed: u64,
    loop_config: EventLoopConfig,
) -> (EventLoopServer, Arc<QueryService>, DynamicGraph) {
    let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(n))
        .generate(seed)
        .unwrap()
        .graph;
    let service = Arc::new(QueryService::start(graph.clone(), config).unwrap());
    let server = EventLoopServer::bind_with(service.clone(), "127.0.0.1:0", loop_config).unwrap();
    (server, service, graph)
}

fn default_server(
    n: usize,
    shards: usize,
    seed: u64,
) -> (EventLoopServer, Arc<QueryService>, DynamicGraph) {
    let config = ServiceConfig::new(shards, DtlpConfig::new(16, 2));
    start_server(n, config, seed, EventLoopConfig::default())
}

fn raw_conn(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
}

fn read_response(stream: &mut TcpStream) -> Option<Response> {
    match read_frame(stream) {
        Ok(Some((FrameKind::Response, payload))) => {
            Some(Response::from_bytes(&payload).expect("server responses must decode"))
        }
        Ok(None) => None,
        other => panic!("expected a response frame or clean EOF, got {other:?}"),
    }
}

fn assert_disconnected(stream: &mut TcpStream) {
    let mut byte = [0u8; 1];
    match stream.read(&mut byte) {
        Ok(0) => {}
        other => panic!("expected a clean disconnect, got {other:?}"),
    }
}

fn assert_answers_match(
    got: &[ksp_dg::algo::Path],
    want: &[ksp_dg::algo::Path],
    got_epoch: u64,
    want_epoch: u64,
) {
    assert_eq!(got_epoch, want_epoch, "answers must come from the same epoch");
    assert_eq!(got.len(), want.len());
    for (a, b) in got.iter().zip(want.iter()) {
        assert_eq!(a.vertices(), b.vertices());
        assert_eq!(a.distance().value().to_bits(), b.distance().value().to_bits());
    }
}

/// Live thread count of this test process, from /proc (Linux-only, like the
/// server under test).
fn process_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("/proc/self/status reports Threads")
}

#[test]
fn event_loop_answers_are_byte_identical_to_in_proc() {
    let (server, service, graph) = default_server(200, 3, 41);
    let addr = server.local_addr();
    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(12, 3), 7);
    let reference: Vec<_> =
        workload.iter().map(|q| service.query(q.source, q.target, q.k).unwrap()).collect();

    std::thread::scope(|scope| {
        for client_id in 0..3 {
            let workload = &workload;
            let reference = &reference;
            scope.spawn(move || {
                let (mut client, info) = KspClient::connect(addr).unwrap();
                assert_eq!(info.protocol_version, PROTOCOL_VERSION);
                assert_eq!(info.num_shards, 3);
                match client_id {
                    0 => {
                        for (q, want) in workload.iter().zip(reference.iter()) {
                            let got = client.query(q.source, q.target, q.k).unwrap();
                            assert_answers_match(&got.paths, &want.paths, got.epoch, want.epoch);
                        }
                    }
                    1 => {
                        let keys: Vec<QueryKey> = workload
                            .iter()
                            .map(|q| QueryKey::new(q.source, q.target, q.k))
                            .collect();
                        for (got, want) in
                            client.query_batch(&keys).unwrap().into_iter().zip(reference.iter())
                        {
                            let got = got.unwrap();
                            assert_answers_match(&got.paths, &want.paths, got.epoch, want.epoch);
                        }
                    }
                    _ => {
                        let keys: Vec<QueryKey> = workload
                            .iter()
                            .map(|q| QueryKey::new(q.source, q.target, q.k))
                            .collect();
                        for (got, want) in
                            client.query_pipelined(&keys).unwrap().into_iter().zip(reference.iter())
                        {
                            let got = got.unwrap();
                            assert_answers_match(&got.paths, &want.paths, got.epoch, want.epoch);
                        }
                    }
                }
                assert!(client.stats().bytes_sent > 0, "the event loop moves real bytes");
            });
        }
    });

    let stats = server.stats();
    assert!(stats.accepted >= 3);
    assert!(stats.frames_in > 0 && stats.frames_out > 0);
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
}

#[test]
fn pipelined_bursts_larger_than_the_pending_cap_all_answer() {
    // 200 queries written in one burst, far past the per-connection decode
    // backpressure cap (64 pending requests). The client sends everything
    // before reading a byte, so once the burst is buffered server-side there
    // is no further EPOLLIN on the socket — the loop must resume decoding
    // the buffered remainder as completions free slots, or the tail of the
    // burst is never answered and the connection hangs forever.
    let (server, service, graph) = default_server(160, 2, 71);
    let n = graph.num_vertices() as u32;
    let keys: Vec<QueryKey> = (0..200u32)
        .map(|i| QueryKey::new(VertexId(i % n), VertexId((i + 7) % n), 2))
        .filter(|k| k.source != k.target)
        .collect();
    assert!(keys.len() > 64, "the burst must exceed the pending cap");
    let reference: Vec<_> =
        keys.iter().map(|k| service.query(k.source, k.target, k.k).unwrap()).collect();

    let (mut client, _) = KspClient::connect(server.local_addr()).unwrap();
    let got = client.query_pipelined(&keys).unwrap();
    assert_eq!(got.len(), keys.len(), "every pipelined request must be answered");
    for (got, want) in got.into_iter().zip(reference.iter()) {
        let got = got.unwrap();
        assert_answers_match(&got.paths, &want.paths, got.epoch, want.epoch);
    }
    assert!(server.stats().frames_in >= keys.len() as u64);
}

#[test]
fn publishes_over_the_event_loop_are_visible_to_every_connection() {
    let (server, service, graph) = default_server(160, 2, 23);
    let addr = server.local_addr();
    let (mut writer_conn, _) = KspClient::connect(addr).unwrap();
    let (mut reader_conn, info) = KspClient::connect(addr).unwrap();
    assert_eq!(info.epoch, 0);

    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.5, 0.4), 19);
    for expected in 1..=2u64 {
        let batch = traffic.next_snapshot();
        assert_eq!(writer_conn.apply_batch(&batch).unwrap(), expected);
    }
    assert_eq!(reader_conn.ping().unwrap().epoch, 2);
    assert_eq!(service.current_epoch(), 2);

    let last = VertexId(graph.num_vertices() as u32 - 1);
    let over_wire = reader_conn.query(VertexId(0), last, 3).unwrap();
    let direct = service.query(VertexId(0), last, 3).unwrap();
    assert_answers_match(&over_wire.paths, &direct.paths, over_wire.epoch, direct.epoch);
}

#[test]
fn dribbled_coalesced_and_torn_frames_reassemble_exactly() {
    let (server, _service, graph) = default_server(140, 2, 31);
    let addr = server.local_addr();
    let last = VertexId(graph.num_vertices() as u32 - 1);

    let ping_frame = {
        let mut frame = Vec::new();
        let payload = Request::ping_legacy(PROTOCOL_VERSION).to_bytes();
        write_frame(&mut frame, FrameKind::Request, &payload).unwrap();
        frame
    };
    let query_frame = {
        let mut frame = Vec::new();
        let payload = Request::Query(QueryKey::new(VertexId(0), last, 2)).to_bytes();
        write_frame(&mut frame, FrameKind::Request, &payload).unwrap();
        frame
    };

    // (a) One byte per segment: the adversarial dribble. The poller must
    // reassemble across dozens of partial reads.
    {
        let mut conn = raw_conn(addr);
        for (i, byte) in ping_frame.iter().enumerate() {
            conn.write_all(std::slice::from_ref(byte)).unwrap();
            conn.flush().unwrap();
            if i % 5 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        match read_response(&mut conn) {
            Some(Response::Pong { protocol_version, .. }) => {
                assert_eq!(protocol_version, PROTOCOL_VERSION)
            }
            other => panic!("expected Pong from a dribbled ping, got {other:?}"),
        }
    }

    // (b) Two frames in one TCP segment: both must answer, in order.
    {
        let mut coalesced = ping_frame.clone();
        coalesced.extend_from_slice(&query_frame);
        let mut conn = raw_conn(addr);
        conn.write_all(&coalesced).unwrap();
        conn.flush().unwrap();
        match read_response(&mut conn) {
            Some(Response::Pong { .. }) => {}
            other => panic!("first response must be the Pong, got {other:?}"),
        }
        match read_response(&mut conn) {
            Some(Response::Query(answer)) => assert!(!answer.paths.is_empty()),
            other => panic!("second response must be the query answer, got {other:?}"),
        }
    }

    // (c) A good frame followed by a tail torn at *every* offset: the good
    // frame answers, the tear is reported typed — exactly the blocking
    // reader's Truncated error — and the connection closes.
    for cut in 1..ping_frame.len() {
        let mut conn = raw_conn(addr);
        conn.write_all(&query_frame).unwrap();
        conn.write_all(&ping_frame[..cut]).unwrap();
        conn.flush().unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        match read_response(&mut conn) {
            Some(Response::Query(answer)) => assert!(!answer.paths.is_empty()),
            other => panic!("cut {cut}: the complete frame must answer, got {other:?}"),
        }
        match read_response(&mut conn) {
            Some(Response::Error(ErrorReply::Malformed(detail))) => {
                assert!(detail.contains("mid-frame"), "cut {cut}: unexpected detail {detail}")
            }
            other => panic!("cut {cut}: expected a typed truncation reply, got {other:?}"),
        }
        assert_disconnected(&mut conn);
    }
}

#[test]
fn hostile_frames_fail_typed_and_the_event_loop_survives() {
    let (server, _service, graph) = default_server(120, 2, 43);
    let addr = server.local_addr();
    let last = VertexId(graph.num_vertices() as u32 - 1);

    // (a) Garbage bytes: not even the magic matches.
    {
        let mut conn = raw_conn(addr);
        conn.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        conn.flush().unwrap();
        match read_response(&mut conn) {
            Some(Response::Error(ErrorReply::Malformed(detail))) => {
                assert!(detail.contains("magic"), "unexpected detail: {detail}")
            }
            other => panic!("expected a typed Malformed reply, got {other:?}"),
        }
        assert_disconnected(&mut conn);
    }

    // (b) CRC mismatch.
    {
        let mut frame = Vec::new();
        let payload = Request::Query(QueryKey::new(VertexId(0), last, 2)).to_bytes();
        write_frame(&mut frame, FrameKind::Request, &payload).unwrap();
        let end = frame.len() - 1;
        frame[end] ^= 0x01;
        let mut conn = raw_conn(addr);
        conn.write_all(&frame).unwrap();
        conn.flush().unwrap();
        match read_response(&mut conn) {
            Some(Response::Error(ErrorReply::Malformed(detail))) => {
                assert!(detail.contains("CRC"), "unexpected detail: {detail}")
            }
            other => panic!("expected a typed CRC failure, got {other:?}"),
        }
        assert_disconnected(&mut conn);
    }

    // (c) Foreign protocol version in the frame header.
    {
        let mut frame = Vec::new();
        let payload = Request::ping_legacy(999).to_bytes();
        write_frame(&mut frame, FrameKind::Request, &payload).unwrap();
        frame[4..8].copy_from_slice(&999u32.to_le_bytes());
        let mut conn = raw_conn(addr);
        conn.write_all(&frame).unwrap();
        conn.flush().unwrap();
        match read_response(&mut conn) {
            Some(Response::Error(ErrorReply::UnsupportedVersion { server, client })) => {
                assert_eq!(server, PROTOCOL_VERSION);
                assert_eq!(client, 999);
            }
            other => panic!("expected a typed version rejection, got {other:?}"),
        }
        assert_disconnected(&mut conn);
    }

    // (d) Oversized declared length: rejected on the header alone.
    {
        let mut frame = Vec::new();
        write_frame(&mut frame, FrameKind::Request, &Request::Metrics.to_bytes()).unwrap();
        frame[9..13].copy_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        let mut conn = raw_conn(addr);
        conn.write_all(&frame).unwrap();
        conn.flush().unwrap();
        match read_response(&mut conn) {
            Some(Response::Error(ErrorReply::Malformed(detail))) => {
                assert!(detail.contains("exceeds"), "unexpected detail: {detail}")
            }
            other => panic!("expected a typed oversize rejection, got {other:?}"),
        }
        assert_disconnected(&mut conn);
    }

    // (e) A frame that parses but whose payload is not a valid Request.
    {
        let mut frame = Vec::new();
        write_frame(&mut frame, FrameKind::Request, &[250, 1, 2, 3]).unwrap();
        let mut conn = raw_conn(addr);
        conn.write_all(&frame).unwrap();
        conn.flush().unwrap();
        match read_response(&mut conn) {
            Some(Response::Error(ErrorReply::Malformed(detail))) => {
                assert!(detail.contains("decode"), "unexpected detail: {detail}")
            }
            other => panic!("expected a typed decode failure, got {other:?}"),
        }
        assert_disconnected(&mut conn);
    }

    // (f) A response-kind frame sent to the server.
    {
        let mut frame = Vec::new();
        write_frame(&mut frame, FrameKind::Response, &Request::Metrics.to_bytes()).unwrap();
        let mut conn = raw_conn(addr);
        conn.write_all(&frame).unwrap();
        conn.flush().unwrap();
        match read_response(&mut conn) {
            Some(Response::Error(ErrorReply::Malformed(detail))) => {
                assert!(detail.contains("request frames"), "unexpected detail: {detail}")
            }
            other => panic!("expected a typed kind rejection, got {other:?}"),
        }
        assert_disconnected(&mut conn);
    }

    // After the abuse, a well-formed client is still served, and the hostile
    // incidents were counted.
    let (mut client, _) = KspClient::connect(addr).unwrap();
    let answer = client.query(VertexId(0), last, 2).unwrap();
    assert!(!answer.paths.is_empty(), "server must keep serving after hostile clients");
    assert!(server.stats().hostile_frames >= 6);
}

#[test]
fn a_thousand_connections_are_served_on_a_bounded_thread_count() {
    let (server, service, graph) = default_server(150, 2, 53);
    let addr = server.local_addr();
    let last = VertexId(graph.num_vertices() as u32 - 1);
    let reference = service.query(VertexId(0), last, 2).unwrap();

    let threads_before = process_threads();
    assert_eq!(server.thread_count(), EventLoopConfig::default().dispatch_workers + 1);

    // 1024 idle connections held open at once...
    let mut idle = Vec::with_capacity(1024);
    for _ in 0..1024 {
        idle.push(TcpStream::connect(addr).unwrap());
    }
    // ...plus active clients querying through the same loop.
    for _ in 0..16 {
        let (mut client, _) = KspClient::connect(addr).unwrap();
        let got = client.query(VertexId(0), last, 2).unwrap();
        assert_answers_match(&got.paths, &reference.paths, got.epoch, reference.epoch);
    }

    // The storm is visible in the loop's accounting...
    let stats = server.stats();
    assert!(stats.peak_connections >= 1024, "peak {} too low", stats.peak_connections);
    assert!(stats.open_connections >= 1024);

    // ...but the process thread count stayed flat. A thread-per-connection
    // server would have added ~1040 threads here; allow generous slack for
    // unrelated tests running in this same process.
    let threads_during = process_threads();
    assert!(
        threads_during < threads_before + 64,
        "thread count must not scale with connections: {threads_before} -> {threads_during}"
    );

    drop(idle);
    drop(server);
}

#[test]
fn slo_breaching_requests_are_rejected_typed_with_retry_hints() {
    // A 50µs budget no engine run can meet: the first cold query is admitted
    // blind (no samples yet) and seeds the EWMA; every later engine-run
    // prediction breaches the budget and must be rejected with a hint.
    let mut config = ServiceConfig::new(2, DtlpConfig::new(16, 2));
    config.observability.slo_p99 = Duration::from_micros(50);
    let (server, _service, graph) = start_server(140, config, 61, EventLoopConfig::default());
    let last = VertexId(graph.num_vertices() as u32 - 1);

    let (mut client, _) = KspClient::connect(server.local_addr()).unwrap();
    client.query(VertexId(0), last, 2).expect("the seeding query is admitted blind");

    let mut saw_rejection = false;
    for t in 1..8 {
        // A cache hit may legitimately fit even this budget, so Ok is allowed.
        if let Err(e) = client.query(VertexId(1), VertexId(t), 2) {
            assert!(e.is_overloaded(), "rejections must be typed Overloaded: {e}");
            if let ClientError::Server(reply) = &e {
                let hint = reply.retry_after_ms().expect("adaptive rejections carry a hint");
                assert!(hint >= 1, "retry_after_ms must be at least 1ms");
            }
            saw_rejection = true;
        }
    }
    assert!(saw_rejection, "a 50µs SLO must reject engine-run queries");
    // The connection survived every rejection.
    assert!(client.ping().is_ok());
    assert!(server.stats().rejected >= 1);

    // The rejections are visible in the exposition scraped over the same
    // loop, next to the service's own admission counters.
    let text = client.scrape_text().unwrap();
    assert!(text.contains("ksp_eventloop_rejected_total"), "missing eventloop counters");
    assert!(text.contains("ksp_eventloop_open_connections"), "missing eventloop gauges");
    assert!(text.contains("ksp_admission_rejected_total"), "missing admission counters");
}

#[test]
fn obs_snapshots_over_the_loop_carry_eventloop_metrics() {
    let (server, _service, _graph) = default_server(120, 2, 67);
    let (mut client, _) = KspClient::connect(server.local_addr()).unwrap();
    let snapshot = client.obs_snapshot().unwrap();
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("snapshot must carry {name}"))
            .value
    };
    assert!(counter("ksp_eventloop_accepted_total") >= 1);
    assert!(counter("ksp_eventloop_frames_in_total") >= 1);
    let threads = snapshot
        .gauges
        .iter()
        .find(|g| g.name == "ksp_eventloop_threads")
        .expect("snapshot must carry the thread gauge");
    assert_eq!(threads.value as usize, server.thread_count());
}

/// One property-test scenario: a burst mix derived from the seed.
fn burst_scenario(seed: u64, idle_conns: usize, flood_threads: usize) {
    let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(120))
        .generate(seed)
        .unwrap()
        .graph;
    let mut config = ServiceConfig::new(2, DtlpConfig::new(16, 2));
    // A real but tight budget plus a tiny backlog cap: floods must trip one
    // of the two rejection paths without making steady-state unservable.
    config.observability.slo_p99 = Duration::from_millis(250);
    let service = Arc::new(QueryService::start(graph.clone(), config).unwrap());
    let server = EventLoopServer::bind_with(
        service.clone(),
        "127.0.0.1:0",
        EventLoopConfig { dispatch_workers: 2, max_backlog: 4 },
    )
    .unwrap();
    let addr = server.local_addr();

    // Idle-connection storm: sockets that connect and say nothing.
    let idle: Vec<TcpStream> = (0..idle_conns).map(|_| TcpStream::connect(addr).unwrap()).collect();

    // Hot-shard flood targets: keys that all route to shard 0.
    let n = graph.num_vertices() as u32;
    let mut hot = Vec::new();
    's: for a in 0..n {
        for b in 0..n {
            if a != b && route_shard(VertexId(a), VertexId(b), 2, 2) == 0 {
                hot.push((VertexId(a), VertexId(b)));
                if hot.len() == 6 {
                    break 's;
                }
            }
        }
    }
    // In-proc reference at epoch 0, computed before the flood so the
    // estimator warm-up cannot reject it.
    let reference: Vec<_> = hot.iter().map(|&(s, t)| service.query(s, t, 2).unwrap()).collect();

    let flood = |hot: &[(VertexId, VertexId)], reference: &[ksp_dg::serve::QueryResponse]| {
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..flood_threads {
                handles.push(scope.spawn(move || {
                    let (mut client, _) = KspClient::connect(addr).unwrap();
                    let mut accepted = 0u64;
                    let mut rejected = 0u64;
                    for round in 0..4 {
                        for (i, &(s, t)) in hot.iter().enumerate() {
                            match client.query(s, t, 2) {
                                Ok(answer) => {
                                    let want = &reference[i];
                                    assert_answers_match(
                                        &answer.paths,
                                        &want.paths,
                                        answer.epoch,
                                        want.epoch,
                                    );
                                    accepted += 1;
                                }
                                Err(e) => {
                                    // The one and only acceptable failure:
                                    // typed Overloaded. An I/O or framing
                                    // error would mean a dropped connection.
                                    assert!(
                                        e.is_overloaded(),
                                        "round {round}: non-overload failure {e}"
                                    );
                                    rejected += 1;
                                }
                            }
                        }
                    }
                    // The connection survived the whole burst.
                    assert!(client.ping().is_ok(), "connection must survive rejections");
                    (accepted, rejected)
                }));
            }
            let mut total_accepted = 0;
            let mut total_rejected = 0;
            for h in handles {
                let (a, r) = h.join().unwrap();
                total_accepted += a;
                total_rejected += r;
            }
            (total_accepted, total_rejected)
        })
    };

    let (accepted, rejected) = flood(&hot, &reference);
    assert_eq!(
        accepted + rejected,
        (flood_threads * 4 * hot.len()) as u64,
        "every request must be answered, one way or the other"
    );

    // Publish an epoch through the same loop, then flood again against the
    // new reference: accepted answers must be byte-identical at the new
    // epoch.
    let (mut publisher, _) = KspClient::connect(addr).unwrap();
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.5, 0.4), seed ^ 0x5EED);
    assert_eq!(publisher.apply_batch(&traffic.next_snapshot()).unwrap(), 1);
    let reference: Vec<_> = hot
        .iter()
        .map(|&(s, t)| {
            // Post-publish references retry through transient overload: the
            // flood may have left the estimator hot.
            loop {
                match service.query(s, t, 2) {
                    Ok(r) => break r,
                    Err(e) => {
                        assert!(matches!(e, ksp_dg::serve::ServiceError::Overloaded { .. }));
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
            }
        })
        .collect();
    assert!(reference.iter().all(|r| r.epoch == 1));
    let (accepted, rejected) = flood(&hot, &reference);
    assert_eq!(accepted + rejected, (flood_threads * 4 * hot.len()) as u64);

    drop(idle);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Satellite property: under any interleaving of idle-connection storms,
    /// hot-shard floods and epoch publishes, the event loop answers every
    /// accepted request byte-identically to in-proc and rejects with typed
    /// `Overloaded` only — no dropped connections, no torn responses.
    #[test]
    fn admission_under_burst_never_drops_a_connection(
        seed in 0u64..1_000,
        idle_conns in 20usize..120,
        flood_threads in 3usize..7,
    ) {
        burst_scenario(seed, idle_conns, flood_threads);
    }
}
