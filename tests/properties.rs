//! Workspace-level property-based tests of the system's central invariants, driven by
//! proptest over randomly generated road networks, weight updates and queries.

use ksp_dg::algo::{dijkstra_path, yen_ksp};
use ksp_dg::core::dtlp::{DtlpConfig, DtlpIndex};
use ksp_dg::core::kspdg::KspDgEngine;
use ksp_dg::graph::{UpdateBatch, VertexId, Weight, WeightUpdate};
use ksp_dg::workload::{RoadNetworkConfig, RoadNetworkGenerator, Xoshiro256};
use proptest::prelude::*;

/// Generates a connected road network of 60–160 vertices from an arbitrary seed.
fn network(seed: u64) -> ksp_dg::graph::DynamicGraph {
    let size = 60 + (seed % 100) as usize;
    RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(size))
        .generate(seed)
        .expect("network generation")
        .graph
}

/// Applies a pseudo-random weight perturbation derived from `seed` to `fraction` of the
/// edges, returning the batch.
fn perturb(graph: &ksp_dg::graph::DynamicGraph, seed: u64, fraction: f64) -> UpdateBatch {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let m = graph.num_edges();
    let count = ((m as f64) * fraction) as usize;
    let updates = rng
        .sample_indices(m, count)
        .into_iter()
        .map(|i| {
            let e = ksp_dg::graph::EdgeId(i as u32);
            let w0 = graph.initial_weight(e) as f64;
            let factor = rng.next_range_f64(0.5, 1.5);
            WeightUpdate::new(e, Weight::new((w0 * factor).max(0.1)))
        })
        .collect();
    UpdateBatch::new(updates)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Theorem 2: the skeleton-graph distance between two boundary vertices never
    /// exceeds the true graph distance, even after arbitrary weight perturbations.
    #[test]
    fn skeleton_distance_is_lower_bound(seed in 0u64..5_000, z in 8usize..40, xi in 1usize..4) {
        let mut graph = network(seed);
        let mut index = DtlpIndex::build(&graph, DtlpConfig::new(z, xi)).unwrap();
        let batch = perturb(&graph, seed ^ 0xFEED, 0.4);
        graph.apply_batch(&batch).unwrap();
        index.apply_batch(&batch).unwrap();

        let boundary = index.boundary_vertices();
        prop_assume!(boundary.len() >= 2);
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xBEEF);
        for _ in 0..5 {
            let a = boundary[rng.next_bounded(boundary.len() as u64) as usize];
            let b = boundary[rng.next_bounded(boundary.len() as u64) as usize];
            if a == b { continue; }
            let skeleton_d = dijkstra_path(index.skeleton(), a, b)
                .map(|p| p.distance()).unwrap_or(Weight::INFINITY);
            let graph_d = dijkstra_path(&graph, a, b)
                .map(|p| p.distance()).unwrap_or(Weight::INFINITY);
            prop_assert!(
                skeleton_d <= graph_d || skeleton_d.approx_eq(graph_d),
                "skeleton {} > graph {} for {} -> {}", skeleton_d, graph_d, a, b
            );
        }
    }

    /// KSP-DG returns exactly the same k distances as Yen's algorithm on the full
    /// graph, for random graphs, random updates and random endpoints.
    #[test]
    fn kspdg_matches_yen(seed in 0u64..5_000, z in 8usize..40, k in 1usize..5) {
        let mut graph = network(seed);
        let mut index = DtlpIndex::build(&graph, DtlpConfig::new(z, 2)).unwrap();
        let batch = perturb(&graph, seed ^ 0xABCD, 0.35);
        graph.apply_batch(&batch).unwrap();
        index.apply_batch(&batch).unwrap();

        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x1234);
        let n = graph.num_vertices() as u64;
        let engine = KspDgEngine::new(&index);
        for _ in 0..3 {
            let s = VertexId(rng.next_bounded(n) as u32);
            let t = VertexId(rng.next_bounded(n) as u32);
            if s == t { continue; }
            let got = engine.query(s, t, k);
            let expected = yen_ksp(&graph, s, t, k);
            prop_assert_eq!(got.paths.len(), expected.len(), "count mismatch for {} -> {}", s, t);
            for (a, b) in got.paths.iter().zip(expected.iter()) {
                prop_assert!(
                    a.distance().approx_eq(b.distance()),
                    "distance mismatch for {} -> {}: {} vs {}", s, t, a.distance(), b.distance()
                );
            }
        }
    }

    /// Query answers are internally consistent: sorted by distance, simple, and with
    /// endpoints matching the query.
    #[test]
    fn query_results_are_well_formed(seed in 0u64..5_000, k in 1usize..6) {
        let graph = network(seed);
        let index = DtlpIndex::build(&graph, DtlpConfig::new(20, 2)).unwrap();
        let engine = KspDgEngine::new(&index);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let n = graph.num_vertices() as u64;
        let s = VertexId(rng.next_bounded(n) as u32);
        let t = VertexId(rng.next_bounded(n) as u32);
        let result = engine.query(s, t, k);
        prop_assert!(result.paths.len() <= k);
        for w in result.paths.windows(2) {
            prop_assert!(w[0].distance() <= w[1].distance());
            prop_assert!(!w[0].same_route(&w[1]), "duplicate route returned");
        }
        for p in &result.paths {
            prop_assert_eq!(p.source(), s);
            prop_assert_eq!(p.target(), t);
            prop_assert!(ksp_dg::algo::Path::is_simple(p.vertices()));
            // The stored distance matches the live graph weights.
            let recomputed = p.recompute_distance(&graph).expect("path edges exist");
            prop_assert!(recomputed.approx_eq(p.distance()));
        }
    }
}
