//! Property tests of dirty-set-aware cache survival.
//!
//! The serving layer's result cache lets entries outlive epoch publishes when
//! the publish's dirty set is disjoint from the entry's subgraph trace. That
//! is only sound if a surviving (re-stamped) answer is *bit-identical* to
//! what the engine would compute fresh on the new epoch — for weight
//! increases and decreases alike. The property test drives two identically
//! configured services through identical random update/query interleavings,
//! one with dirty-set retention and one clearing wholesale at every publish
//! (the pre-survival behaviour), and demands byte-equal answers everywhere.
//!
//! A second test pins the invalidation contract at the service level: an
//! entry whose answer the batch touched (its trace intersects the dirty set)
//! is always evicted, never served stale.

use ksp_dg::core::dtlp::DtlpConfig;
use ksp_dg::graph::{SubgraphId, SubgraphSet, UpdateBatch, Weight, WeightUpdate};
use ksp_dg::serve::{CacheKey, QueryService, ResultCache, ServiceConfig};
use ksp_dg::workload::{
    QueryWorkload, QueryWorkloadConfig, RoadNetworkConfig, RoadNetworkGenerator, Xoshiro256,
};
use proptest::prelude::*;

fn network(seed: u64) -> ksp_dg::graph::DynamicGraph {
    let size = 100 + (seed % 100) as usize;
    RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(size))
        .generate(seed)
        .expect("network generation")
        .graph
}

/// A random batch touching `fraction` of the edges, weights jittered both up
/// and down (decreases are the direction that would expose an under-covering
/// trace: they can open new shortcuts).
fn perturb(graph: &ksp_dg::graph::DynamicGraph, seed: u64, fraction: f64) -> UpdateBatch {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let m = graph.num_edges();
    let count = (((m as f64) * fraction) as usize).max(1);
    let updates = rng
        .sample_indices(m, count)
        .into_iter()
        .map(|i| {
            let e = ksp_dg::graph::EdgeId(i as u32);
            let w0 = graph.initial_weight(e) as f64;
            let factor = rng.next_range_f64(0.4, 1.8);
            WeightUpdate::new(e, Weight::new((w0 * factor).max(0.05)))
        })
        .collect();
    UpdateBatch::new(updates)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// For random update/query interleavings, a dirty-set-retained cache
    /// returns bit-identical answers to an always-cleared cache.
    #[test]
    fn retained_cache_matches_always_cleared_cache(
        seed in 0u64..5_000,
        z in 12usize..28,
        rounds in 2usize..5,
        fraction_permille in 10usize..250,
    ) {
        let fraction = fraction_permille as f64 / 1000.0;
        let graph = network(seed);
        let mut config = ServiceConfig::new(2, DtlpConfig::new(z, 2));
        // Stealing is orthogonal here; keep the comparison about the caches.
        config.work_stealing = false;
        let mut baseline_config = config;
        baseline_config.cache_survival = false;

        let retained = QueryService::start(graph.clone(), config).unwrap();
        let cleared = QueryService::start(graph.clone(), baseline_config).unwrap();

        let workload =
            QueryWorkload::generate(&graph, QueryWorkloadConfig::new(8, 3), seed ^ 0x77);
        for round in 0..rounds {
            // Queries twice per round: the repeat is served from cache by the
            // retained service (across publishes, when its trace allows) and
            // recomputed by the cleared one — exactly the divergence the
            // property must rule out.
            for _ in 0..2 {
                for q in workload.iter() {
                    let a = retained.query(q.source, q.target, q.k).unwrap();
                    let b = cleared.query(q.source, q.target, q.k).unwrap();
                    prop_assert_eq!(a.epoch, b.epoch, "services drifted out of epoch lockstep");
                    prop_assert_eq!(
                        a.paths.len(), b.paths.len(),
                        "answer sizes diverged for {:?} at round {}", q, round
                    );
                    for (pa, pb) in a.paths.iter().zip(b.paths.iter()) {
                        prop_assert_eq!(
                            pa.vertices(), pb.vertices(),
                            "routes diverged for {:?} at round {}", q, round
                        );
                        prop_assert_eq!(
                            pa.distance().value().to_bits(),
                            pb.distance().value().to_bits(),
                            "distances diverged for {:?} at round {}", q, round
                        );
                    }
                }
            }
            let batch = perturb(&graph, seed ^ (0xC0FFEE + round as u64), fraction);
            prop_assert_eq!(
                retained.apply_batch(&batch).unwrap(),
                cleared.apply_batch(&batch).unwrap()
            );
        }
        // Retention must actually have happened somewhere across the cases,
        // otherwise this property is vacuous — checked loosely per run since
        // small graphs with large fractions may legitimately evict all.
        let _ = retained.metrics().cache_retained;
    }
}

/// An entry whose trace intersects the publish's dirty set is always evicted —
/// pinned directly on the cache structure, for every overlap shape.
#[test]
fn dirty_intersecting_entry_is_always_evicted() {
    use ksp_dg::algo::Path;
    use ksp_dg::core::kspdg::QueryTrace;
    use ksp_dg::graph::VertexId;

    let paths = vec![Path::new(vec![VertexId(0), VertexId(1)], Weight::new(2.0))];
    for trace_ids in [&[0u32][..], &[3, 5], &[1, 2, 3, 60, 64, 130]] {
        for dirty_ids in [&[0u32][..], &[3], &[64], &[0, 1, 2, 3, 4, 5]] {
            let trace: SubgraphSet = trace_ids.iter().map(|&i| SubgraphId(i)).collect();
            let dirty: SubgraphSet = dirty_ids.iter().map(|&i| SubgraphId(i)).collect();
            let intersects = trace.intersects(&dirty);

            let mut cache = ResultCache::new(8);
            let key = CacheKey { source: VertexId(0), target: VertexId(1), k: 1 };
            cache.insert(key, 0, QueryTrace { subgraphs: trace, complete: true }, paths.clone());
            let outcome = cache.retain_for_publish(0, 1, &dirty);
            if intersects {
                assert_eq!(outcome.evicted, 1, "trace {trace_ids:?} ∩ dirty {dirty_ids:?}");
                assert!(
                    cache.get(&key, 1).is_none(),
                    "dirty entry served after publish (trace {trace_ids:?}, dirty {dirty_ids:?})"
                );
            } else {
                assert_eq!(outcome.retained, 1);
                assert!(cache.get(&key, 1).is_some(), "disjoint entry must survive");
            }
        }
    }
}

/// Sanity anchor for the property: survival does occur (the test above is not
/// passing merely because everything is always evicted). A one-edge batch far
/// from a cached answer must leave the entry servable on the new epoch.
#[test]
fn survival_happens_for_local_updates() {
    let graph = network(42);
    let mut config = ServiceConfig::new(1, DtlpConfig::new(14, 2));
    config.work_stealing = false;
    let service = QueryService::start(graph.clone(), config).unwrap();
    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(12, 2), 9);
    for q in workload.iter() {
        service.query(q.source, q.target, q.k).unwrap();
    }
    // One tiny update: most traces are disjoint from a single subgraph.
    let batch = UpdateBatch::new(vec![WeightUpdate::new(
        ksp_dg::graph::EdgeId(0),
        Weight::new(graph.initial_weight(ksp_dg::graph::EdgeId(0)) as f64 * 1.5),
    )]);
    service.apply_batch(&batch).unwrap();
    let report = service.metrics();
    assert!(
        report.cache_retained > 0,
        "a one-edge publish must let some cached entries survive (evicted {})",
        report.cache_evicted
    );
    // And the survivors actually serve hits on the new epoch.
    let hits_before = report.cache_hits;
    for q in workload.iter() {
        service.query(q.source, q.target, q.k).unwrap();
    }
    assert!(service.metrics().cache_hits > hits_before, "survivors must produce post-publish hits");
}
