//! Chaos acceptance tests: deterministic fault injection (`ksp-fault`)
//! against the full stack.
//!
//! The headline property: a service that survives twenty consecutive
//! injected-fault / crash / recover cycles — live append faults (write
//! errors, `ENOSPC`, short writes) plus post-crash tail damage (torn tails,
//! bit flips) — ends **byte-identical** to a fault-free in-memory control
//! fed the same batches, and the fault schedule itself is reproducible:
//! the same seed yields the same injection log, fingerprint-asserted.
//! Plus the network arm: a follower replicating through a fault-injecting
//! transport (dropped replies, duplicate delivery, a severed link) still
//! converges to byte identity with its leader. Plus the checkpoint arm: a
//! failed background image is quarantined for post-mortem and retried until
//! it commits, without ever blocking the write path.

use ksp_dg::core::dtlp::DtlpConfig;
use ksp_dg::fault::{FaultAction, FaultPlan, FaultPoint, Schedule};
use ksp_dg::graph::{DynamicGraph, UpdateBatch, VertexId};
use ksp_dg::repl::{Replica, ReplicaConfig, ReplicationSource};
use ksp_dg::serve::{PublishError, QueryService, ServiceConfig, TcpServer};
use ksp_dg::store::{apply_crash_damage, FaultyIo, StorageIo, StoreCodec, StoreConfig, SyncPolicy};
use ksp_dg::workload::{RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig, TrafficModel};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ksp-dg-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn road_network(n: usize, seed: u64) -> DynamicGraph {
    RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(n)).generate(seed).unwrap().graph
}

/// Applies `batch`, riding out read-only degraded mode: a faulted append
/// flips the service degraded, the background probe repairs the log within
/// milliseconds, and the retry then lands. Anything other than `Degraded`
/// is a real failure.
fn apply_riding_out_degradation(service: &QueryService, batch: &UpdateBatch) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match service.apply_batch(batch) {
            Ok(epoch) => return epoch,
            Err(PublishError::Degraded(reason)) => {
                assert!(
                    Instant::now() < deadline,
                    "probe did not lift degradation in time: {reason}"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("append failed outside the degraded contract: {e}"),
        }
    }
}

/// The newest WAL segment file in `dir` (highest start epoch), with its
/// length — the file a simulated crash damages.
fn newest_segment(dir: &Path) -> Option<(PathBuf, u64)> {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segments.sort();
    let path = segments.pop()?;
    let len = std::fs::metadata(&path).unwrap().len();
    Some((path, len))
}

const CYCLES: usize = 20;
const BATCHES_PER_CYCLE: usize = 2;

/// What one full chaos run produced, for cross-run equality assertions.
struct ChaosOutcome {
    fingerprint: u64,
    injected: u64,
    /// The epoch each cycle's recovery came back at (regressions mark
    /// cycles whose tail damage tore off a committed record).
    recovered_epochs: Vec<u64>,
    graph_bytes: Vec<u8>,
    index_bytes: Vec<u8>,
}

/// Runs `CYCLES` injected-fault / crash / recover cycles over `batches`:
/// every cycle arms one live append fault (chosen deterministically from the
/// plan's seeded generator), applies its batches riding out degradation,
/// "crashes" (drops the service), and on odd cycles damages the newest
/// segment's tail before recovery. Records torn off by damage are re-applied
/// after recovery, exactly as an upstream feed replaying unacknowledged
/// batches would.
fn chaos_run(seed: u64, tag: &str, graph: &DynamicGraph, batches: &[UpdateBatch]) -> ChaosOutcome {
    assert_eq!(batches.len(), CYCLES * BATCHES_PER_CYCLE);
    let dir = temp_dir(tag);
    let plan = FaultPlan::new(seed);
    let io: Arc<dyn StorageIo> = Arc::new(FaultyIo::new(plan.clone()));
    let sconfig = ServiceConfig::new(2, DtlpConfig::new(20, 2));
    let st =
        StoreConfig { checkpoint_interval: 0, sync: SyncPolicy::Never, ..StoreConfig::default() };

    let mut recovered_epochs = Vec::with_capacity(CYCLES);
    let mut applied = 0usize; // batches the service has acknowledged so far
    for cycle in 0..CYCLES {
        let service = if cycle == 0 {
            QueryService::start_with_store_io(graph.clone(), sconfig, &dir, st, io.clone()).unwrap()
        } else {
            QueryService::open_with_io(&dir, sconfig, st, io.clone()).unwrap().0
        };
        let at = service.snapshot().epoch() as usize;
        assert!(at <= applied, "recovery must never invent epochs");
        assert!(
            applied - at <= 1,
            "tail damage is bounded to the final record, yet {} epochs vanished",
            applied - at
        );
        recovered_epochs.push(at as u64);
        // Re-feed whatever the crash tore off, then this cycle's fresh load.
        for batch in &batches[at..applied] {
            apply_riding_out_degradation(&service, batch);
        }
        // One live fault per cycle, aimed at the very next WAL write. Action
        // choice comes from the plan's own seeded generator so the whole
        // schedule is a pure function of the seed. (Only `WalWrite` is armed:
        // the repair probe fsyncs on its own timing-dependent cadence, so
        // arming the fsync point would make op counts — and thus `Nth`
        // firings — racy. The fsync point gets its coverage in
        // `tests/degraded.rs`, which asserts behaviour, not fingerprints.)
        let action = match plan.draw() % 3 {
            0 => FaultAction::Fail,
            1 => FaultAction::Enospc,
            _ => FaultAction::ShortWrite { keep: (plan.draw() % 8) as usize },
        };
        plan.arm(
            FaultPoint::WalWrite,
            Schedule::Nth(plan.ops_at(FaultPoint::WalWrite) + 1),
            action,
        );
        for batch in &batches[applied..applied + BATCHES_PER_CYCLE] {
            apply_riding_out_degradation(&service, batch);
        }
        applied += BATCHES_PER_CYCLE;
        assert_eq!(service.snapshot().epoch() as usize, applied);
        assert!(!service.is_degraded(), "every cycle must end repaired");
        // Crash: kill the service, then (on odd cycles) tear the log's tail
        // the way a power cut mid-append would.
        drop(service);
        if cycle % 2 == 1 {
            let (segment, len) = newest_segment(&dir).expect("a WAL segment must exist");
            if len > 16 {
                let damage = if plan.draw().is_multiple_of(2) {
                    FaultAction::TornTail { bytes: 1 + (plan.draw() % 4) as usize }
                } else {
                    FaultAction::BitFlip { offset: (plan.draw() % 4) as usize }
                };
                apply_crash_damage(&segment, damage).unwrap();
            }
        }
    }

    // Final recovery, then read the terminal state.
    let (service, _report) = QueryService::open_with_io(&dir, sconfig, st, io).unwrap();
    let at = service.snapshot().epoch() as usize;
    for batch in &batches[at..applied] {
        apply_riding_out_degradation(&service, batch);
    }
    let snapshot = service.snapshot();
    let outcome = ChaosOutcome {
        fingerprint: plan.fingerprint(),
        injected: plan.injected_total(),
        recovered_epochs,
        graph_bytes: snapshot.graph().to_bytes(),
        index_bytes: snapshot.index().to_bytes(),
    };
    drop(snapshot);
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
    outcome
}

#[test]
fn twenty_fault_recover_cycles_stay_byte_identical_to_control() {
    let graph = road_network(200, 61);
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.5, 0.5), 17);
    let batches: Vec<UpdateBatch> =
        (0..CYCLES * BATCHES_PER_CYCLE).map(|_| traffic.next_snapshot()).collect();

    // Fault-free control: a purely in-memory service fed the same batches.
    let sconfig = ServiceConfig::new(2, DtlpConfig::new(20, 2));
    let control = QueryService::start(graph.clone(), sconfig).unwrap();
    for batch in &batches {
        control.apply_batch(batch).unwrap();
    }

    let chaos = chaos_run(4242, "run-a", &graph, &batches);
    assert!(
        chaos.injected >= CYCLES as u64,
        "one armed fault per cycle must fire, got {}",
        chaos.injected
    );
    assert!(
        chaos.recovered_epochs.iter().enumerate().any(|(i, &e)| e < (i * BATCHES_PER_CYCLE) as u64),
        "tail damage must have cost at least one recovery a record"
    );

    // Byte identity with the control, at state level...
    let want = control.snapshot();
    assert_eq!(want.epoch() as usize, CYCLES * BATCHES_PER_CYCLE);
    assert_eq!(chaos.graph_bytes, want.graph().to_bytes(), "graph must match the control's");
    assert_eq!(chaos.index_bytes, want.index().to_bytes(), "index must match the control's");

    // ...and the schedule itself is reproducible: same seed, same injection
    // log, same recovery trajectory, same bytes.
    let again = chaos_run(4242, "run-b", &graph, &batches);
    assert_eq!(again.fingerprint, chaos.fingerprint, "same seed must give the same schedule");
    assert_eq!(again.injected, chaos.injected);
    assert_eq!(again.recovered_epochs, chaos.recovered_epochs);
    assert_eq!(again.graph_bytes, chaos.graph_bytes);
    assert_eq!(again.index_bytes, chaos.index_bytes);
}

#[test]
fn follower_converges_to_byte_identity_through_a_faulty_link() {
    let leader_dir = temp_dir("net-leader");
    let replica_root = temp_dir("net-replica");
    let graph = road_network(180, 37);
    let sconfig = ServiceConfig::new(2, DtlpConfig::new(18, 2));
    let st =
        StoreConfig { checkpoint_interval: 0, sync: SyncPolicy::Never, ..StoreConfig::default() };
    let leader =
        Arc::new(QueryService::start_with_store(graph.clone(), sconfig, &leader_dir, st).unwrap());
    let _source = ReplicationSource::attach(&leader).unwrap();
    let server = TcpServer::bind(leader.clone(), "127.0.0.1:0").unwrap();
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.5, 0.5), 53);

    // The replica's every leader connection is wrapped in a FaultTransport
    // drawing from this plan; the test keeps its own handle (clones share
    // one schedule).
    let plan = FaultPlan::new(99);
    let mut rconfig = ReplicaConfig::new("chaos", sconfig, st);
    rconfig.fault_plan = Some(plan.clone());
    rconfig.poll_interval = Duration::from_millis(5);
    rconfig.backoff_base = Duration::from_millis(2);
    rconfig.backoff_cap = Duration::from_millis(20);
    for _ in 0..2 {
        leader.apply_batch(&traffic.next_snapshot()).unwrap();
    }
    // Arm only after a clean bootstrap: the faults target steady-state
    // shipping and the reconnect path, not the initial seeding.
    let mut replica = Replica::bootstrap(server.local_addr(), &replica_root, rconfig).unwrap();
    plan.arm(FaultPoint::NetRecv, Schedule::Every(4), FaultAction::DropReply)
        .arm(FaultPoint::NetRecv, Schedule::Nth(11), FaultAction::DuplicateReply)
        .arm(FaultPoint::NetRecv, Schedule::Every(9), FaultAction::DelayMs { ms: 3 })
        .arm(FaultPoint::NetSend, Schedule::Nth(13), FaultAction::Sever);

    replica.run().unwrap();
    const EPOCHS: u64 = 24;
    for _ in 2..EPOCHS {
        leader.apply_batch(&traffic.next_snapshot()).unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    while replica.applied_epoch() < EPOCHS {
        assert!(
            Instant::now() < deadline,
            "follower stuck at epoch {} of {EPOCHS} (injected {})",
            replica.applied_epoch(),
            plan.injected_total()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    replica.promote(); // stops the pull loop; state is untouched

    assert!(
        plan.injected_total() >= 5,
        "the link must actually have been faulty, injected only {}",
        plan.injected_total()
    );
    assert!(plan.injected_at(FaultPoint::NetRecv) >= 4);
    let a = leader.snapshot();
    let b = replica.service().snapshot();
    assert_eq!(a.epoch(), b.epoch());
    assert_eq!(a.graph().to_bytes(), b.graph().to_bytes(), "graphs must be byte-identical");
    assert_eq!(a.index().to_bytes(), b.index().to_bytes(), "indexes must be byte-identical");
    let last = VertexId(graph.num_vertices() as u32 - 1);
    let want = leader.query(VertexId(0), last, 3).unwrap();
    let got = replica.query(VertexId(0), last, 3).unwrap();
    assert_eq!(got.paths.len(), want.paths.len());
    for (x, y) in got.paths.iter().zip(want.paths.iter()) {
        assert_eq!(x.vertices(), y.vertices());
        assert_eq!(x.distance().value().to_bits(), y.distance().value().to_bits());
    }

    let _ = std::fs::remove_dir_all(&leader_dir);
    let _ = std::fs::remove_dir_all(&replica_root);
}

#[test]
fn failed_background_checkpoint_is_quarantined_and_retried() {
    let dir = temp_dir("ckpt");
    let graph = road_network(160, 43);
    let sconfig = ServiceConfig::new(2, DtlpConfig::new(16, 2));
    // Background images every 2 epochs, full images only (so the committed
    // artefact is a `checkpoint-*.ckpt` we can watch for).
    let st = StoreConfig {
        checkpoint_interval: 2,
        full_rebase_interval: 0,
        sync: SyncPolicy::Never,
        ..StoreConfig::default()
    };
    let plan = FaultPlan::new(7);
    let io: Arc<dyn StorageIo> = Arc::new(FaultyIo::new(plan.clone()));
    let service = QueryService::start_with_store_io(graph.clone(), sconfig, &dir, st, io).unwrap();
    // Arm only now: store creation already wrote the initial image through
    // the same backend, and that one must succeed.
    plan.arm(
        FaultPoint::CheckpointWrite,
        Schedule::Nth(plan.ops_at(FaultPoint::CheckpointWrite) + 1),
        FaultAction::Fail,
    );

    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.5, 0.5), 29);
    for _ in 0..2 {
        service.apply_batch(&traffic.next_snapshot()).unwrap();
    }

    // The checkpointer's first image write fails: the bytes land in
    // quarantine for post-mortem, the job is carried, and the retry (10 ms
    // backoff, fault spent) commits the epoch-2 image.
    let quarantine = dir.join("quarantine");
    let committed = dir.join("checkpoint-00000000000000000002.ckpt");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let quarantined = std::fs::read_dir(&quarantine)
            .map(|d| {
                d.filter_map(|e| e.ok()).any(|e| e.file_name().to_string_lossy().ends_with(".bad"))
            })
            .unwrap_or(false);
        if quarantined && committed.is_file() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "quarantine present: {quarantined}, committed present: {}, injected: {}",
            committed.is_file(),
            plan.injected_total()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(plan.injected_at(FaultPoint::CheckpointWrite), 1);
    // The write path never noticed: the service is healthy and still
    // accepting batches.
    assert!(!service.is_degraded());
    assert_eq!(service.apply_batch(&traffic.next_snapshot()).unwrap(), 3);
    drop(service);

    // The quarantined bytes are a decodable image (post-mortem value), and
    // recovery sees only the committed one: it comes back at epoch 3.
    let (recovered, _report) = QueryService::open(&dir, sconfig, st).unwrap();
    assert_eq!(recovered.snapshot().epoch(), 3);
    drop(recovered);

    let _ = std::fs::remove_dir_all(&dir);
}
