//! Crash-recovery acceptance tests for the storage subsystem.
//!
//! The headline property: build graph + index, checkpoint, apply batches
//! (each logged), kill the service, `Store::recover` — and every
//! `(source, target, k)` answer equals, *byte for byte*, the answer a
//! never-persisted service gives at the same epoch. Plus the torn-write
//! property: truncating the log mid-record costs exactly the unacknowledged
//! tail, nothing more.

use ksp_dg::core::dtlp::DtlpConfig;
use ksp_dg::graph::{DynamicGraph, UpdateBatch, VertexId};
use ksp_dg::serve::{QueryService, ServiceConfig};
use ksp_dg::store::{Store, StoreConfig, SyncPolicy};
use ksp_dg::workload::{
    QueryWorkload, QueryWorkloadConfig, RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig,
    TrafficModel,
};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ksp-dg-persistence-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn road_network(n: usize, seed: u64) -> DynamicGraph {
    RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(n)).generate(seed).unwrap().graph
}

fn store_config(checkpoint_interval: u64) -> StoreConfig {
    // fsync off: these tests measure correctness, not disk latency.
    StoreConfig { checkpoint_interval, sync: SyncPolicy::Never, ..StoreConfig::default() }
}

/// The acceptance criterion: recovered answers are byte-identical to a
/// never-persisted service's answers at the same epoch.
#[test]
fn recovered_service_answers_byte_identically_to_a_never_persisted_one() {
    let dir = temp_dir("byte-identical");
    let graph = road_network(220, 77);
    let config = ServiceConfig::new(2, DtlpConfig::new(20, 2));

    // Reference: a purely in-memory service.
    let reference = QueryService::start(graph.clone(), config).unwrap();
    // Subject: a persistent service with a mid-run checkpoint (interval 2).
    let persistent =
        QueryService::start_with_store(graph.clone(), config, &dir, store_config(2)).unwrap();

    let mut traffic_a = TrafficModel::new(&graph, TrafficConfig::new(0.5, 0.5), 13);
    let mut traffic_b = TrafficModel::new(&graph, TrafficConfig::new(0.5, 0.5), 13);
    let batches: Vec<UpdateBatch> = (0..3).map(|_| traffic_a.next_snapshot()).collect();
    for batch in &batches {
        assert_eq!(batch, &traffic_b.next_snapshot(), "traffic model must be deterministic");
        reference.apply_batch(batch).unwrap();
        persistent.apply_batch(batch).unwrap();
    }
    drop(persistent); // kill: recovery may use only what is on disk

    let (recovered, report) = QueryService::open(&dir, config, store_config(2)).unwrap();
    assert_eq!(recovered.current_epoch(), reference.current_epoch());
    // The background checkpointer imaged epoch 2 — as an incremental image
    // under the default rebase policy — so recovery is checkpoint(0) + one
    // partial image (epochs 1-2) + one replayed batch (epoch 3).
    assert!(
        report.partial_images_applied > 0,
        "the interval-2 checkpoint must be an incremental image (got {report:?})"
    );
    assert_eq!(
        report.batches_replayed, 1,
        "the image chain must cover every epoch before the last (got {report:?})"
    );

    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(25, 3), 7);
    for q in workload.iter() {
        let want = reference.query(q.source, q.target, q.k).unwrap();
        let got = recovered.query(q.source, q.target, q.k).unwrap();
        assert_eq!(got.epoch, want.epoch);
        assert_eq!(got.paths.len(), want.paths.len(), "{} -> {} k={}", q.source, q.target, q.k);
        for (a, b) in got.paths.iter().zip(want.paths.iter()) {
            assert_eq!(a.vertices(), b.vertices());
            assert_eq!(
                a.distance().value().to_bits(),
                b.distance().value().to_bits(),
                "distance must round-trip bit-exactly for {} -> {}",
                q.source,
                q.target
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Torn-write recovery: truncating the delta log mid-record drops exactly the
/// torn tail, and the store recovers to the last acknowledged epoch before it.
#[test]
fn torn_log_write_loses_only_the_tail() {
    let dir = temp_dir("torn-tail");
    let mut graph = road_network(150, 31);
    let index = ksp_dg::core::dtlp::DtlpIndex::build(&graph, DtlpConfig::new(16, 2)).unwrap();
    let mut live_index = index.clone();
    let mut store = Store::create(&dir, store_config(0), 0, &graph, &index).unwrap();

    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.5, 0.5), 5);
    let mut epoch2_state: Option<(Vec<u8>, Vec<u8>)> = None;
    for _ in 0..3 {
        let batch = traffic.next_snapshot();
        let epoch = graph.apply_batch(&batch).unwrap();
        live_index.apply_batch(&batch).unwrap();
        store.log_batch(epoch, &batch).unwrap();
        if epoch == 2 {
            use ksp_dg::store::StoreCodec;
            epoch2_state = Some((graph.to_bytes(), live_index.to_bytes()));
        }
    }
    drop(store);

    // Tear the last record: chop bytes off the newest segment so the final
    // (epoch 3) record is incomplete.
    let segment = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "log"))
        .max()
        .expect("a log segment exists");
    let len = std::fs::metadata(&segment).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(&segment).unwrap();
    file.set_len(len - 5).unwrap();
    drop(file);

    // Verify reports the damage but still calls the store recoverable.
    let verify = Store::verify(&dir).unwrap();
    assert!(verify.recoverable);
    assert!(verify.torn_bytes > 0);
    assert_eq!(verify.intact_records, 2);

    let (_store, recovered) = Store::recover(&dir, store_config(0)).unwrap();
    assert_eq!(recovered.epoch, 2, "recovery drops only the torn epoch-3 tail");
    assert!(recovered.report.torn_bytes_dropped > 0);
    let (graph_bytes, index_bytes) = epoch2_state.unwrap();
    use ksp_dg::store::StoreCodec;
    assert_eq!(recovered.graph.to_bytes(), graph_bytes);
    assert_eq!(recovered.index.to_bytes(), index_bytes);

    // The truncated store accepts new epochs where the torn one used to be.
    let mut store = _store;
    let batch = traffic.next_snapshot();
    let mut graph = recovered.graph;
    let epoch = graph.apply_batch(&batch).unwrap();
    assert_eq!(epoch, 3);
    store.log_batch(epoch, &batch).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// An incremental-image *chain* (full checkpoint + several partial images,
/// then a full rebase) recovers byte-identically at every stage. This is the
/// acceptance test for the incremental checkpoint format.
#[test]
fn incremental_checkpoint_chain_recovers_byte_identically() {
    use ksp_dg::store::StoreCodec;
    let dir = temp_dir("chain");
    let graph = road_network(180, 91);
    let config = ServiceConfig::new(1, DtlpConfig::new(18, 2));
    // Checkpoint every epoch; rebase to a full image after 3 partials.
    let store_config = StoreConfig {
        checkpoint_interval: 1,
        full_rebase_interval: 3,
        sync: SyncPolicy::Never,
        ..StoreConfig::default()
    };

    let reference = QueryService::start(graph.clone(), config).unwrap();
    let mut traffic_a = TrafficModel::new(&graph, TrafficConfig::new(0.5, 0.5), 29);
    let mut traffic_b = TrafficModel::new(&graph, TrafficConfig::new(0.5, 0.5), 29);
    {
        let persistent =
            QueryService::start_with_store(graph.clone(), config, &dir, store_config).unwrap();
        // 5 epochs, each checkpointed: full(0) <- P1 <- P2 <- P3 <- full(4) <- P5.
        for _ in 0..5 {
            let batch = traffic_a.next_snapshot();
            reference.apply_batch(&batch).unwrap();
            persistent.apply_batch(&batch).unwrap();
        }
    }
    // Recover, compare answers bit-for-bit, publish one more epoch, crash
    // again, recover again: the chain keeps extending across lives.
    for life in 0..2u64 {
        let (recovered, _report) = QueryService::open(&dir, config, store_config).unwrap();
        assert_eq!(recovered.current_epoch(), reference.current_epoch());
        let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(15, 2), 3 + life);
        for q in workload.iter() {
            let want = reference.query(q.source, q.target, q.k).unwrap();
            let got = recovered.query(q.source, q.target, q.k).unwrap();
            assert_eq!(got.paths.len(), want.paths.len());
            for (a, b) in got.paths.iter().zip(want.paths.iter()) {
                assert_eq!(a.vertices(), b.vertices());
                assert_eq!(a.distance().value().to_bits(), b.distance().value().to_bits());
            }
        }
        let batch = traffic_a.next_snapshot();
        reference.apply_batch(&batch).unwrap();
        recovered.apply_batch(&batch).unwrap();
    }
    // Sanity: both traffic models were driven identically.
    for _ in 0..7 {
        traffic_b.next_snapshot();
    }
    assert_eq!(traffic_a.next_snapshot(), traffic_b.next_snapshot());

    // The final recovered state equals the reference masters byte-for-byte.
    let (final_service, _) = QueryService::open(&dir, config, store_config).unwrap();
    let snapshot = final_service.snapshot();
    let reference_snapshot = reference.snapshot();
    assert_eq!(snapshot.graph().to_bytes(), reference_snapshot.graph().to_bytes());
    assert_eq!(snapshot.index().to_bytes(), reference_snapshot.index().to_bytes());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression test: epochs replayed from the log during recovery are not
/// covered by any on-disk image, so the *next* incremental image after a
/// restart must include their dirty subgraphs. A resumed checkpointer that
/// forgot them would commit a chain that silently drops those updates at the
/// following recovery.
#[test]
fn post_restart_incremental_image_covers_log_replayed_epochs() {
    use ksp_dg::graph::{UpdateBatch, Weight, WeightUpdate};
    let dir = temp_dir("replay-dirty");
    let graph = road_network(200, 57);
    let config = ServiceConfig::new(1, DtlpConfig::new(16, 2));
    let store_config = StoreConfig {
        checkpoint_interval: 2,
        full_rebase_interval: 10,
        sync: SyncPolicy::Never,
        ..StoreConfig::default()
    };

    // Three edges owned by three different subgraphs, so each single-edge
    // batch dirties a different subgraph.
    let index = ksp_dg::core::dtlp::DtlpIndex::build(&graph, DtlpConfig::new(16, 2)).unwrap();
    let mut picked = Vec::new();
    let mut seen_owners = Vec::new();
    for e in graph.edge_ids() {
        let owner = index.owner_of_edge(e);
        if !seen_owners.contains(&owner) {
            seen_owners.push(owner);
            picked.push(e);
            if picked.len() == 4 {
                break;
            }
        }
    }
    assert_eq!(picked.len(), 4, "need four edges in distinct subgraphs");
    let batch_for = |i: usize| {
        UpdateBatch::new(vec![WeightUpdate::new(picked[i], Weight::new(5.5 + i as f64))])
    };

    let reference = QueryService::start(graph.clone(), config).unwrap();
    {
        // Life 1: epochs 1 and 2 (incremental image at 2 covers them), then
        // epoch 3 — durable in the log only — and crash.
        let service =
            QueryService::start_with_store(graph.clone(), config, &dir, store_config).unwrap();
        for i in 0..3 {
            reference.apply_batch(&batch_for(i)).unwrap();
            service.apply_batch(&batch_for(i)).unwrap();
        }
    }
    {
        // Life 2: recovery replays epoch 3 (dirtying a subgraph no image
        // covers), then epoch 4 triggers the next incremental image, whose
        // base is the epoch-2 image: it must carry epoch 3's subgraph too.
        let (service, report) = QueryService::open(&dir, config, store_config).unwrap();
        assert_eq!(report.batches_replayed, 1);
        reference.apply_batch(&batch_for(3)).unwrap();
        service.apply_batch(&batch_for(3)).unwrap();
    }
    // Life 3: if the epoch-4 image under-covered, this recovery silently
    // resurrects the pre-epoch-3 weight; byte equality catches it.
    let (final_service, report) = QueryService::open(&dir, config, store_config).unwrap();
    assert_eq!(report.batches_replayed, 0, "the epoch-4 image must cover epochs 3 and 4");
    assert_eq!(final_service.current_epoch(), 4);
    use ksp_dg::store::StoreCodec;
    let got = final_service.snapshot();
    let want = reference.snapshot();
    assert_eq!(got.graph().to_bytes(), want.graph().to_bytes());
    assert_eq!(got.index().to_bytes(), want.index().to_bytes());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A recovered service keeps serving correct (Yen-verified) answers and the
/// epoch sequence stays monotone across multiple restarts.
#[test]
fn multiple_restarts_preserve_correctness() {
    let dir = temp_dir("restarts");
    let graph = road_network(140, 3);
    let config = ServiceConfig::new(1, DtlpConfig::new(15, 2));
    let mut live = graph.clone();
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.4, 0.6), 11);

    {
        let service =
            QueryService::start_with_store(graph.clone(), config, &dir, store_config(2)).unwrap();
        let batch = traffic.next_snapshot();
        live.apply_batch(&batch).unwrap();
        assert_eq!(service.apply_batch(&batch).unwrap(), 1);
    }
    for round in 0..2 {
        let (service, _) = QueryService::open(&dir, config, store_config(2)).unwrap();
        let batch = traffic.next_snapshot();
        live.apply_batch(&batch).unwrap();
        let epoch = service.apply_batch(&batch).unwrap();
        assert_eq!(epoch, 2 + round);

        let q = service.query(VertexId(5), VertexId(100), 2).unwrap();
        let want = ksp_dg::algo::yen_ksp(&live, VertexId(5), VertexId(100), 2);
        assert_eq!(q.paths.len(), want.len());
        for (a, b) in q.paths.iter().zip(want.iter()) {
            assert!(a.distance().approx_eq(b.distance()));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
