//! Integration tests for the observability subsystem, end to end: a
//! `QueryService` behind a loopback `TcpServer`, scraped through `KspClient`.
//!
//! Three contracts are proven here:
//!
//! 1. **Exact decomposition over the wire** — an `ObsSnapshot` fetched over
//!    TCP splits every served request into the seven pipeline stages, and the
//!    stage totals sum *exactly* to the end-to-end total (the span stamps
//!    telescope, so nothing is double-counted or lost).
//! 2. **Anomaly dumps travel** — an SLO breach dumps the offending span
//!    chain plus the flight ring, and a later scrape carries the whole dump
//!    across the socket, validated back into typed form.
//! 3. **Bounded memory** — the flight ring never holds more than its
//!    capacity no matter how many events storm through it, from one thread
//!    (property test) or many (concurrent storm with live readers).

use ksp_dg::core::dtlp::DtlpConfig;
use ksp_dg::obs::{EventKind, FlightRecorder, Stage};
use ksp_dg::proto::KspClient;
use ksp_dg::serve::{QueryService, ServiceConfig, TcpServer};
use ksp_dg::workload::{
    QueryWorkload, QueryWorkloadConfig, RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig,
    TrafficModel,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn start_server(
    n: usize,
    config: ServiceConfig,
    seed: u64,
) -> (TcpServer, Arc<QueryService>, ksp_dg::graph::DynamicGraph) {
    let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(n))
        .generate(seed)
        .unwrap()
        .graph;
    let service = Arc::new(QueryService::start(graph.clone(), config).unwrap());
    let server = TcpServer::bind(service.clone(), "127.0.0.1:0").unwrap();
    (server, service, graph)
}

#[test]
fn tcp_queries_decompose_into_stages_that_sum_to_end_to_end() {
    let (server, _service, graph) =
        start_server(200, ServiceConfig::new(2, DtlpConfig::new(16, 2)), 0x0B51);
    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(10, 3), 11);
    let (mut client, _) = KspClient::connect(server.local_addr()).unwrap();

    // Publish one epoch, then run the workload twice: the second pass is
    // served (at least partly) from the result cache, so both the hit and
    // the miss paths contribute span chains.
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 5);
    client.apply_batch(&traffic.next_snapshot()).unwrap();
    for _ in 0..2 {
        for q in workload.iter() {
            client.query(q.source, q.target, q.k).unwrap();
        }
    }

    let snap = client.obs_snapshot().unwrap();
    let completed = snap.counter("ksp_requests_completed_total");
    assert_eq!(completed, 2 * workload.len() as u64);
    assert_eq!(snap.end_to_end.count, completed);

    // The telescoping contract: per-stage totals sum exactly to the
    // end-to-end total — the decomposition is an attribution, not a sample.
    let stage_total: u64 =
        Stage::ALL.iter().filter_map(|&s| snap.stage(s)).map(|h| h.total_micros).sum();
    assert_eq!(stage_total, snap.end_to_end.total_micros);

    // Every request passes through every stage exactly once, except the
    // queue/steal pair, which are mutually exclusive per request.
    for stage in [Stage::Admission, Stage::Cache, Stage::Engine, Stage::Reply] {
        assert_eq!(snap.stage(stage).unwrap().count, completed, "{}", stage.name());
    }
    let queued = snap.stage(Stage::Queue).unwrap().count;
    let stolen = snap.stage(Stage::Steal).unwrap().count;
    assert_eq!(queued + stolen, completed);

    // The cache counters agree with the stage view, and both hit and miss
    // paths were exercised.
    let hits = snap.counter("ksp_cache_hits_total");
    let misses = snap.counter("ksp_cache_misses_total");
    assert_eq!(hits + misses, completed);
    assert!(hits > 0, "second pass must produce cache hits");
    assert!(misses > 0, "first pass must produce cache misses");
    assert_eq!(snap.counter("ksp_epochs_published_total"), 1);

    // The client-side scrape renders every family a monitoring stack would
    // chart, including one series per stage.
    let text = client.scrape_text().unwrap();
    assert!(text.contains("# TYPE ksp_stage_duration_seconds histogram"));
    assert!(text.contains("# TYPE ksp_request_duration_seconds histogram"));
    for stage in Stage::ALL {
        assert!(text.contains(&format!("stage=\"{}\"", stage.name())), "{}", stage.name());
    }
    assert!(text.contains(&format!("ksp_requests_completed_total {completed}")));
}

#[test]
fn slo_breach_dump_carries_the_span_chain_over_the_wire() {
    // An unmeetable SLO: the very first request breaches it and dumps.
    let mut config = ServiceConfig::new(2, DtlpConfig::new(16, 2));
    config.observability.slo_p99 = Duration::from_nanos(1);
    let (server, _service, graph) = start_server(160, config, 0x0B52);
    let (mut client, _) = KspClient::connect(server.local_addr()).unwrap();
    let last = ksp_dg::graph::VertexId(graph.num_vertices() as u32 - 1);
    client.query(ksp_dg::graph::VertexId(0), last, 2).unwrap();

    let snap = client.obs_snapshot().unwrap();
    assert!(snap.counter("ksp_flight_dumps_total") >= 1);
    let dump = snap.dump.expect("the breach must dump, and the dump must travel the wire");
    assert_eq!(dump.cause.kind, EventKind::SloBreach);
    // The dump carries the full per-stage chain of the offending request,
    // and its stamps account for the reported end-to-end latency exactly.
    let chain = dump.span.expect("an SLO dump carries the offending span chain");
    assert_eq!(chain.micros.len(), Stage::COUNT);
    assert_eq!(chain.total_micros(), dump.cause.a);
    // The ring snapshot inside the dump includes the breach event itself.
    assert!(dump.events.iter().any(|e| e.kind == EventKind::SloBreach));
}

#[test]
fn epoch_age_gauge_travels_the_wire_and_resets_on_publish() {
    let (server, _service, graph) =
        start_server(160, ServiceConfig::new(2, DtlpConfig::new(16, 2)), 0x0B53);
    let (mut client, _) = KspClient::connect(server.local_addr()).unwrap();

    std::thread::sleep(Duration::from_millis(80));
    let aged = client.metrics().unwrap().epoch_age_ms;
    assert!(aged >= 50, "epoch age must accumulate while nothing publishes (got {aged} ms)");

    let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 9);
    client.apply_batch(&traffic.next_snapshot()).unwrap();
    let fresh = client.metrics().unwrap().epoch_age_ms;
    assert!(fresh < aged, "a publish must reset the age ({fresh} ms !< {aged} ms)");

    // The same freshness signal, as a gauge in the observability snapshot.
    let snap = client.obs_snapshot().unwrap();
    let gauge = snap.gauge("ksp_epoch_age_seconds").expect("epoch age gauge");
    assert!(gauge < aged as f64 / 1e3);
}

/// Splits one exposition sample line into `(metric name, labels, value)`,
/// panicking with the offending line on any malformation.
fn parse_sample(line: &str) -> (String, Vec<(String, String)>, f64) {
    let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("no value: {line}"));
    let value: f64 = value.parse().unwrap_or_else(|_| panic!("bad value: {line}"));
    let (name, labels) = match series.split_once('{') {
        None => (series.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}').unwrap_or_else(|| panic!("unclosed braces: {line}"));
            let labels = body
                .split(',')
                .map(|pair| {
                    let (k, v) =
                        pair.split_once('=').unwrap_or_else(|| panic!("bad label: {line}"));
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .unwrap_or_else(|| panic!("unquoted label value: {line}"));
                    (k.to_string(), v.to_string())
                })
                .collect();
            (name.to_string(), labels)
        }
    };
    let valid = |c: char| c.is_ascii_alphanumeric() || c == '_' || c == ':';
    assert!(!name.is_empty() && name.chars().all(valid), "bad metric name: {line}");
    (name, labels, value)
}

/// The scrape output must be parseable by a real Prometheus server: every
/// line is either a `# TYPE` comment or a well-formed sample, every family's
/// type is declared exactly once and *before* its first sample, histogram
/// buckets are cumulative-monotone with the `+Inf` bucket equal to `_count`,
/// and every histogram series carries its `_sum` and `_count`.
#[test]
fn scrape_text_is_well_formed_prometheus_exposition() {
    use std::collections::HashMap;

    let (server, _service, graph) =
        start_server(180, ServiceConfig::new(2, DtlpConfig::new(16, 2)), 0x0B54);
    let (mut client, _) = KspClient::connect(server.local_addr()).unwrap();
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 3);
    client.apply_batch(&traffic.next_snapshot()).unwrap();
    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(8, 2), 5);
    for q in workload.iter() {
        client.query(q.source, q.target, q.k).unwrap();
    }
    let text = client.scrape_text().unwrap();

    let mut types: HashMap<String, String> = HashMap::new();
    let mut sampled: HashMap<String, bool> = HashMap::new();
    // (family, non-le labels) -> cumulative bucket counts in emission order,
    // the +Inf count, and the _count sample, checked against each other after
    // the parse.
    #[derive(Default)]
    struct Series {
        cumulative: Vec<f64>,
        inf: Option<f64>,
        count: Option<f64>,
        sum: bool,
    }
    let mut series: HashMap<(String, String), Series> = HashMap::new();

    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let family = parts.next().expect("family name").to_string();
            let kind = parts.next().unwrap_or_else(|| panic!("no kind: {line}"));
            assert!(parts.next().is_none(), "trailing tokens: {line}");
            assert!(matches!(kind, "counter" | "gauge" | "histogram"), "unknown kind: {line}");
            assert!(!sampled.contains_key(&family), "# TYPE for {family} after its first sample");
            let previous = types.insert(family.clone(), kind.to_string());
            assert!(previous.is_none(), "duplicate # TYPE for {family}");
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment: {line}");
        let (name, labels, value) = parse_sample(line);

        // Resolve the owning family: histogram samples carry a suffix.
        let (family, suffix) = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| {
                let stem = name.strip_suffix(s)?;
                (types.get(stem).map(String::as_str) == Some("histogram"))
                    .then(|| (stem.to_string(), *s))
            })
            .unwrap_or((name.clone(), ""));
        let kind = types.get(&family).unwrap_or_else(|| panic!("sample before its # TYPE: {line}"));
        sampled.insert(family.clone(), true);
        assert_eq!(kind == "histogram", !suffix.is_empty(), "suffix/kind mismatch: {line}");

        if kind == "histogram" {
            let non_le: Vec<String> =
                labels.iter().filter(|(k, _)| k != "le").map(|(k, v)| format!("{k}={v}")).collect();
            let entry = series.entry((family, non_le.join(","))).or_default();
            match suffix {
                "_bucket" => {
                    let le = &labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .unwrap_or_else(|| panic!("bucket without le: {line}"))
                        .1;
                    if le == "+Inf" {
                        entry.inf = Some(value);
                    } else {
                        le.parse::<f64>().unwrap_or_else(|_| panic!("bad le: {line}"));
                        assert!(entry.inf.is_none(), "finite bucket after +Inf: {line}");
                        entry.cumulative.push(value);
                    }
                }
                "_sum" => entry.sum = true,
                "_count" => entry.count = Some(value),
                _ => unreachable!(),
            }
        }
    }

    assert!(!series.is_empty(), "the scrape must carry histograms");
    for ((family, labels), s) in &series {
        let at = format!("{family}{{{labels}}}");
        assert!(s.sum, "{at} missing _sum");
        let count = s.count.unwrap_or_else(|| panic!("{at} missing _count"));
        let inf = s.inf.unwrap_or_else(|| panic!("{at} missing +Inf bucket"));
        assert_eq!(inf, count, "{at}: +Inf bucket must equal _count");
        for pair in s.cumulative.windows(2) {
            assert!(pair[0] <= pair[1], "{at}: buckets not cumulative-monotone");
        }
        if let Some(&last) = s.cumulative.last() {
            assert!(last <= inf, "{at}: finite bucket exceeds +Inf");
        }
    }
    // The families this PR adds are all present and typed.
    for family in [
        "ksp_publish_stage_duration_seconds",
        "ksp_publish_duration_seconds",
        "ksp_connection_frames_in_total",
        "ksp_connection_bytes_out_total",
        "ksp_flight_overwritten_total",
        "ksp_open_connections",
    ] {
        assert!(types.contains_key(family), "missing family {family}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The flight ring's memory is its capacity, forever: storms of any size
    /// leave at most `capacity` events visible, the tally still counts every
    /// event that passed through, and the snapshot holds exactly the most
    /// recent window, oldest first.
    #[test]
    fn flight_ring_stays_bounded_under_event_storms(
        capacity in 1usize..300,
        storm in 1usize..4_000,
    ) {
        let ring = FlightRecorder::new(capacity);
        for i in 0..storm {
            let kind = EventKind::ALL[i % EventKind::ALL.len()];
            ring.record(kind, i as u64, 0, 0);
        }
        prop_assert_eq!(ring.capacity(), capacity);
        prop_assert_eq!(ring.events_recorded(), storm as u64);

        let events = ring.snapshot();
        prop_assert!(events.len() <= capacity);
        // Single-threaded, so the snapshot is the exact trailing window.
        prop_assert_eq!(events.len(), storm.min(capacity));
        for (offset, event) in events.iter().enumerate() {
            prop_assert_eq!(event.a, (storm - events.len() + offset) as u64);
        }

        // A trigger snapshots the ring into a dump of the same bounded size,
        // and repeated triggers replace rather than accumulate.
        ring.trigger(EventKind::PublishStall, 7, 0, 0, None);
        ring.trigger(EventKind::PublishStall, 8, 0, 0, None);
        let dump = ring.last_dump().unwrap();
        prop_assert!(dump.events.len() <= capacity);
        prop_assert_eq!(dump.cause.a, 8);
        prop_assert_eq!(ring.dumps_taken(), 2);
    }
}

#[test]
fn concurrent_event_storm_never_blocks_writers_or_readers() {
    let ring = Arc::new(FlightRecorder::new(64));
    let writers = 4u64;
    let per_writer = 20_000u64;
    std::thread::scope(|scope| {
        for w in 0..writers {
            let ring = Arc::clone(&ring);
            scope.spawn(move || {
                for i in 0..per_writer {
                    ring.record(EventKind::Steal, w, i, 0);
                    if i % 1024 == 0 {
                        ring.trigger(EventKind::SloBreach, w, i, 0, None);
                    }
                }
            });
        }
        // A reader snapshots throughout the storm: every snapshot stays
        // within capacity and never observes a torn slot (a torn slot would
        // surface as an event with field values no writer ever wrote, which
        // the seqlock double-check prevents by skipping it).
        let ring = Arc::clone(&ring);
        scope.spawn(move || {
            for _ in 0..200 {
                let events = ring.snapshot();
                assert!(events.len() <= ring.capacity());
                for e in &events {
                    assert!(e.b < per_writer, "torn slot leaked: {e:?}");
                }
            }
        });
    });
    // Triggers record their cause event too, so the tally exceeds the plain
    // per-writer records.
    assert!(ring.events_recorded() >= writers * per_writer);
    assert!(ring.snapshot().len() <= 64);
    assert!(ring.dumps_taken() > 0);
    assert!(ring.last_dump().is_some());
}
