//! Snapshot-consistency stress tests of the serving subsystem: many client
//! threads hammer a `QueryService` while an updater publishes traffic epochs,
//! and every response must be *exactly* the answer Yen's algorithm computes on
//! the graph of the epoch the response claims — i.e. no torn (graph, index)
//! reads, ever.

use ksp_dg::algo::yen_ksp;
use ksp_dg::core::dtlp::DtlpConfig;
use ksp_dg::graph::DynamicGraph;
use ksp_dg::serve::{run_closed_loop, LoadDriverConfig, QueryService, ServiceConfig, ServiceError};
use ksp_dg::workload::{
    QueryWorkload, QueryWorkloadConfig, RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig,
    TrafficModel,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn network(n: usize, seed: u64) -> DynamicGraph {
    RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(n)).generate(seed).unwrap().graph
}

/// The central guarantee: under concurrent queries and epoch publishes, every
/// returned path set exactly matches `yen_ksp` recomputed on that response's
/// epoch graph.
#[test]
fn concurrent_queries_are_exact_for_their_epoch() {
    const CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 40;
    const EPOCHS: usize = 6;

    let graph = network(220, 71);
    let service =
        QueryService::start(graph.clone(), ServiceConfig::new(3, DtlpConfig::new(18, 2))).unwrap();
    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(30, 2), 13);

    // Precompute the graph of every epoch the updater will publish: epoch e is
    // the initial graph with batches 1..=e applied. The updater below applies
    // the same deterministic batches through the service, so a response tagged
    // epoch e must match Yen on `per_epoch[e]`.
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.45, 0.45), 29);
    let batches: Vec<_> = traffic.snapshots(EPOCHS);
    let mut per_epoch: Vec<DynamicGraph> = vec![graph.clone()];
    for batch in &batches {
        per_epoch.push(per_epoch.last().unwrap().with_batch(batch).unwrap());
    }

    let torn = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let service = &service;
            let workload = &workload;
            let per_epoch = &per_epoch;
            let torn = &torn;
            scope.spawn(move || {
                for q in workload.cycle_from(client * 7).take(REQUESTS_PER_CLIENT) {
                    let response = match service.query(q.source, q.target, q.k) {
                        Ok(r) => r,
                        Err(ServiceError::Overloaded { .. }) => continue,
                        Err(other) => panic!("unexpected error: {other}"),
                    };
                    let epoch_graph = &per_epoch[response.epoch as usize];
                    let expected = yen_ksp(epoch_graph, q.source, q.target, q.k);
                    if response.paths.len() != expected.len() {
                        torn.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    for (got, want) in response.paths.iter().zip(expected.iter()) {
                        if !got.distance().approx_eq(want.distance()) {
                            torn.fetch_add(1, Ordering::Relaxed);
                        }
                        // The path must also be valid on the epoch graph with
                        // exactly the claimed distance.
                        let recomputed = got
                            .recompute_distance(epoch_graph)
                            .expect("returned path uses edges that exist");
                        if !recomputed.approx_eq(got.distance()) {
                            torn.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }

        // Updater: publish the precomputed batches while clients are running.
        // All EPOCHS batches are published even if clients finish early, so the
        // final epoch count below is deterministic.
        let service = &service;
        let batches = &batches;
        scope.spawn(move || {
            for batch in batches {
                std::thread::sleep(Duration::from_millis(3));
                service.apply_batch(batch).unwrap();
            }
        });
    });

    assert_eq!(torn.load(Ordering::Relaxed), 0, "torn or stale reads detected");
    assert_eq!(service.current_epoch(), EPOCHS as u64);
    let report = service.metrics();
    assert!(report.completed > 0);
    assert_eq!(report.epochs_published, EPOCHS as u64);
}

/// A cached hit must be byte-identical to a cold miss for the same
/// `(source, target, k, epoch)`.
#[test]
fn cache_hit_equals_cold_miss() {
    let graph = network(180, 3);
    let service =
        QueryService::start(graph.clone(), ServiceConfig::new(2, DtlpConfig::new(15, 2))).unwrap();
    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(12, 3), 5);

    for q in workload.iter() {
        let cold = service.query(q.source, q.target, q.k).unwrap();
        let warm = service.query(q.source, q.target, q.k).unwrap();
        assert!(!cold.cache_hit, "first request for {q:?} must be a miss");
        assert!(warm.cache_hit, "second request for {q:?} must hit");
        assert_eq!(cold.epoch, warm.epoch);
        assert_eq!(cold.paths.len(), warm.paths.len());
        for (a, b) in cold.paths.iter().zip(warm.paths.iter()) {
            assert_eq!(a.vertices(), b.vertices());
            assert!(a.distance().approx_eq(b.distance()));
        }
    }
    let report = service.metrics();
    assert_eq!(report.cache_hits, workload.len() as u64);
    assert_eq!(report.cache_misses, workload.len() as u64);
    assert!((report.cache_hit_rate() - 0.5).abs() < 1e-9);
}

/// The closed-loop driver against a live service with traffic updates: every
/// request completes or is explicitly rejected, and the metrics add up.
#[test]
fn closed_loop_driver_accounts_for_every_request() {
    let graph = network(200, 41);
    let service =
        QueryService::start(graph.clone(), ServiceConfig::new(3, DtlpConfig::new(18, 2))).unwrap();
    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(24, 2), 9);
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.35, 0.3), 17);

    let report = run_closed_loop(
        &service,
        &workload,
        Some(&mut traffic),
        LoadDriverConfig::new(4, 30).with_updates_every(Duration::from_millis(4)),
    );

    assert_eq!(report.completed + report.rejected, 4 * 30);
    assert_eq!(report.metrics.completed, report.completed as u64);
    assert_eq!(report.metrics.cache_hits + report.metrics.cache_misses, report.completed as u64);
    assert!(report.throughput_qps() > 0.0);
    assert!(report.metrics.p50 <= report.metrics.p95);
    assert!(report.metrics.p95 <= report.metrics.p99);
    // Shard accounting flows through the cluster crate's ServerLoad.
    let items: usize = report.metrics.per_shard.iter().map(|l| l.items_processed).sum();
    assert_eq!(items, report.completed);
}
