//! Integration tests for the typed wire protocol over real TCP: a
//! `QueryService` behind `TcpServer` on a loopback port, exercised by
//! `KspClient` connections and by raw sockets sending hostile bytes.
//!
//! Three contracts are proven here:
//!
//! 1. **Bit-exactness across the wire** — answers fetched over TCP by
//!    concurrent clients equal the in-process answers byte for byte, at the
//!    same epoch.
//! 2. **Epoch publication over the wire** — an `ApplyBatch` sent by one
//!    connection publishes an epoch every other connection observes.
//! 3. **Robustness** — malformed frames, truncated frames, CRC corruption,
//!    oversized lengths and foreign protocol versions are answered with a
//!    typed `ErrorReply` and a clean disconnect: no panic, no hang, and the
//!    server keeps serving well-formed clients afterwards.

use ksp_dg::core::dtlp::DtlpConfig;
use ksp_dg::graph::{DynamicGraph, VertexId};
use ksp_dg::proto::frame::{read_frame, write_frame, FrameKind, MAX_FRAME_PAYLOAD};
use ksp_dg::proto::message::{ErrorReply, QueryKey, Request, Response, PROTOCOL_VERSION};
use ksp_dg::proto::KspClient;
use ksp_dg::serve::{QueryService, ServiceConfig, TcpServer};
use ksp_dg::store::StoreCodec;
use ksp_dg::workload::{
    QueryWorkload, QueryWorkloadConfig, RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig,
    TrafficModel,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn start_server(
    n: usize,
    shards: usize,
    seed: u64,
) -> (TcpServer, Arc<QueryService>, DynamicGraph) {
    let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(n))
        .generate(seed)
        .unwrap()
        .graph;
    let config = ServiceConfig::new(shards, DtlpConfig::new(16, 2));
    let service = Arc::new(QueryService::start(graph.clone(), config).unwrap());
    let server = TcpServer::bind(service.clone(), "127.0.0.1:0").unwrap();
    (server, service, graph)
}

/// A raw loopback connection with a read timeout, so a server bug can fail a
/// test instead of hanging it.
fn raw_conn(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
}

/// Reads one response frame from a raw socket and decodes it.
fn read_response(stream: &mut TcpStream) -> Option<Response> {
    match read_frame(stream) {
        Ok(Some((FrameKind::Response, payload))) => {
            Some(Response::from_bytes(&payload).expect("server responses must decode"))
        }
        Ok(None) => None,
        other => panic!("expected a response frame or clean EOF, got {other:?}"),
    }
}

/// Asserts the stream is at end-of-file (the server disconnected cleanly).
fn assert_disconnected(stream: &mut TcpStream) {
    let mut byte = [0u8; 1];
    match stream.read(&mut byte) {
        Ok(0) => {}
        other => panic!("expected a clean disconnect, got {other:?}"),
    }
}

#[test]
fn concurrent_tcp_answers_are_byte_identical_to_in_proc() {
    let (server, service, graph) = start_server(200, 3, 41);
    let addr = server.local_addr();
    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(12, 3), 7);

    // In-process reference answers at epoch 0.
    let reference: Vec<_> =
        workload.iter().map(|q| service.query(q.source, q.target, q.k).unwrap()).collect();

    std::thread::scope(|scope| {
        for client_id in 0..3 {
            let workload = &workload;
            let reference = &reference;
            scope.spawn(move || {
                let (mut client, info) = KspClient::connect(addr).unwrap();
                assert_eq!(info.protocol_version, PROTOCOL_VERSION);
                assert_eq!(info.num_shards, 3);
                // Interleave single, batched and pipelined calls across clients.
                match client_id {
                    0 => {
                        for (q, want) in workload.iter().zip(reference.iter()) {
                            let got = client.query(q.source, q.target, q.k).unwrap();
                            assert_answers_match(&got.paths, &want.paths, got.epoch, want.epoch);
                        }
                    }
                    1 => {
                        let keys: Vec<QueryKey> = workload
                            .iter()
                            .map(|q| QueryKey::new(q.source, q.target, q.k))
                            .collect();
                        for (got, want) in
                            client.query_batch(&keys).unwrap().into_iter().zip(reference.iter())
                        {
                            let got = got.unwrap();
                            assert_answers_match(&got.paths, &want.paths, got.epoch, want.epoch);
                        }
                    }
                    _ => {
                        let keys: Vec<QueryKey> = workload
                            .iter()
                            .map(|q| QueryKey::new(q.source, q.target, q.k))
                            .collect();
                        for (got, want) in
                            client.query_pipelined(&keys).unwrap().into_iter().zip(reference.iter())
                        {
                            let got = got.unwrap();
                            assert_answers_match(&got.paths, &want.paths, got.epoch, want.epoch);
                        }
                    }
                }
                assert!(client.stats().bytes_sent > 0, "TCP moves real bytes");
            });
        }
    });

    // The metrics surface (including the rejected counter) is visible over
    // the wire.
    let (mut client, _) = KspClient::connect(addr).unwrap();
    let metrics = client.metrics().unwrap();
    assert!(metrics.completed >= 3 * workload.len() as u64);
    assert_eq!(metrics.rejected, 0);
    assert_eq!(metrics.queue_gauges.len(), 3);
}

fn assert_answers_match(
    got: &[ksp_dg::algo::Path],
    want: &[ksp_dg::algo::Path],
    got_epoch: u64,
    want_epoch: u64,
) {
    assert_eq!(got_epoch, want_epoch, "answers must come from the same epoch");
    assert_eq!(got.len(), want.len());
    for (a, b) in got.iter().zip(want.iter()) {
        assert_eq!(a.vertices(), b.vertices());
        // Byte-identical, not merely approximately equal.
        assert_eq!(a.distance().value().to_bits(), b.distance().value().to_bits());
    }
}

#[test]
fn apply_batch_over_the_wire_publishes_for_every_connection() {
    let (server, service, graph) = start_server(160, 2, 23);
    let addr = server.local_addr();
    let (mut writer_conn, _) = KspClient::connect(addr).unwrap();
    let (mut reader_conn, info) = KspClient::connect(addr).unwrap();
    assert_eq!(info.epoch, 0);

    // Publish two epochs through the first connection.
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.5, 0.4), 19);
    let live = {
        let mut live = graph.clone();
        for expected in 1..=2u64 {
            let batch = traffic.next_snapshot();
            live.apply_batch(&batch).unwrap();
            assert_eq!(writer_conn.apply_batch(&batch).unwrap(), expected);
        }
        live
    };

    // The other connection (and the in-process view) observe the new epoch...
    assert_eq!(reader_conn.ping().unwrap().epoch, 2);
    assert_eq!(service.current_epoch(), 2);

    // ...and answers over it match an in-process query on the updated graph,
    // byte for byte.
    let last = VertexId(graph.num_vertices() as u32 - 1);
    let over_wire = reader_conn.query(VertexId(0), last, 3).unwrap();
    assert_eq!(over_wire.epoch, 2);
    let direct = service.query(VertexId(0), last, 3).unwrap();
    assert_answers_match(&over_wire.paths, &direct.paths, over_wire.epoch, direct.epoch);

    // An invalid batch is rejected typed over the wire and publishes nothing.
    use ksp_dg::graph::{EdgeId, UpdateBatch, Weight, WeightUpdate};
    let bogus = UpdateBatch::new(vec![WeightUpdate::new(
        EdgeId(graph.num_edges() as u32 + 50),
        Weight::new(1.0),
    )]);
    match writer_conn.apply_batch(&bogus) {
        Err(e) => assert!(
            matches!(e, ksp_dg::proto::ClientError::Server(ErrorReply::InvalidBatch(_))),
            "unexpected error: {e}"
        ),
        Ok(epoch) => panic!("invalid batch must not publish (got epoch {epoch})"),
    }
    assert_eq!(service.current_epoch(), 2);
    drop(live);
}

#[test]
fn malformed_frames_fail_typed_and_the_server_survives() {
    let (server, _service, graph) = start_server(120, 2, 43);
    let addr = server.local_addr();
    let last = VertexId(graph.num_vertices() as u32 - 1);

    // (a) Garbage bytes: not even the magic matches.
    {
        let mut conn = raw_conn(addr);
        conn.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        conn.flush().unwrap();
        match read_response(&mut conn) {
            Some(Response::Error(ErrorReply::Malformed(detail))) => {
                assert!(detail.contains("magic"), "unexpected detail: {detail}")
            }
            other => panic!("expected a typed Malformed reply, got {other:?}"),
        }
        assert_disconnected(&mut conn);
    }

    // (b) CRC mismatch: a valid frame whose payload was corrupted in flight.
    {
        let mut frame = Vec::new();
        let payload = Request::Query(QueryKey::new(VertexId(0), last, 2)).to_bytes();
        write_frame(&mut frame, FrameKind::Request, &payload).unwrap();
        let end = frame.len() - 1;
        frame[end] ^= 0x01;
        let mut conn = raw_conn(addr);
        conn.write_all(&frame).unwrap();
        conn.flush().unwrap();
        match read_response(&mut conn) {
            Some(Response::Error(ErrorReply::Malformed(detail))) => {
                assert!(detail.contains("CRC"), "unexpected detail: {detail}")
            }
            other => panic!("expected a typed CRC failure, got {other:?}"),
        }
        assert_disconnected(&mut conn);
    }

    // (c) Truncated frame: the header promises more payload than ever
    // arrives. The server answers typed (or at minimum disconnects cleanly)
    // instead of hanging the client.
    {
        let mut frame = Vec::new();
        let payload = Request::Metrics.to_bytes();
        write_frame(&mut frame, FrameKind::Request, &payload).unwrap();
        let mut conn = raw_conn(addr);
        conn.write_all(&frame[..frame.len() - 1]).unwrap();
        conn.flush().unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        match read_response(&mut conn) {
            Some(Response::Error(ErrorReply::Malformed(detail))) => {
                assert!(detail.contains("mid-frame"), "unexpected detail: {detail}")
            }
            None => {} // a clean disconnect is also within contract
            other => panic!("expected a typed truncation failure, got {other:?}"),
        }
        assert_disconnected(&mut conn);
    }

    // (d) Foreign protocol version: rejected typed, before payload decoding.
    {
        let mut frame = Vec::new();
        let payload = Request::ping_legacy(999).to_bytes();
        write_frame(&mut frame, FrameKind::Request, &payload).unwrap();
        frame[4..8].copy_from_slice(&999u32.to_le_bytes());
        let mut conn = raw_conn(addr);
        conn.write_all(&frame).unwrap();
        conn.flush().unwrap();
        match read_response(&mut conn) {
            Some(Response::Error(ErrorReply::UnsupportedVersion { server, client })) => {
                assert_eq!(server, PROTOCOL_VERSION);
                assert_eq!(client, 999);
            }
            other => panic!("expected a typed version rejection, got {other:?}"),
        }
        assert_disconnected(&mut conn);
    }

    // (e) Oversized length: rejected before any allocation.
    {
        let mut frame = Vec::new();
        write_frame(&mut frame, FrameKind::Request, &Request::Metrics.to_bytes()).unwrap();
        frame[9..13].copy_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        let mut conn = raw_conn(addr);
        conn.write_all(&frame).unwrap();
        conn.flush().unwrap();
        match read_response(&mut conn) {
            Some(Response::Error(ErrorReply::Malformed(detail))) => {
                assert!(detail.contains("exceeds"), "unexpected detail: {detail}")
            }
            other => panic!("expected a typed oversize rejection, got {other:?}"),
        }
        assert_disconnected(&mut conn);
    }

    // (f) A frame that parses but whose payload is not a valid Request.
    {
        let mut frame = Vec::new();
        write_frame(&mut frame, FrameKind::Request, &[250, 1, 2, 3]).unwrap();
        let mut conn = raw_conn(addr);
        conn.write_all(&frame).unwrap();
        conn.flush().unwrap();
        match read_response(&mut conn) {
            Some(Response::Error(ErrorReply::Malformed(detail))) => {
                assert!(detail.contains("decode"), "unexpected detail: {detail}")
            }
            other => panic!("expected a typed decode failure, got {other:?}"),
        }
        assert_disconnected(&mut conn);
    }

    // After all of that abuse, a well-formed client is still served.
    let (mut client, info) = KspClient::connect(addr).unwrap();
    assert_eq!(info.protocol_version, PROTOCOL_VERSION);
    let answer = client.query(VertexId(0), last, 2).unwrap();
    assert!(!answer.paths.is_empty(), "server must keep serving after hostile clients");
}

#[test]
fn foreign_version_handshake_fails_typed_on_the_client_too() {
    let (server, _service, _graph) = start_server(100, 1, 47);
    // A client whose *frames* carry the right version but whose Ping
    // announces a different one gets the typed UnsupportedVersion reply.
    let (mut client, _) = KspClient::connect(server.local_addr()).unwrap();
    // Craft the mismatched ping by hand over a raw socket.
    let mut conn = raw_conn(server.local_addr());
    let payload = Request::ping_legacy(2).to_bytes();
    let mut frame = Vec::new();
    write_frame(&mut frame, FrameKind::Request, &payload).unwrap();
    conn.write_all(&frame).unwrap();
    conn.flush().unwrap();
    match read_response(&mut conn) {
        Some(Response::Error(ErrorReply::UnsupportedVersion { server: s, client: c })) => {
            assert_eq!(s, PROTOCOL_VERSION);
            assert_eq!(c, 2);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    assert_disconnected(&mut conn);
    // The well-versioned connection opened earlier still works.
    assert!(client.ping().is_ok());
}
