//! End-to-end integration tests spanning the whole workspace: dataset generation →
//! partitioning → DTLP construction → traffic evolution → KSP-DG queries, validated
//! against the centralized baselines on the live graph.

use ksp_dg::algo::{find_ksp, yen_ksp};
use ksp_dg::cands::CandsIndex;
use ksp_dg::core::dtlp::{DtlpConfig, DtlpIndex};
use ksp_dg::core::kspdg::KspDgEngine;
use ksp_dg::workload::datasets::DatasetScale;
use ksp_dg::workload::{
    DatasetPreset, QueryWorkload, QueryWorkloadConfig, TrafficConfig, TrafficModel,
};

fn tiny_dataset(preset: DatasetPreset) -> (ksp_dg::graph::DynamicGraph, usize) {
    let spec = preset.spec(DatasetScale::Tiny);
    let net = spec.generate().expect("dataset generation");
    (net.graph, spec.default_z)
}

#[test]
fn full_pipeline_matches_yen_across_traffic_snapshots() {
    let (mut graph, z) = tiny_dataset(DatasetPreset::NewYork);
    let mut index = DtlpIndex::build(&graph, DtlpConfig::new(z, 2)).expect("index build");
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 11);

    for snapshot in 0..3 {
        let workload =
            QueryWorkload::generate(&graph, QueryWorkloadConfig::new(6, 3), 100 + snapshot);
        let engine = KspDgEngine::new(&index);
        for q in workload.iter() {
            let got = engine.query(q.source, q.target, q.k);
            let expected = yen_ksp(&graph, q.source, q.target, q.k);
            assert_eq!(got.paths.len(), expected.len(), "snapshot {snapshot}, query {q:?}");
            for (a, b) in got.paths.iter().zip(expected.iter()) {
                assert!(
                    a.distance().approx_eq(b.distance()),
                    "snapshot {snapshot}, query {q:?}: {} vs {}",
                    a.distance(),
                    b.distance()
                );
            }
        }
        let batch = traffic.next_snapshot();
        graph.apply_batch(&batch).expect("graph update");
        index.apply_batch(&batch).expect("index maintenance");
    }
}

#[test]
fn all_three_ksp_algorithms_agree() {
    let (graph, _) = tiny_dataset(DatasetPreset::Colorado);
    let index = DtlpIndex::build(&graph, DtlpConfig::new(20, 2)).expect("index build");
    let engine = KspDgEngine::new(&index);
    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(5, 4), 77);
    for q in workload.iter() {
        let a = engine.query(q.source, q.target, q.k);
        let b = yen_ksp(&graph, q.source, q.target, q.k);
        let c = find_ksp(&graph, q.source, q.target, q.k);
        assert_eq!(a.paths.len(), b.len());
        assert_eq!(b.len(), c.len());
        for ((x, y), z) in a.paths.iter().zip(b.iter()).zip(c.iter()) {
            assert!(x.distance().approx_eq(y.distance()));
            assert!(y.distance().approx_eq(z.distance()));
        }
    }
}

#[test]
fn cands_agrees_with_ksp_dg_for_single_shortest_paths() {
    let (mut graph, z) = tiny_dataset(DatasetPreset::NewYork);
    let mut dtlp = DtlpIndex::build(&graph, DtlpConfig::new(z, 2)).expect("index build");
    let mut cands = CandsIndex::build(&graph, z).expect("cands build");
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.4, 0.4), 5);
    let batch = traffic.next_snapshot();
    graph.apply_batch(&batch).expect("graph update");
    dtlp.apply_batch(&batch).expect("dtlp maintenance");
    cands.apply_batch(&batch).expect("cands maintenance");

    let engine = KspDgEngine::new(&dtlp);
    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(10, 1), 13);
    for q in workload.iter() {
        let ksp = engine.query(q.source, q.target, 1);
        let sp = cands.shortest_path(q.source, q.target);
        match (ksp.shortest_distance(), sp.distance) {
            (Some(a), Some(b)) => assert!(a.approx_eq(b), "{} vs {}", a, b),
            (None, None) => {}
            other => panic!("reachability disagreement for {q:?}: {other:?}"),
        }
    }
}

#[test]
fn dimacs_roundtrip_feeds_the_index() {
    // Write a miniature DIMACS file, parse it and run the whole stack on it.
    let gr = "\
c tiny test network
p sp 6 14
a 1 2 4\na 2 1 4\na 2 3 3\na 3 2 3\na 3 4 2\na 4 3 2\na 4 5 5\na 5 4 5\na 5 6 1\na 6 5 1\na 1 6 20\na 6 1 20\na 2 5 9\na 5 2 9\n";
    let graph = ksp_dg::workload::dimacs::parse_gr(std::io::Cursor::new(gr), false).expect("parse");
    assert_eq!(graph.num_vertices(), 6);
    let index = DtlpIndex::build(&graph, DtlpConfig::new(3, 2)).expect("index build");
    let engine = KspDgEngine::new(&index);
    let result = engine.query(ksp_dg::graph::VertexId(0), ksp_dg::graph::VertexId(5), 2);
    let expected = yen_ksp(&graph, ksp_dg::graph::VertexId(0), ksp_dg::graph::VertexId(5), 2);
    assert_eq!(result.paths.len(), expected.len());
    for (a, b) in result.paths.iter().zip(expected.iter()) {
        assert!(a.distance().approx_eq(b.distance()));
    }
}

#[test]
fn directed_dataset_queries_match_yen() {
    let spec = DatasetPreset::NewYork.spec(DatasetScale::Tiny);
    let net = spec.generate_directed().expect("dataset generation");
    let graph = net.graph;
    assert!(graph.is_directed());
    let index = DtlpIndex::build(&graph, DtlpConfig::new(spec.default_z, 2)).expect("index build");
    assert!(index.is_directed());
    let engine = KspDgEngine::new(&index);
    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(6, 2), 19);
    for q in workload.iter() {
        let got = engine.query(q.source, q.target, q.k);
        let expected = yen_ksp(&graph, q.source, q.target, q.k);
        assert_eq!(got.paths.len(), expected.len(), "query {q:?}");
        for (a, b) in got.paths.iter().zip(expected.iter()) {
            assert!(a.distance().approx_eq(b.distance()));
        }
    }
}

#[test]
fn skeleton_stays_small_relative_to_graph() {
    let (graph, z) = tiny_dataset(DatasetPreset::Colorado);
    let index = DtlpIndex::build(&graph, DtlpConfig::new(z, 1)).expect("index build");
    let skeleton = index.skeleton();
    assert!(skeleton.num_skeleton_vertices() < graph.num_vertices());
    assert!(skeleton.num_skeleton_vertices() > 0);
    // Every skeleton vertex is a boundary vertex of the partitioning.
    for v in skeleton.vertices() {
        assert!(index.is_boundary(v));
    }
}
