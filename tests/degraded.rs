//! Degraded-mode acceptance, observed over the wire.
//!
//! The contract: when the durable append path breaks (here, a persistent
//! injected fsync failure), the service flips into *read-only degraded
//! mode* — `ApplyBatch` is refused with the typed `Degraded` error while
//! queries keep serving the last published epoch, bit-identically. The
//! `ksp_degraded` gauge flips to 1 on the same scrape surface as everything
//! else. Once the disk "heals", the background probe repairs the log,
//! the gauge drops back to 0, writes land again — and everything accepted
//! before, during and after the episode survives a restart.

use ksp_dg::core::dtlp::DtlpConfig;
use ksp_dg::fault::{FaultAction, FaultPlan, FaultPoint, Schedule};
use ksp_dg::graph::VertexId;
use ksp_dg::proto::{ClientConfig, ClientError, ErrorReply, KspClient, QueryAnswer};
use ksp_dg::serve::{QueryService, ServiceConfig, TcpServer};
use ksp_dg::store::{FaultyIo, StorageIo, StoreConfig, SyncPolicy};
use ksp_dg::workload::{RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig, TrafficModel};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ksp-dg-degraded-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_bit_identical(a: &QueryAnswer, b: &QueryAnswer, what: &str) {
    assert_eq!(a.epoch, b.epoch, "{what}: epochs differ");
    assert_eq!(a.paths.len(), b.paths.len(), "{what}: path counts differ");
    for (x, y) in a.paths.iter().zip(b.paths.iter()) {
        assert_eq!(x.vertices(), y.vertices(), "{what}: vertices differ");
        assert_eq!(
            x.distance().value().to_bits(),
            y.distance().value().to_bits(),
            "{what}: distances differ"
        );
    }
}

#[test]
fn fsync_fault_degrades_to_read_only_then_recovers_and_survives_restart() {
    let dir = temp_dir("wire");
    let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(180))
        .generate(23)
        .unwrap()
        .graph;
    let sconfig = ServiceConfig::new(2, DtlpConfig::new(18, 2));
    // fsync on every append: the faulted operation must actually be on the
    // commit path.
    let st =
        StoreConfig { checkpoint_interval: 0, sync: SyncPolicy::Always, ..StoreConfig::default() };
    let plan = FaultPlan::new(11);
    let io: Arc<dyn StorageIo> = Arc::new(FaultyIo::new(plan.clone()));
    let service =
        Arc::new(QueryService::start_with_store_io(graph.clone(), sconfig, &dir, st, io).unwrap());
    let mut server = TcpServer::bind(service.clone(), "127.0.0.1:0").unwrap();
    let config =
        ClientConfig { io_timeout: Some(Duration::from_secs(10)), ..ClientConfig::default() };
    let (mut client, _hello) = KspClient::connect_with_config(server.local_addr(), config).unwrap();

    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.5, 0.5), 31);
    assert_eq!(client.apply_batch(&traffic.next_snapshot()).unwrap(), 1);
    assert_eq!(client.apply_batch(&traffic.next_snapshot()).unwrap(), 2);
    let last = VertexId(graph.num_vertices() as u32 - 1);
    let before = client.query(VertexId(0), last, 3).unwrap();
    assert_eq!(before.epoch, 2);

    // The disk goes bad for good: every fsync from here on fails until the
    // plan is disarmed.
    plan.arm(
        FaultPoint::WalFsync,
        Schedule::From(plan.ops_at(FaultPoint::WalFsync) + 1),
        FaultAction::Fail,
    );
    let stuck = traffic.next_snapshot();
    match client.apply_batch(&stuck) {
        Err(ClientError::Server(ErrorReply::Degraded(reason))) => {
            assert!(reason.contains("injected"), "reason must carry the cause, got: {reason}")
        }
        other => panic!("a failed append must surface as typed Degraded, got {other:?}"),
    }
    assert!(service.is_degraded());
    assert!(service.degraded_reason().is_some());
    // Repeat writes are refused up front (fast-fail, no staging work) with
    // the same typed error.
    assert!(matches!(
        client.apply_batch(&stuck),
        Err(ClientError::Server(ErrorReply::Degraded(_)))
    ));

    // Reads ride through, bit-identical to the pre-fault answer, and the
    // scrape says so.
    let during = client.query(VertexId(0), last, 3).unwrap();
    assert_bit_identical(&before, &during, "degraded-mode read");
    let text = client.scrape_text().unwrap();
    assert!(text.contains("ksp_degraded 1"), "gauge must be up:\n{text}");
    assert!(text.contains("ksp_degraded_entered_total 1"), "{text}");
    // The probe is live against the still-bad disk: it keeps consuming fsync
    // attempts without lifting anything.
    let probing_deadline = Instant::now() + Duration::from_secs(10);
    let seen = plan.injected_at(FaultPoint::WalFsync);
    while plan.injected_at(FaultPoint::WalFsync) <= seen {
        assert!(Instant::now() < probing_deadline, "probe stopped retrying the bad log");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(service.is_degraded(), "a failing probe must not lift degradation");

    // Heal the disk. The probe's next attempt succeeds and lifts degraded
    // mode without any restart.
    plan.disarm(FaultPoint::WalFsync);
    let recovery_deadline = Instant::now() + Duration::from_secs(20);
    while service.is_degraded() {
        assert!(Instant::now() < recovery_deadline, "probe did not lift degradation after heal");
        std::thread::sleep(Duration::from_millis(5));
    }
    let text = client.scrape_text().unwrap();
    assert!(text.contains("ksp_degraded 0"), "gauge must be down after recovery:\n{text}");
    assert!(text.contains("ksp_degraded_recovered_total 1"), "{text}");

    // Writes land again; the once-stuck batch publishes as epoch 3.
    assert_eq!(client.apply_batch(&stuck).unwrap(), 3);
    let after = client.query(VertexId(0), last, 3).unwrap();
    assert_eq!(after.epoch, 3);

    // Everything accepted around the episode is durable: a cold restart of
    // the directory comes back at epoch 3 and answers bit-identically.
    server.shutdown();
    drop(server);
    drop(client);
    drop(service);
    let (recovered, _report) = QueryService::open(&dir, sconfig, st).unwrap();
    assert_eq!(recovered.snapshot().epoch(), 3);
    let answer = recovered.query(VertexId(0), last, 3).unwrap();
    assert_eq!(answer.epoch, after.epoch);
    assert_eq!(answer.paths.len(), after.paths.len());
    for (x, y) in answer.paths.iter().zip(after.paths.iter()) {
        assert_eq!(x.vertices(), y.vertices());
        assert_eq!(x.distance().value().to_bits(), y.distance().value().to_bits());
    }
    drop(recovered);

    let _ = std::fs::remove_dir_all(&dir);
}
