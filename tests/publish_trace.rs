//! Integration tests for write-path publish tracing and wire trace-context
//! propagation, end to end.
//!
//! Three contracts are proven here:
//!
//! 1. **Exact write-path decomposition over the wire** — an `ObsSnapshot`
//!    fetched over TCP splits every published epoch into the seven write-path
//!    stages, and the stage totals sum *exactly* to the end-to-end publish
//!    total, including for a persistent service whose checkpoint epochs
//!    finish their spans on the background checkpointer thread.
//! 2. **Telescoping under random load** — a property test applies random
//!    numbers of update batches and checks that the decomposition stays an
//!    attribution (stage sums bit-equal to the end-to-end histogram), never a
//!    sample.
//! 3. **Trace-context propagation** — a TCP client stamps every request with
//!    its own trace id; the server echoes it and threads it into flight-ring
//!    dumps, so the client can resolve an SLO-breach dump back to the exact
//!    request it sent, and decompose its perceived latency into
//!    serialize / network / server / decode.

use ksp_dg::core::dtlp::DtlpConfig;
use ksp_dg::graph::VertexId;
use ksp_dg::obs::{EventKind, ObsSnapshot, PublishStage};
use ksp_dg::proto::KspClient;
use ksp_dg::serve::{QueryService, ServiceConfig, TcpServer};
use ksp_dg::store::{StoreConfig, SyncPolicy};
use ksp_dg::workload::{RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig, TrafficModel};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ksp-dg-publish-trace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Asserts the telescoping contract on a snapshot: per-stage publish totals
/// sum bit-exactly to the end-to-end publish total, and every published
/// epoch passed through every stage exactly once.
fn assert_publish_stages_telescope(snap: &ObsSnapshot, epochs: u64) {
    assert_eq!(snap.publish_end_to_end.count, epochs);
    let stage_total: u64 = PublishStage::ALL
        .iter()
        .filter_map(|&s| snap.publish_stage(s))
        .map(|h| h.total_micros)
        .sum();
    assert_eq!(
        stage_total, snap.publish_end_to_end.total_micros,
        "write-path stage totals must sum exactly to the end-to-end publish total"
    );
    for stage in PublishStage::ALL {
        assert_eq!(
            snap.publish_stage(stage).expect("every stage is present").count,
            epochs,
            "stage {} must see every epoch",
            stage.name()
        );
    }
}

#[test]
fn persistent_publishes_decompose_exactly_over_the_wire() {
    let dir = temp_dir("wire");
    let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(180))
        .generate(0x9001)
        .unwrap()
        .graph;
    let config = ServiceConfig::new(2, DtlpConfig::new(16, 2));
    // A persistent store with a real fsync per append and checkpoints every
    // other epoch: all seven write-path stages get non-trivial work, and the
    // checkpoint epochs finish their spans on the background checkpointer.
    let store_config =
        StoreConfig { checkpoint_interval: 2, sync: SyncPolicy::Always, ..StoreConfig::default() };
    let service = Arc::new(
        QueryService::start_with_store(graph.clone(), config, &dir, store_config).unwrap(),
    );
    let server = TcpServer::bind(service.clone(), "127.0.0.1:0").unwrap();
    let (mut client, _) = KspClient::connect(server.local_addr()).unwrap();

    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.4, 0.4), 7);
    let epochs = 5u64;
    for _ in 0..epochs {
        client.apply_batch(&traffic.next_snapshot()).unwrap();
    }

    // Checkpoint epochs finish their publish spans asynchronously after the
    // checkpoint commits; quiesce by polling until every epoch's chain has
    // landed in the end-to-end histogram.
    let deadline = Instant::now() + Duration::from_secs(10);
    let snap = loop {
        let snap = client.obs_snapshot().unwrap();
        if snap.publish_end_to_end.count == epochs {
            break snap;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {epochs} publish chains; have {}",
            snap.publish_end_to_end.count
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_publish_stages_telescope(&snap, epochs);
    assert_eq!(snap.counter("ksp_epochs_published_total"), epochs);
    // With a real fsync per append, the log stages cannot all be zero-width.
    let logged = snap.publish_stage(PublishStage::WalAppend).unwrap().total_micros
        + snap.publish_stage(PublishStage::Fsync).unwrap().total_micros;
    assert!(logged > 0, "durable appends must take measurable time");

    // The scrape renders the write-path families, one series per stage.
    let text = client.scrape_text().unwrap();
    assert!(text.contains("# TYPE ksp_publish_stage_duration_seconds histogram"));
    assert!(text.contains("# TYPE ksp_publish_duration_seconds histogram"));
    for stage in PublishStage::ALL {
        assert!(
            text.contains(&format!(
                "ksp_publish_stage_duration_seconds_count{{stage=\"{}\"}} {epochs}",
                stage.name()
            )),
            "missing publish stage series for {}",
            stage.name()
        );
    }
    assert!(text.contains(&format!("ksp_publish_duration_seconds_count {epochs}")));
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The write-path decomposition is an attribution for *any* update load:
    /// across random batch counts and traffic intensities, the per-stage
    /// totals sum bit-exactly to the end-to-end publish histogram and every
    /// stage counts every epoch. A non-persistent service finishes every
    /// span synchronously inside `apply_batch`, so no quiescing is needed.
    #[test]
    fn publish_stage_totals_telescope_for_random_batches(
        batches in 1u64..8,
        change_pct in 10u64..90,
        seed in 0u64..1_000,
    ) {
        let change = change_pct as f64 / 100.0;
        let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(140))
            .generate(0xA11 + seed)
            .unwrap()
            .graph;
        let service = QueryService::start(
            graph.clone(),
            ServiceConfig::new(2, DtlpConfig::new(15, 2)),
        )
        .unwrap();
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(change, change), seed);
        for _ in 0..batches {
            service.apply_batch(&traffic.next_snapshot()).unwrap();
        }
        let snap = service.obs_snapshot();
        prop_assert_eq!(snap.publish_end_to_end.count, batches);
        let stage_total: u64 = PublishStage::ALL
            .iter()
            .filter_map(|&s| snap.publish_stage(s))
            .map(|h| h.total_micros)
            .sum();
        prop_assert_eq!(stage_total, snap.publish_end_to_end.total_micros);
        for stage in PublishStage::ALL {
            prop_assert_eq!(snap.publish_stage(stage).unwrap().count, batches);
        }
        // A non-persistent service never fsyncs: that sub-stage is marked
        // with an explicit zero duration, so it stays exactly zero-width.
        // (The neighbouring unmarked stages clamp to their predecessor and
        // the *final* stage absorbs the tail up to the end stamp, so only
        // fsync is guaranteed empty.)
        prop_assert_eq!(snap.publish_stage(PublishStage::Fsync).unwrap().total_micros, 0);
    }
}

#[test]
fn slo_breach_dump_resolves_to_the_clients_own_trace_id() {
    // An unmeetable SLO: the very first query breaches and dumps, carrying
    // the trace id the client stamped on the request.
    let mut config = ServiceConfig::new(2, DtlpConfig::new(16, 2));
    config.observability.slo_p99 = Duration::from_nanos(1);
    let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(160))
        .generate(0x9002)
        .unwrap()
        .graph;
    let service = Arc::new(QueryService::start(graph.clone(), config).unwrap());
    let server = TcpServer::bind(service.clone(), "127.0.0.1:0").unwrap();
    let (mut client, _) = KspClient::connect(server.local_addr()).unwrap();

    let last = VertexId(graph.num_vertices() as u32 - 1);
    client.query(VertexId(0), last, 2).unwrap();
    let trace_id = client.last_trace_id();
    assert_ne!(trace_id, 0, "a tracing client stamps every request");

    let snap = client.obs_snapshot().unwrap();
    let dump = snap.dump.expect("the breach must dump");
    assert_eq!(dump.cause.kind, EventKind::SloBreach);
    assert_eq!(
        dump.trace_id, trace_id,
        "the dump must pin the server's span chain to the client's trace id"
    );
    // The chain the dump carries is the breaching request's, with its stamps
    // accounting for the reported latency exactly.
    let chain = dump.span.expect("an SLO dump carries the offending span chain");
    assert_eq!(chain.total_micros(), dump.cause.a);

    // The client decomposes its perceived latency: every component is
    // accounted and none exceeds the total.
    let breakdown = client.latency_breakdown();
    assert!(breakdown.total_micros >= breakdown.server_micros);
    assert_eq!(
        breakdown.total_micros,
        breakdown.serialize_micros
            + breakdown.network_micros
            + breakdown.server_micros
            + breakdown.decode_micros,
        "the breakdown must attribute the whole perceived latency"
    );
}

#[test]
fn untraced_clients_still_get_untraced_replies() {
    // Turning tracing off restores the exact pre-trace wire exchange: no
    // envelope on the request, none on the reply, and no trace id in dumps.
    let mut config = ServiceConfig::new(1, DtlpConfig::new(16, 2));
    config.observability.slo_p99 = Duration::from_nanos(1);
    let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(140))
        .generate(0x9003)
        .unwrap()
        .graph;
    let service = Arc::new(QueryService::start(graph.clone(), config).unwrap());
    let server = TcpServer::bind(service.clone(), "127.0.0.1:0").unwrap();
    let (mut client, _) = KspClient::connect(server.local_addr()).unwrap();
    client.set_tracing(false);

    // The connect handshake ran traced before tracing was turned off; no
    // *new* trace id may be minted after that.
    let handshake_trace = client.last_trace_id();
    let last = VertexId(graph.num_vertices() as u32 - 1);
    client.query(VertexId(0), last, 2).unwrap();
    assert_eq!(client.last_trace_id(), handshake_trace, "no new trace was stamped");
    let snap = client.obs_snapshot().unwrap();
    let dump = snap.dump.expect("the breach still dumps");
    assert_eq!(dump.trace_id, 0, "an untraced request pins no trace id");
}
