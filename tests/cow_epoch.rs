//! Property tests of copy-on-write epoch publication.
//!
//! Two properties, checked over random road networks and random batch
//! sequences:
//!
//! 1. **Answer equivalence.** After any sequence of incrementally applied
//!    update batches, the COW-maintained index answers every `(s, t, k)`
//!    query with the same path distances as a `DtlpIndex::build` from scratch
//!    on the final graph. Incremental maintenance only loosens *bounds*
//!    (which cost work, never correctness), so the exact k-shortest-path
//!    answers must agree to the bit.
//! 2. **Structural sharing.** Publication copies exactly the subgraph indexes
//!    the batch dirtied: across any two consecutive epochs, every subgraph id
//!    not in the batch's dirty set is pointer-equal (`Arc::ptr_eq`) between
//!    the epochs — no silent deep copies — and the graph's topology
//!    allocation is shared across the whole epoch chain.

use ksp_dg::core::dtlp::{DtlpConfig, DtlpIndex};
use ksp_dg::core::kspdg::KspDgEngine;
use ksp_dg::graph::{SubgraphId, UpdateBatch, Weight, WeightUpdate};
use ksp_dg::workload::{
    QueryWorkload, QueryWorkloadConfig, RoadNetworkConfig, RoadNetworkGenerator, Xoshiro256,
};
use proptest::prelude::*;
use std::sync::Arc;

fn network(seed: u64) -> ksp_dg::graph::DynamicGraph {
    let size = 80 + (seed % 80) as usize;
    RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(size))
        .generate(seed)
        .expect("network generation")
        .graph
}

/// A random batch touching `fraction` of the edges.
fn perturb(graph: &ksp_dg::graph::DynamicGraph, seed: u64, fraction: f64) -> UpdateBatch {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let m = graph.num_edges();
    let count = (((m as f64) * fraction) as usize).max(1);
    let updates = rng
        .sample_indices(m, count)
        .into_iter()
        .map(|i| {
            let e = ksp_dg::graph::EdgeId(i as u32);
            let w0 = graph.initial_weight(e) as f64;
            let factor = rng.next_range_f64(0.4, 1.8);
            WeightUpdate::new(e, Weight::new((w0 * factor).max(0.05)))
        })
        .collect();
    UpdateBatch::new(updates)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn incremental_publication_matches_from_scratch_build(
        seed in 0u64..5_000,
        z in 10usize..32,
        rounds in 1usize..4,
    ) {
        let mut graph = network(seed);
        let config = DtlpConfig::new(z, 2);
        let mut index = DtlpIndex::build(&graph, config).unwrap();

        for round in 0..rounds {
            let batch = perturb(&graph, seed ^ (0xA5A5 + round as u64), 0.1);
            graph.apply_batch(&batch).unwrap();
            index.apply_batch(&batch).unwrap();
        }

        // From-scratch reference on the final graph, same configuration.
        let fresh = DtlpIndex::build(&graph, config).unwrap();
        let incremental_engine = KspDgEngine::new(&index);
        let fresh_engine = KspDgEngine::new(&fresh);

        let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(6, 3), seed ^ 0x51);
        for q in workload.iter() {
            let a = incremental_engine.query(q.source, q.target, q.k);
            let b = fresh_engine.query(q.source, q.target, q.k);
            prop_assert_eq!(
                a.paths.len(), b.paths.len(),
                "path count diverged for {} -> {} k={}", q.source, q.target, q.k
            );
            for (pa, pb) in a.paths.iter().zip(b.paths.iter()) {
                // Rank-by-rank bit-equal distances: the engines may tie-break
                // equal-length paths differently, but the distance multiset of
                // the exact k shortest paths is unique.
                prop_assert_eq!(
                    pa.distance().value().to_bits(),
                    pb.distance().value().to_bits(),
                    "distance diverged for {} -> {} k={}", q.source, q.target, q.k
                );
            }
        }
    }

    #[test]
    fn publication_shares_every_untouched_subgraph(
        seed in 0u64..5_000,
        z in 10usize..32,
        rounds in 1usize..5,
    ) {
        let initial_graph = network(seed);
        let config = DtlpConfig::new(z, 2);
        let mut graph = initial_graph.clone();
        let mut index = DtlpIndex::build(&graph, config).unwrap();

        for round in 0..rounds {
            let prev_index = index.clone();
            let batch = perturb(&graph, seed ^ (0xBEEF + round as u64), 0.05);
            graph.apply_batch(&batch).unwrap();
            let stats = index.apply_batch(&batch).unwrap();

            // The reported dirty set is exactly the owners of updated edges.
            let mut expected: Vec<SubgraphId> =
                batch.iter().map(|u| index.owner_of_edge(u.edge)).collect();
            expected.sort_unstable();
            expected.dedup();
            prop_assert_eq!(&stats.dirty_subgraphs, &expected);

            for id in 0..index.num_subgraphs() {
                let id = SubgraphId(id as u32);
                let shared = Arc::ptr_eq(
                    prev_index.subgraph_index_handle(id),
                    index.subgraph_index_handle(id),
                );
                if stats.dirty_subgraphs.contains(&id) {
                    prop_assert!(!shared, "dirty subgraph {} must be unshared", id.0);
                } else {
                    prop_assert!(shared, "untouched subgraph {} was deep-copied", id.0);
                }
            }
        }
        // Weight-only maintenance never copies graph structure.
        prop_assert!(graph.shares_topology_with(&initial_graph));
    }
}
