//! Acceptance tests for log-shipping replication (`ksp-repl`).
//!
//! The headline property: a follower that bootstraps over a real TCP socket
//! and replays shipped WAL records holds a `(graph, index)` pair
//! **byte-identical** to the leader's at the same epoch, and answers queries
//! bit-for-bit the same. Plus the fallback property: a follower whose
//! position has been pruned out of the leader's retained log window (and a
//! late joiner arriving after rotation + pruning) is re-seeded through the
//! snapshot manifest, never fed torn or skipped records. Plus warm failover:
//! promotion is a flag flip on an already-running service, not a recovery.

use ksp_dg::core::dtlp::DtlpConfig;
use ksp_dg::graph::{DynamicGraph, VertexId};
use ksp_dg::proto::KspClient;
use ksp_dg::repl::{Replica, ReplicaConfig, ReplicationSource};
use ksp_dg::serve::{QueryService, ServiceConfig, TcpServer};
use ksp_dg::store::{StoreCodec, StoreConfig, SyncPolicy};
use ksp_dg::workload::{RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig, TrafficModel};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ksp-dg-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn road_network(n: usize, seed: u64) -> DynamicGraph {
    RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(n)).generate(seed).unwrap().graph
}

/// Manual checkpointing only, fsync off: the tests control image commits.
fn store_config() -> StoreConfig {
    StoreConfig { checkpoint_interval: 0, sync: SyncPolicy::Never, ..StoreConfig::default() }
}

fn assert_byte_identical(leader: &QueryService, follower: &QueryService) {
    let a = leader.snapshot();
    let b = follower.snapshot();
    assert_eq!(a.epoch(), b.epoch(), "leader and follower must sit on the same epoch");
    assert_eq!(
        a.graph().to_bytes(),
        b.graph().to_bytes(),
        "follower graph must be byte-identical to the leader's"
    );
    assert_eq!(
        a.index().to_bytes(),
        b.index().to_bytes(),
        "follower index must be byte-identical to the leader's"
    );
}

#[test]
fn follower_replays_to_byte_identity_over_a_real_socket() {
    let leader_dir = temp_dir("ident-leader");
    let replica_root = temp_dir("ident-replica");
    let graph = road_network(200, 71);
    let sconfig = ServiceConfig::new(2, DtlpConfig::new(20, 2));
    let leader = Arc::new(
        QueryService::start_with_store(graph.clone(), sconfig, &leader_dir, store_config())
            .unwrap(),
    );
    let source = ReplicationSource::attach(&leader).unwrap();
    let server = TcpServer::bind(leader.clone(), "127.0.0.1:0").unwrap();

    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.5, 0.5), 9);
    for _ in 0..3 {
        leader.apply_batch(&traffic.next_snapshot()).unwrap();
    }

    // A fresh join bootstraps from the snapshot fallback (epoch 0 lives in
    // the initial checkpoint, not the log), then catches up over the log.
    let rconfig = ReplicaConfig::new("r1", sconfig, store_config());
    let mut replica = Replica::bootstrap(server.local_addr(), &replica_root, rconfig).unwrap();
    assert_eq!(replica.sync_to_caught_up(16).unwrap(), 3);
    assert_eq!(source.snapshot_fallbacks(), 1);
    assert!(source.records_shipped() >= 3);
    assert_byte_identical(&leader, &replica.service());

    // Bit-exact answers from the replica.
    let last = VertexId(graph.num_vertices() as u32 - 1);
    let want = leader.query(VertexId(0), last, 3).unwrap();
    let got = replica.query(VertexId(0), last, 3).unwrap();
    assert_eq!(got.epoch, want.epoch);
    assert_eq!(got.paths.len(), want.paths.len());
    for (a, b) in got.paths.iter().zip(want.paths.iter()) {
        assert_eq!(a.vertices(), b.vertices());
        assert_eq!(a.distance().value().to_bits(), b.distance().value().to_bits());
    }

    // Steady state ships the log, never images, and stays byte-identical.
    for _ in 0..4 {
        leader.apply_batch(&traffic.next_snapshot()).unwrap();
    }
    assert_eq!(replica.sync_to_caught_up(16).unwrap(), 7);
    assert_eq!(source.snapshot_fallbacks(), 1, "steady state must ship the log, not images");
    assert_eq!(replica.resyncs(), 0);
    assert_byte_identical(&leader, &replica.service());

    // The leader exports per-follower lag and shipping counters on the same
    // scrape surface as everything else.
    let (mut client, hello) = KspClient::connect(server.local_addr()).unwrap();
    assert_eq!(hello.negotiated_version, 2, "handshake must negotiate protocol v2");
    let text = client.scrape_text().unwrap();
    for family in
        ["ksp_repl_ship_records_total", "ksp_repl_ship_bytes_total", "ksp_repl_acks_total"]
    {
        assert!(text.contains(family), "leader scrape must carry {family}");
    }
    assert!(text.contains("ksp_repl_lag_epochs{follower=\"r1\"}"));

    // The replica exposes its own applied epoch and lag.
    let follower_text = replica.service().render_exposition();
    assert!(follower_text.contains("ksp_repl_applied_epoch"));
    assert!(follower_text.contains("ksp_repl_records_applied_total"));

    let _ = std::fs::remove_dir_all(&leader_dir);
    let _ = std::fs::remove_dir_all(&replica_root);
}

#[test]
fn pruned_log_falls_back_to_snapshot_for_laggards_and_late_joiners() {
    let leader_dir = temp_dir("prune-leader");
    let laggard_root = temp_dir("prune-laggard");
    let late_root = temp_dir("prune-late");
    let graph = road_network(180, 29);
    let sconfig = ServiceConfig::new(2, DtlpConfig::new(18, 2));
    // Tiny segments (rotation every 2 records), full images only, retain a
    // single checkpoint: pruning bites as soon as a checkpoint commits.
    let st = StoreConfig {
        checkpoint_interval: 0,
        segment_max_records: 2,
        retain_checkpoints: 1,
        full_rebase_interval: 0,
        sync: SyncPolicy::Never,
    };
    let leader =
        Arc::new(QueryService::start_with_store(graph.clone(), sconfig, &leader_dir, st).unwrap());
    let source = ReplicationSource::attach(&leader).unwrap();
    let server = TcpServer::bind(leader.clone(), "127.0.0.1:0").unwrap();
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.5, 0.5), 41);

    // A follower catches up to epoch 4 (its shipping crossed at least one
    // segment-rotation boundary: segments hold 2 records each)...
    for _ in 0..4 {
        leader.apply_batch(&traffic.next_snapshot()).unwrap();
    }
    let mut laggard = Replica::bootstrap(
        server.local_addr(),
        &laggard_root,
        ReplicaConfig::new("lag", sconfig, st),
    )
    .unwrap();
    assert_eq!(laggard.sync_to_caught_up(16).unwrap(), 4);

    // ...then sleeps while the leader publishes four more epochs and commits
    // a checkpoint at epoch 8 — pruning every segment the image covers, so
    // the laggard's next position (5) has left the retained window.
    for _ in 0..4 {
        leader.apply_batch(&traffic.next_snapshot()).unwrap();
    }
    assert_eq!(leader.checkpoint_now().unwrap(), Some(8));
    let outcome = laggard.sync_once().unwrap();
    assert!(outcome.resynced, "a pruned position must re-seed via the snapshot fallback");
    assert_eq!(laggard.resyncs(), 1);
    assert_eq!(laggard.applied_epoch(), 8);
    assert_byte_identical(&leader, &laggard.service());

    // A follower joining only now never sees the pruned log either: it
    // bootstraps from the epoch-8 image and lands byte-identical.
    let mut late = Replica::bootstrap(
        server.local_addr(),
        &late_root,
        ReplicaConfig::new("late", sconfig, st),
    )
    .unwrap();
    assert_eq!(late.applied_epoch(), 8);
    assert_eq!(late.sync_to_caught_up(16).unwrap(), 8);
    assert_byte_identical(&leader, &late.service());

    // Replication keeps flowing for both after the fallback — records again,
    // not images, and still never a torn or skipped epoch.
    for _ in 0..2 {
        leader.apply_batch(&traffic.next_snapshot()).unwrap();
    }
    let fallbacks_before = source.snapshot_fallbacks();
    assert_eq!(laggard.sync_to_caught_up(16).unwrap(), 10);
    assert_eq!(late.sync_to_caught_up(16).unwrap(), 10);
    assert_eq!(source.snapshot_fallbacks(), fallbacks_before);
    assert_byte_identical(&leader, &laggard.service());
    assert_byte_identical(&leader, &late.service());

    let _ = std::fs::remove_dir_all(&leader_dir);
    let _ = std::fs::remove_dir_all(&laggard_root);
    let _ = std::fs::remove_dir_all(&late_root);
}

#[test]
fn staleness_bound_and_warm_failover_promotion() {
    let leader_dir = temp_dir("failover-leader");
    let replica_root = temp_dir("failover-replica");
    let graph = road_network(180, 57);
    let sconfig = ServiceConfig::new(2, DtlpConfig::new(18, 2));
    let leader = Arc::new(
        QueryService::start_with_store(graph.clone(), sconfig, &leader_dir, store_config())
            .unwrap(),
    );
    let source = ReplicationSource::attach(&leader).unwrap();
    let server = TcpServer::bind(leader.clone(), "127.0.0.1:0").unwrap();
    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.5, 0.5), 83);
    for _ in 0..6 {
        leader.apply_batch(&traffic.next_snapshot()).unwrap();
    }

    // Zero-staleness bound, one record per round: the replica observes its
    // lag and refuses reads until caught up.
    let mut rconfig = ReplicaConfig::new("standby", sconfig, store_config());
    rconfig.max_read_lag = Some(0);
    rconfig.max_records = 1;
    let mut replica = Replica::bootstrap(server.local_addr(), &replica_root, rconfig).unwrap();
    let last = VertexId(graph.num_vertices() as u32 - 1);
    replica.sync_once().unwrap();
    assert!(replica.lag_epochs() > 0);
    assert!(
        matches!(
            replica.query(VertexId(0), last, 2),
            Err(ksp_dg::repl::ReplError::StaleRead { .. })
        ),
        "a replica beyond its staleness bound must refuse reads"
    );
    assert_eq!(replica.sync_to_caught_up(16).unwrap(), 6);
    let standby_answer = replica.query(VertexId(0), last, 2).unwrap();

    // Kill the leader. (The source holds the leader's store open — drop it
    // too, or the cold-recovery control below could not reacquire the
    // directory lock.)
    let mut server = server;
    server.shutdown();
    drop(server);
    drop(source);
    drop(leader);

    // Control: cold recovery of the leader's directory — image decode plus
    // log replay — versus promotion, which does no state work at all.
    let cold_started = Instant::now();
    let (cold, _report) = QueryService::open(&leader_dir, sconfig, store_config()).unwrap();
    let cold_duration = cold_started.elapsed();
    // The magnitude gap is the `repl` experiment's measurement; here just
    // surface both numbers when running with --nocapture.
    eprintln!("cold recovery {cold_duration:?}");

    replica.run().unwrap();
    std::thread::sleep(Duration::from_millis(30)); // let it hit the dead leader
    let promotion = replica.promote();
    assert_eq!(promotion.epoch, 6);
    assert!(replica.is_promoted());
    assert!(
        promotion.duration < Duration::from_secs(2),
        "promotion must be a stop-and-flip, took {:?}",
        promotion.duration
    );

    // The promoted replica answers exactly what the recovered leader would.
    assert_byte_identical(&cold, &replica.service());
    let promoted_answer = replica.query(VertexId(0), last, 2).unwrap();
    let cold_answer = cold.query(VertexId(0), last, 2).unwrap();
    assert_eq!(promoted_answer.paths.len(), cold_answer.paths.len());
    for (a, b) in promoted_answer.paths.iter().zip(cold_answer.paths.iter()) {
        assert_eq!(a.vertices(), b.vertices());
        assert_eq!(a.distance().value().to_bits(), b.distance().value().to_bits());
    }
    // Promotion lifted the staleness bound (the leader's last reported epoch
    // is now meaningless) and the service accepts writes: it is the leader.
    assert_eq!(standby_answer.epoch, promoted_answer.epoch);
    let epoch = replica.service().apply_batch(&traffic.next_snapshot()).unwrap();
    assert_eq!(epoch, 7);

    let _ = std::fs::remove_dir_all(&leader_dir);
    let _ = std::fs::remove_dir_all(&replica_root);
}
