//! Integration tests of the distributed runtime: the measurement cluster and the
//! message-passing topology must both agree with the single-threaded engine, and the
//! scaling/maintenance reports must be self-consistent.

use ksp_dg::algo::yen_ksp;
use ksp_dg::cluster::cluster::{Cluster, ClusterConfig, QuerySpec};
use ksp_dg::cluster::topology::{StormTopology, TopologyConfig};
use ksp_dg::core::dtlp::DtlpConfig;
use ksp_dg::core::kspdg::KspDgEngine;
use ksp_dg::workload::datasets::DatasetScale;
use ksp_dg::workload::{
    DatasetPreset, QueryWorkload, QueryWorkloadConfig, TrafficConfig, TrafficModel,
};

fn tiny_graph() -> ksp_dg::graph::DynamicGraph {
    DatasetPreset::NewYork.spec(DatasetScale::Tiny).generate().expect("dataset").graph
}

#[test]
fn cluster_and_topology_agree_with_yen_after_updates() {
    let mut graph = tiny_graph();
    let dtlp = DtlpConfig::new(18, 2);
    let (mut cluster, _) = Cluster::build(&graph, ClusterConfig::new(4, dtlp)).expect("cluster");
    let mut topology =
        StormTopology::build(&graph, TopologyConfig::new(3, dtlp)).expect("topology");

    let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.4, 0.5), 21);
    for _ in 0..2 {
        let batch = traffic.next_snapshot();
        graph.apply_batch(&batch).expect("graph update");
        cluster.apply_batch(&batch).expect("cluster maintenance");
        topology.apply_batch(&batch).expect("topology maintenance");
    }

    let engine = KspDgEngine::new(cluster.index());
    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(8, 2), 31);
    for q in workload.iter() {
        let local = engine.query(q.source, q.target, q.k);
        let remote = topology.query(q.source, q.target, q.k);
        let truth = yen_ksp(&graph, q.source, q.target, q.k);
        assert_eq!(local.paths.len(), truth.len(), "query {q:?}");
        assert_eq!(remote.len(), truth.len(), "query {q:?}");
        for ((a, b), c) in local.paths.iter().zip(remote.iter()).zip(truth.iter()) {
            assert!(a.distance().approx_eq(c.distance()));
            assert!(b.distance().approx_eq(c.distance()));
        }
    }
}

#[test]
fn query_batch_reports_are_consistent() {
    let graph = tiny_graph();
    let (cluster, build) =
        Cluster::build(&graph, ClusterConfig::new(5, DtlpConfig::new(18, 2))).expect("cluster");
    assert_eq!(build.per_server.len(), 5);

    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(20, 2), 41);
    let specs: Vec<QuerySpec> =
        workload.iter().map(|q| QuerySpec { source: q.source, target: q.target, k: q.k }).collect();
    let report = cluster.process_queries(&specs);
    assert_eq!(report.queries_answered, 20);
    let items: usize = report.per_server.iter().map(|l| l.items_processed).sum();
    assert_eq!(items, 20, "every query must be attributed to a server");
    assert!(report.total_iterations >= 20);
    assert!(report.simulated_makespan() <= report.per_server.iter().map(|l| l.busy_time).sum());
    assert!(report.load_balance.busy_spread <= 1.0);
}

#[test]
fn more_servers_never_increase_simulated_makespan_much() {
    let graph = tiny_graph();
    let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(30, 2), 51);
    let specs: Vec<QuerySpec> =
        workload.iter().map(|q| QuerySpec { source: q.source, target: q.target, k: q.k }).collect();
    let mut previous = None;
    for servers in [1usize, 2, 8] {
        let (cluster, _) =
            Cluster::build(&graph, ClusterConfig::new(servers, DtlpConfig::new(18, 2)))
                .expect("cluster");
        let makespan = cluster.process_queries(&specs).simulated_makespan();
        if let Some(prev) = previous {
            // Allow a generous tolerance: measurement noise on very fast queries.
            assert!(
                makespan.as_secs_f64() <= 1.5 * f64::max(prev, 1e-6),
                "makespan grew sharply when adding servers"
            );
        }
        previous = Some(makespan.as_secs_f64());
    }
}
